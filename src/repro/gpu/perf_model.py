"""Analytic GPU kernel performance model.

We cannot measure CUDA kernels in this reproduction, so the *runtime* columns
of the paper's tables are produced by a first-order model of the GATSPI
kernel on each device.  The model captures the effects the paper's profiling
section identifies as dominant:

* the kernel is memory-latency / bandwidth bound (irregular, largely
  uncoalesced accesses to waveform arrays), not compute bound;
* throughput grows with resident threads (widest level × cycle parallelism)
  until either the L2 working set or DRAM bandwidth saturates;
* occupancy is register-limited at ~50% for the natural 64 registers/thread,
  and forcing 32 registers/thread trades occupancy for spilling;
* every logic level costs a stream-synchronize + kernel-launch overhead.

The single CPU-side calibration constant (`CpuSpec.seconds_per_event`) plays
the role of the commercial simulator baseline.  Absolute numbers are
best-effort; the *shape* (which design/config/device is faster, and by
roughly what factor) is what the benchmark harness checks against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import SimConfig
from ..core.results import SimulationResult
from ..netlist import Netlist, levelize
from .devices import BASELINE_CPU, CpuSpec, GpuSpec, V100
from .occupancy import compute_occupancy, register_spill_penalty
from .profile import KernelProfile


@dataclass
class KernelWorkload:
    """Workload statistics the model needs, extracted from a simulation."""

    design: str
    gate_count: int
    levels: int
    widest_level: int
    level_sizes: List[int]
    total_input_events: int
    total_output_transitions: int
    cycles: int
    activity_factor: float

    @property
    def total_events(self) -> int:
        """Total simulation events (inputs scanned plus outputs produced)."""
        return self.total_input_events + self.total_output_transitions

    @property
    def events_per_gate(self) -> float:
        if self.gate_count == 0:
            return 0.0
        return self.total_events / self.gate_count

    @classmethod
    def from_result(
        cls, netlist: Netlist, result: SimulationResult, design: str = ""
    ) -> "KernelWorkload":
        levelization = levelize(netlist)
        return cls(
            design=design or netlist.name,
            gate_count=netlist.gate_count,
            levels=levelization.depth,
            widest_level=levelization.widest_level,
            level_sizes=levelization.level_sizes(),
            total_input_events=result.stats.input_events,
            total_output_transitions=result.stats.output_transitions,
            cycles=result.stats.cycles,
            activity_factor=result.activity_factor(),
        )


#: Average bytes moved per simulation event.  Each processed transition reads
#: the next timestamps of every input pin (3 words each from uncoalesced
#: 32-byte sectors), one truth-table and one delay-table lookup, and writes
#: the output entry twice (count pass + store pass).
BYTES_PER_EVENT = 96.0

#: Device cycles of memory latency a dependent (pointer-chasing) access costs.
MEMORY_LATENCY_CYCLES = 420.0

#: Instructions the kernel issues per processed event (inner loop body).
INSTRUCTIONS_PER_EVENT = 64.0

#: Independent outstanding memory requests per thread (memory-level
#: parallelism): the per-pin timestamp fetches of one event are independent.
MEMORY_LEVEL_PARALLELISM = 2.0


class KernelPerfModel:
    """Predict GATSPI kernel runtime and Nsight counters for one device."""

    def __init__(self, device: GpuSpec = V100, cpu: CpuSpec = BASELINE_CPU):
        self.device = device
        self.cpu = cpu

    # ------------------------------------------------------------------
    # Kernel runtime
    # ------------------------------------------------------------------
    def predict_kernel_seconds(
        self, workload: KernelWorkload, config: Optional[SimConfig] = None
    ) -> float:
        """Predicted re-simulation kernel runtime in seconds."""
        return self.profile(workload, config).latency_ms / 1e3

    def profile(
        self, workload: KernelWorkload, config: Optional[SimConfig] = None
    ) -> KernelProfile:
        """Predict the Table 6 counters for one launch configuration."""
        config = config or SimConfig()
        device = self.device
        occupancy = compute_occupancy(
            device, config.threads_per_block, config.registers_per_thread
        )
        spill = register_spill_penalty(config.registers_per_thread)

        windows = max(1, config.cycle_parallelism)
        threads = max(1, workload.widest_level) * windows
        resident = min(
            threads, device.max_resident_threads * occupancy.occupancy
        )
        resident = max(resident, float(device.warp_size))

        # Events per thread: each window sees events/windows of the total.
        events_per_gate_window = workload.events_per_gate / windows
        total_events = workload.total_events

        # --- memory behaviour ------------------------------------------
        # Working set touched concurrently: the waveform entries of the
        # active level across all windows.  When it exceeds L2, the hit rate
        # falls and every miss pays DRAM latency.
        avg_level_gates = max(1.0, workload.gate_count / max(1, workload.levels))
        working_set_bytes = (
            avg_level_gates * windows * max(4.0, events_per_gate_window) * 8.0 * 3.0
        )
        l2_hit = min(0.96, max(0.30, device.l2_cache_bytes / max(working_set_bytes, 1.0)))
        l1_hit = max(0.45, 0.97 - 0.05 * (spill - 1.0) * 6.0)

        # Effective memory latency per dependent access after caching.  The
        # DRAM-pressure factor reflects that lower-bandwidth parts (T4) see
        # longer queueing delays for the same uncoalesced access stream.
        dram_pressure = (1000.0 / device.memory_bandwidth_gbps) ** 0.5
        miss_latency = (
            MEMORY_LATENCY_CYCLES * (1.0 - l2_hit) + 120.0 * l2_hit
        ) * dram_pressure
        accesses_per_event = 4.0
        cycles_per_event_latency = (
            accesses_per_event * miss_latency * (1.0 - l1_hit) * spill
            / MEMORY_LEVEL_PARALLELISM
            + INSTRUCTIONS_PER_EVENT / 2.0
        )

        # Latency-bound time: total events serialized over resident threads,
        # each event paying the dependent-access latency.
        clock_hz = device.boost_clock_ghz * 1e9
        concurrency = max(1.0, resident / device.warp_size) * device.warp_size
        latency_seconds = (
            total_events * cycles_per_event_latency / (concurrency * clock_hz)
        )

        # Bandwidth-bound time: total DRAM traffic over achievable bandwidth.
        uncoalesced_fraction = min(0.6, 0.1 + 0.5 / max(1.0, events_per_gate_window**0.25))
        # Register spilling adds local-memory traffic on top of waveform reads.
        dram_traffic = total_events * BYTES_PER_EVENT * (1.0 - l2_hit * 0.5) * spill
        # Achieved bandwidth grows with the number of resident warps feeding
        # the memory system; normalise by a common per-SM thread capacity so
        # bigger parts need proportionally more parallelism to saturate.
        saturation = resident / (device.sm_count * 2048.0)
        achievable_bw = device.memory_bandwidth_bytes_per_s * min(
            0.45, 0.08 + 0.37 * saturation
        )
        bandwidth_seconds = dram_traffic / max(achievable_bw, 1.0)

        # Per-level launch + synchronization overhead.
        overhead_seconds = (
            2.0 * workload.levels * device.kernel_launch_overhead_us * 1e-6
        )

        kernel_seconds = max(latency_seconds, bandwidth_seconds) + overhead_seconds

        # --- derived counters -------------------------------------------
        dram_gbps = dram_traffic / max(kernel_seconds, 1e-12) / 1e9
        memory_throughput_pct = 100.0 * dram_gbps / device.memory_bandwidth_gbps
        memory_throughput_pct = min(95.0, memory_throughput_pct * 3.0 + 8.0)
        compute_throughput_pct = min(
            90.0,
            100.0
            * total_events
            * INSTRUCTIONS_PER_EVENT
            / (kernel_seconds * device.sm_count * 64 * clock_hz),
        )
        cycles_per_issue = max(
            2.0, cycles_per_event_latency / INSTRUCTIONS_PER_EVENT * 8.0
        )
        elapsed_cycles = kernel_seconds * clock_hz

        return KernelProfile(
            design=workload.design,
            config=(
                f"{config.cycle_parallelism},{config.threads_per_block},"
                f"{config.registers_per_thread}"
            ),
            threads=int(threads),
            compute_throughput_pct=compute_throughput_pct,
            memory_throughput_pct=memory_throughput_pct,
            occupancy_pct=min(99.0, occupancy.occupancy_percent * spill ** 0.2)
            if config.registers_per_thread < 64
            else occupancy.occupancy_percent * (0.9 + 0.1 * min(1.0, threads / 1e6)),
            dram_throughput_gbps=dram_gbps,
            l1_hit_rate_pct=100.0 * l1_hit,
            l2_hit_rate_pct=100.0 * l2_hit,
            cycles_per_issue=cycles_per_issue,
            uncoalesced_pct=100.0 * uncoalesced_fraction,
            elapsed_cycles=elapsed_cycles,
            latency_ms=kernel_seconds * 1e3,
        )

    # ------------------------------------------------------------------
    # Baseline (commercial simulator) model
    # ------------------------------------------------------------------
    def baseline_kernel_seconds(self, workload: KernelWorkload) -> float:
        """Modelled single-core commercial-simulator kernel runtime."""
        return workload.total_events * self.cpu.seconds_per_event

    def baseline_application_seconds(self, workload: KernelWorkload) -> float:
        kernel = self.baseline_kernel_seconds(workload)
        return kernel * (1.0 + self.cpu.application_overhead_fraction)

    def baseline_multithread_seconds(
        self, workload: KernelWorkload, threads: int
    ) -> float:
        """Modelled multi-threaded commercial simulator (Table 4 baseline)."""
        if threads < 1:
            raise ValueError("threads must be at least 1")
        serial = self.baseline_application_seconds(workload)
        speedup = 1.0 + (threads - 1) * self.cpu.parallel_efficiency
        return serial / speedup

    def kernel_speedup(
        self, workload: KernelWorkload, config: Optional[SimConfig] = None
    ) -> float:
        """Modelled kernel speedup of GATSPI on this device vs one CPU core."""
        gpu = self.predict_kernel_seconds(workload, config)
        if gpu == 0:
            return float("inf")
        return self.baseline_kernel_seconds(workload) / gpu


def openmp_kernel_seconds(
    workload: KernelWorkload,
    num_cpus: int,
    seconds_per_event: float = 0.35e-6,
    imbalance: float = 1.6,
    barrier_overhead_s: float = 2e-5,
) -> float:
    """Model of the paper's OpenMP port of the GATSPI algorithm (Table 3).

    The OpenMP port runs the same levelized algorithm with a parallel-for per
    level; its runtime is the per-core event cost divided by the core count,
    inflated by workload imbalance, plus a barrier per level.
    """
    if num_cpus < 1:
        raise ValueError("num_cpus must be at least 1")
    work = workload.total_events * seconds_per_event
    return work * imbalance / num_cpus + workload.levels * barrier_overhead_s
