"""Analytic GPU performance models standing in for real CUDA measurements."""

from .devices import (
    A100,
    BASELINE_CPU,
    CpuSpec,
    DEVICES,
    GpuSpec,
    T4,
    V100,
    device_by_name,
    device_comparison_table,
)
from .occupancy import OccupancyResult, compute_occupancy, register_spill_penalty
from .perf_model import (
    BYTES_PER_EVENT,
    KernelPerfModel,
    KernelWorkload,
    openmp_kernel_seconds,
)
from .app_model import ApplicationEstimate, ApplicationModel
from .multi_gpu_model import MultiGpuModel, MultiGpuPoint
from .profile import (
    APPLICATION_HEADER,
    ApplicationProfile,
    KernelProfile,
    PROFILE_HEADER,
    format_table,
)

__all__ = [
    "A100",
    "BASELINE_CPU",
    "CpuSpec",
    "DEVICES",
    "GpuSpec",
    "T4",
    "V100",
    "device_by_name",
    "device_comparison_table",
    "OccupancyResult",
    "compute_occupancy",
    "register_spill_penalty",
    "BYTES_PER_EVENT",
    "KernelPerfModel",
    "KernelWorkload",
    "openmp_kernel_seconds",
    "ApplicationEstimate",
    "ApplicationModel",
    "MultiGpuModel",
    "MultiGpuPoint",
    "APPLICATION_HEADER",
    "ApplicationProfile",
    "KernelProfile",
    "PROFILE_HEADER",
    "format_table",
]
