"""GPU and CPU device specifications (paper Table 1).

These are the published architectural parameters of the devices the paper
benchmarks on.  They feed the analytic performance model that substitutes for
running on real GPUs: the algorithmic simulation is exact, and the *runtime*
on each device is predicted from these specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GpuSpec:
    """Architectural parameters of one GPU."""

    name: str
    sm_count: int
    memory_gb: float
    memory_bandwidth_gbps: float
    l2_cache_mb: float
    boost_clock_ghz: float
    max_threads_per_sm: int = 2048
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    warp_size: int = 32
    pcie_bandwidth_gbps: float = 12.0
    kernel_launch_overhead_us: float = 8.0

    @property
    def max_resident_threads(self) -> int:
        return self.sm_count * self.max_threads_per_sm

    @property
    def l2_cache_bytes(self) -> float:
        return self.l2_cache_mb * 1e6

    @property
    def memory_bandwidth_bytes_per_s(self) -> float:
        return self.memory_bandwidth_gbps * 1e9


@dataclass(frozen=True)
class CpuSpec:
    """A simple model of the baseline CPU (Intel Xeon E5 @ 2.7 GHz).

    ``seconds_per_event`` is the effective per-simulation-event cost of the
    commercial event-driven simulator on one core — the single calibration
    constant of the baseline model (chosen so the modelled baseline runtimes
    land in the range reported in Table 2).
    """

    name: str = "xeon-e5-2.7ghz"
    clock_ghz: float = 2.7
    seconds_per_event: float = 2.0e-6
    application_overhead_fraction: float = 0.08
    parallel_efficiency: float = 0.35


# Published specs from Table 1 (A100 40 GB SXM / V100 32 GB / T4 16 GB).
T4 = GpuSpec(
    name="T4",
    sm_count=40,
    memory_gb=16,
    memory_bandwidth_gbps=320,
    l2_cache_mb=4,
    boost_clock_ghz=1.59,
    max_threads_per_sm=1024,
    kernel_launch_overhead_us=10.0,
)

V100 = GpuSpec(
    name="V100",
    sm_count=80,
    memory_gb=32,
    memory_bandwidth_gbps=900,
    l2_cache_mb=6,
    boost_clock_ghz=1.53,
)

A100 = GpuSpec(
    name="A100",
    sm_count=108,
    memory_gb=40,
    memory_bandwidth_gbps=1600,
    l2_cache_mb=40,
    boost_clock_ghz=1.41,
)

BASELINE_CPU = CpuSpec()

DEVICES: Dict[str, GpuSpec] = {spec.name: spec for spec in (T4, V100, A100)}


def device_by_name(name: str) -> GpuSpec:
    """Look up one of the paper's GPUs by name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None


def device_comparison_table() -> str:
    """Render the Table 1 comparison of recent NVIDIA architectures."""
    header = f"{'Architecture':<14}{'T4':>10}{'V100':>10}{'A100':>10}"
    rows = [
        ("SMs", T4.sm_count, V100.sm_count, A100.sm_count),
        ("Memory (GB)", T4.memory_gb, V100.memory_gb, A100.memory_gb),
        (
            "Memory BW (GB/s)",
            T4.memory_bandwidth_gbps,
            V100.memory_bandwidth_gbps,
            A100.memory_bandwidth_gbps,
        ),
        ("L2 cache (MB)", T4.l2_cache_mb, V100.l2_cache_mb, A100.l2_cache_mb),
    ]
    lines = [header]
    for label, t4, v100, a100 in rows:
        lines.append(f"{label:<14}{t4:>10}{v100:>10}{a100:>10}")
    return "\n".join(lines)
