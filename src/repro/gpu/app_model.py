"""Application-level runtime model (paper Tables 2 and 5).

Application runtime = everything measured "from loading the testbench
waveforms until result file dumping": restructuring the input waveforms into
the cycle-parallel layout, host-to-device transfer, per-level stream
synchronize + kernel launch, kernel execution, and asynchronous SAIF dumping.
The paper's profiling (Table 5) shows the input-waveform restructuring
dominating initialization and the kernel dominating high-activity runs; this
model reproduces that split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import SimConfig
from .devices import GpuSpec, V100
from .perf_model import KernelPerfModel, KernelWorkload
from .profile import ApplicationProfile


#: CPU-side cost of restructuring one source-waveform event into the
#: cycle-parallel window layout (dominates GATSPI initialization, Table 5).
RESTRUCTURE_SECONDS_PER_EVENT = 2.5e-7

#: CPU-side cost of writing one net entry to the SAIF file.
DUMP_SECONDS_PER_NET = 6.0e-7

#: Bytes per stored waveform entry (int32, as in the paper).
BYTES_PER_ENTRY = 4.0


@dataclass
class ApplicationEstimate:
    """Predicted application phases, in seconds."""

    design: str
    restructure: float
    host_to_device: float
    sync_and_launch: float
    kernel: float
    dump: float

    @property
    def total(self) -> float:
        return (
            self.restructure
            + self.host_to_device
            + self.sync_and_launch
            + self.kernel
            + self.dump
        )

    def to_profile(self) -> ApplicationProfile:
        """Collapse to the three phases Nsight reports in Table 5."""
        return ApplicationProfile(
            design=self.design,
            host_to_device=self.host_to_device,
            stream_sync_and_launch=self.sync_and_launch,
            kernel_execution=self.kernel,
        )


class ApplicationModel:
    """End-to-end application runtime estimate for one device."""

    def __init__(self, device: GpuSpec = V100):
        self.device = device
        self.kernel_model = KernelPerfModel(device)

    def estimate(
        self,
        workload: KernelWorkload,
        source_events: int,
        net_count: int,
        config: Optional[SimConfig] = None,
    ) -> ApplicationEstimate:
        """Predict the application phases for one benchmark run.

        ``source_events`` is the number of testbench waveform entries loaded
        (primary plus pseudo-primary input toggles); ``net_count`` the number
        of nets written to the SAIF file.
        """
        config = config or SimConfig()
        device = self.device

        restructure = source_events * RESTRUCTURE_SECONDS_PER_EVENT
        transfer_bytes = source_events * BYTES_PER_ENTRY * 2.0
        host_to_device = transfer_bytes / (device.pcie_bandwidth_gbps * 1e9)

        launches = 2 * workload.levels  # two passes per level
        windows_factor = max(1.0, config.cycle_parallelism / 32.0)
        sync_and_launch = (
            launches * device.kernel_launch_overhead_us * 1e-6 * windows_factor
            + workload.levels * 2.0e-5
        )

        kernel = self.kernel_model.predict_kernel_seconds(workload, config)
        dump = net_count * DUMP_SECONDS_PER_NET

        return ApplicationEstimate(
            design=workload.design,
            restructure=restructure,
            host_to_device=host_to_device,
            sync_and_launch=sync_and_launch,
            kernel=kernel,
            dump=dump,
        )

    def application_speedup(
        self,
        workload: KernelWorkload,
        source_events: int,
        net_count: int,
        config: Optional[SimConfig] = None,
    ) -> float:
        """Modelled application speedup vs the single-core baseline."""
        estimate = self.estimate(workload, source_events, net_count, config)
        baseline = self.kernel_model.baseline_application_seconds(workload)
        if estimate.total == 0:
            return float("inf")
        return baseline / estimate.total
