"""Multi-GPU scaling model (paper Fig. 6).

With the cycle-parallel workload distribution, the kernel runtime follows
``t = t1 / n + ovr`` where ``t1`` is the single-GPU runtime and ``ovr`` the
stream-synchronize + kernel-launch overhead.  Deviations from linear scaling
come from uneven activity between the distributed windows — which the
measured :func:`repro.core.simulate_multi_gpu` path exposes directly and this
model captures with an imbalance factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.config import SimConfig
from .devices import GpuSpec, V100
from .perf_model import KernelPerfModel, KernelWorkload


@dataclass
class MultiGpuPoint:
    """One point on the Fig. 6 scaling curve."""

    label: str
    num_devices: int
    kernel_seconds: float
    speedup_vs_cpu: float


class MultiGpuModel:
    """Predict multi-GPU kernel runtimes from the single-GPU model."""

    def __init__(self, device: GpuSpec = V100):
        self.device = device
        self.kernel_model = KernelPerfModel(device)

    def scaling_curve(
        self,
        workload: KernelWorkload,
        device_counts: Sequence[int],
        config: Optional[SimConfig] = None,
        imbalance: float = 1.12,
    ) -> List[MultiGpuPoint]:
        """Kernel runtime for each device count, ``t = t1/n * imbalance + ovr``.

        ``imbalance`` models the uneven activity factor between distributed
        cycle-parallel workloads that the paper cites as the reason for
        sub-linear scaling.
        """
        config = config or SimConfig()
        single = self.kernel_model.predict_kernel_seconds(workload, config)
        overhead = (
            2.0 * workload.levels * self.device.kernel_launch_overhead_us * 1e-6
        )
        baseline = self.kernel_model.baseline_kernel_seconds(workload)
        points: List[MultiGpuPoint] = []
        for count in device_counts:
            if count < 1:
                raise ValueError("device counts must be positive")
            if count == 1:
                seconds = single
            else:
                seconds = (single - overhead) / count * imbalance + overhead
            points.append(
                MultiGpuPoint(
                    label=f"{count} {self.device.name}",
                    num_devices=count,
                    kernel_seconds=seconds,
                    speedup_vs_cpu=baseline / seconds if seconds > 0 else float("inf"),
                )
            )
        return points

    def predicted_overhead_seconds(self, workload: KernelWorkload) -> float:
        return 2.0 * workload.levels * self.device.kernel_launch_overhead_us * 1e-6
