"""CUDA occupancy calculation for the GATSPI kernel launch configuration.

The paper reports a theoretical maximum occupancy of 50% because each kernel
thread uses more than 32 32-bit registers, and shows (Table 6) that forcing
32 registers/thread raises occupancy to ~94% but hurts latency through
register spilling.  This module reproduces that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from .devices import GpuSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one launch configuration on one device."""

    threads_per_block: int
    registers_per_thread: int
    blocks_per_sm: int
    resident_threads_per_sm: int
    max_threads_per_sm: int
    register_limited: bool

    @property
    def occupancy(self) -> float:
        if self.max_threads_per_sm == 0:
            return 0.0
        return self.resident_threads_per_sm / self.max_threads_per_sm

    @property
    def occupancy_percent(self) -> float:
        return 100.0 * self.occupancy


def compute_occupancy(
    device: GpuSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_mem_per_block: int = 0,
    shared_mem_per_sm: int = 96 * 1024,
    max_blocks_per_sm: int = 32,
) -> OccupancyResult:
    """Theoretical occupancy from the register/thread-count limits."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if registers_per_thread <= 0:
        raise ValueError("registers_per_thread must be positive")

    blocks_by_threads = device.max_threads_per_sm // threads_per_block
    registers_per_block = registers_per_thread * threads_per_block
    blocks_by_registers = (
        device.registers_per_sm // registers_per_block if registers_per_block else 0
    )
    if shared_mem_per_block > 0:
        blocks_by_shared = shared_mem_per_sm // shared_mem_per_block
    else:
        blocks_by_shared = max_blocks_per_sm
    blocks = max(0, min(blocks_by_threads, blocks_by_registers, blocks_by_shared,
                        max_blocks_per_sm))
    resident = blocks * threads_per_block
    return OccupancyResult(
        threads_per_block=threads_per_block,
        registers_per_thread=registers_per_thread,
        blocks_per_sm=blocks,
        resident_threads_per_sm=min(resident, device.max_threads_per_sm),
        max_threads_per_sm=device.max_threads_per_sm,
        register_limited=blocks_by_registers <= blocks_by_threads,
    )


def register_spill_penalty(registers_per_thread: int, required_registers: int = 64) -> float:
    """Latency multiplier caused by register spilling.

    The GATSPI kernel naturally wants ~64 registers/thread; compiling it to
    fewer forces spills to local memory, which the paper observes as an L1
    hit-rate collapse and a ~2X latency increase at 32 registers/thread.
    """
    if registers_per_thread >= required_registers:
        return 1.0
    deficit = (required_registers - registers_per_thread) / required_registers
    return 1.0 + 1.6 * deficit
