"""Nsight-style profiling report structures (paper Tables 5 and 6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class KernelProfile:
    """Predicted kernel-level counters for one launch configuration.

    Field names mirror the columns of the paper's Table 6.
    """

    design: str
    config: str                       # "{cycle parallelism, threads/block, regs/thread}"
    threads: int
    compute_throughput_pct: float
    memory_throughput_pct: float
    occupancy_pct: float
    dram_throughput_gbps: float
    l1_hit_rate_pct: float
    l2_hit_rate_pct: float
    cycles_per_issue: float
    uncoalesced_pct: float
    elapsed_cycles: float
    latency_ms: float

    def as_row(self) -> List[str]:
        return [
            self.design,
            self.config,
            _format_count(self.threads),
            f"{self.compute_throughput_pct:.1f}/{self.memory_throughput_pct:.1f}",
            f"{self.occupancy_pct:.1f}",
            f"{self.dram_throughput_gbps:.1f}",
            f"{self.l1_hit_rate_pct:.1f}/{self.l2_hit_rate_pct:.1f}",
            f"{self.cycles_per_issue:.1f}",
            f"{self.uncoalesced_pct:.0f}",
            _format_count(self.elapsed_cycles),
            f"{self.latency_ms:.2f}",
        ]


@dataclass
class ApplicationProfile:
    """Predicted application-phase breakdown (paper Table 5), in seconds."""

    design: str
    host_to_device: float
    stream_sync_and_launch: float
    kernel_execution: float

    @property
    def total(self) -> float:
        return self.host_to_device + self.stream_sync_and_launch + self.kernel_execution

    def as_row(self) -> List[str]:
        return [
            self.design,
            f"{self.host_to_device:.2f}",
            f"{self.stream_sync_and_launch:.2f}",
            f"{self.kernel_execution:.2f}",
        ]


def _format_count(value: float) -> str:
    value = float(value)
    if value >= 1e9:
        return f"{value / 1e9:.1f}B"
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.0f}k"
    return f"{value:.0f}"


PROFILE_HEADER = [
    "Design",
    "Config {P,T/B,R/T}",
    "Threads",
    "Comp/Mem Thpt (%)",
    "Occupancy (%)",
    "DRAM (GB/s)",
    "L1/L2 Hit (%)",
    "Cyc/Issue",
    "Uncoal (%)",
    "Elapsed Cyc",
    "Latency (ms)",
]

APPLICATION_HEADER = [
    "Design",
    "H2D Transfer (s)",
    "Sync + Launch (s)",
    "Kernel Exec (s)",
]


def format_table(header: List[str], rows: List[List[str]]) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
