"""Standard cell library used by the netlist, simulators, and power model.

The library is intentionally shaped like a pared-down industrial library: a
range of simple to complex combinational cells (inverters through AOI/OAI,
multiplexers, full-adder cells), sequential cells that act as re-simulation
boundaries, and per-cell electrical data (pin capacitance, internal switching
energy, leakage, intrinsic delays) used by the power model and the SDF
generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from . import functions as fn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.truthtable import TruthTable


@dataclass(frozen=True)
class CellPower:
    """Electrical data for one cell, in arbitrary but consistent units.

    ``input_cap_ff`` is the capacitance of each input pin in femtofarads,
    ``internal_energy_fj`` the internal energy dissipated per output toggle in
    femtojoules, and ``leakage_nw`` the static leakage in nanowatts.
    """

    input_cap_ff: float = 1.0
    internal_energy_fj: float = 1.0
    leakage_nw: float = 1.0
    output_cap_ff: float = 0.5


@dataclass(frozen=True)
class Cell:
    """A single-output standard cell.

    ``inputs`` is the ordered pin list; its order defines the truth-table pin
    weights (first pin gets the highest weight, as in the paper's Fig. 4).
    Sequential cells carry ``clock_pin``/``data_pins`` metadata and are treated
    as re-simulation boundaries rather than simulated gates.
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    function: Optional[fn.LogicFunction]
    is_sequential: bool = False
    clock_pin: Optional[str] = None
    intrinsic_rise: float = 10.0
    intrinsic_fall: float = 10.0
    power: CellPower = field(default_factory=CellPower)
    area: float = 1.0
    #: Sequential next-state metadata.  ``data_pin`` samples on the active
    #: clock edge; ``enable_pin`` (active high) gates the capture;
    #: ``reset_pin`` forces ``reset_value`` — asynchronously when
    #: ``reset_async``, at the capture edge otherwise — with polarity given
    #: by ``reset_active_low``.  ``init_value`` is the power-on state
    #: (overridable per instance via ``Netlist.set_initial_value``).
    #: ``is_latch`` marks level-sensitive cells (``clock_pin`` is the
    #: transparency gate); latches are analyzed but not clock-steppable.
    data_pin: Optional[str] = None
    enable_pin: Optional[str] = None
    reset_pin: Optional[str] = None
    reset_active_low: bool = False
    reset_async: bool = False
    reset_value: int = 0
    init_value: int = 0
    is_latch: bool = False

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def pins(self) -> Tuple[str, ...]:
        return self.inputs + (self.output,)

    def truth_table(self) -> "TruthTable":
        """Enumerate this cell's logic function into a Fig. 4 lookup array."""
        from ..core.truthtable import TruthTable

        if self.function is None:
            raise ValueError(f"cell {self.name!r} has no combinational function")
        return TruthTable.from_function(self.num_inputs, self.function)

    def evaluate(self, values: Sequence[int]) -> int:
        """Evaluate the cell directly from its boolean function."""
        if self.function is None:
            raise ValueError(f"cell {self.name!r} has no combinational function")
        if len(values) != self.num_inputs:
            raise ValueError(
                f"cell {self.name!r} expects {self.num_inputs} inputs, "
                f"got {len(values)}"
            )
        return self.function(tuple(values)) & 1

    def next_state(self, current: int, pins: Mapping[str, int]) -> int:
        """Next register state given the pin levels sampled at a capture edge.

        ``pins`` maps input pin names to logic levels.  Reset dominates
        enable dominates data; a missing data pin holds the current state.
        This is the scalar reference semantics the vectorized register
        commit (:func:`repro.core.vector_kernel.register_next_state`) must
        match bit for bit.
        """
        if not self.is_sequential:
            raise ValueError(f"cell {self.name!r} is not sequential")
        if self.reset_pin is not None:
            level = pins[self.reset_pin] & 1
            if (level == 0) if self.reset_active_low else (level == 1):
                return self.reset_value & 1
        if self.enable_pin is not None and not (pins[self.enable_pin] & 1):
            return current & 1
        if self.data_pin is None:
            return current & 1
        return pins[self.data_pin] & 1


class CellLibrary:
    """A named collection of :class:`Cell` objects with truth-table caching."""

    def __init__(self, name: str = "repro_stdcells"):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._truth_tables: Dict[str, TruthTable] = {}

    def add(self, cell: Cell) -> Cell:
        if cell.name in self._cells:
            raise ValueError(f"cell {cell.name!r} already registered")
        self._cells[cell.name] = cell
        return cell

    def add_all(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.add(cell)

    def get(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"unknown cell {name!r} in library {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._cells)

    def combinational_cells(self) -> Tuple[Cell, ...]:
        return tuple(c for c in self._cells.values() if not c.is_sequential)

    def sequential_cells(self) -> Tuple[Cell, ...]:
        return tuple(c for c in self._cells.values() if c.is_sequential)

    def truth_table(self, name: str) -> TruthTable:
        """Cached truth table for a combinational cell."""
        if name not in self._truth_tables:
            self._truth_tables[name] = self.get(name).truth_table()
        return self._truth_tables[name]


def _power(cap: float, energy: float, leak: float) -> CellPower:
    return CellPower(
        input_cap_ff=cap, internal_energy_fj=energy, leakage_nw=leak,
        output_cap_ff=cap / 2.0,
    )


def _combinational(
    name: str,
    inputs: Sequence[str],
    function: fn.LogicFunction,
    rise: float,
    fall: float,
    power: CellPower,
    area: float,
) -> Cell:
    return Cell(
        name=name,
        inputs=tuple(inputs),
        output="Y",
        function=function,
        intrinsic_rise=rise,
        intrinsic_fall=fall,
        power=power,
        area=area,
    )


def build_default_library() -> CellLibrary:
    """Construct the default standard cell library.

    Delays are in the same integer-friendly time unit used by the SDF writer
    (picoseconds at a nominal corner); power numbers are representative
    relative values, not any foundry's data.
    """
    lib = CellLibrary()
    lib.add_all(
        [
            _combinational("BUF", ["A"], fn.buf, 12, 12, _power(1.0, 0.8, 0.5), 1.0),
            # Delay cell: minimum-drive buffer used for hold/glitch fixing.
            _combinational("DLY", ["A"], fn.buf, 20, 20, _power(0.6, 0.25, 0.15), 0.6),
            _combinational("INV", ["A"], fn.inv, 6, 5, _power(1.0, 0.5, 0.4), 0.7),
            _combinational("AND2", ["A", "B"], fn.and_gate, 14, 13, _power(1.2, 1.2, 0.8), 1.5),
            _combinational("AND3", ["A", "B", "C"], fn.and_gate, 17, 16, _power(1.3, 1.5, 1.0), 2.0),
            _combinational("AND4", ["A", "B", "C", "D"], fn.and_gate, 20, 19, _power(1.4, 1.8, 1.2), 2.5),
            _combinational("NAND2", ["A", "B"], fn.nand_gate, 9, 8, _power(1.2, 0.9, 0.7), 1.2),
            _combinational("NAND3", ["A", "B", "C"], fn.nand_gate, 12, 11, _power(1.3, 1.1, 0.9), 1.7),
            _combinational("NAND4", ["A", "B", "C", "D"], fn.nand_gate, 15, 14, _power(1.4, 1.3, 1.1), 2.2),
            _combinational("OR2", ["A", "B"], fn.or_gate, 15, 14, _power(1.2, 1.2, 0.8), 1.5),
            _combinational("OR3", ["A", "B", "C"], fn.or_gate, 18, 17, _power(1.3, 1.5, 1.0), 2.0),
            _combinational("OR4", ["A", "B", "C", "D"], fn.or_gate, 21, 20, _power(1.4, 1.8, 1.2), 2.5),
            _combinational("NOR2", ["A", "B"], fn.nor_gate, 11, 9, _power(1.2, 0.9, 0.7), 1.2),
            _combinational("NOR3", ["A", "B", "C"], fn.nor_gate, 14, 12, _power(1.3, 1.1, 0.9), 1.7),
            _combinational("NOR4", ["A", "B", "C", "D"], fn.nor_gate, 17, 15, _power(1.4, 1.3, 1.1), 2.2),
            _combinational("XOR2", ["A", "B"], fn.xor_gate, 18, 18, _power(1.6, 2.0, 1.2), 2.2),
            _combinational("XOR3", ["A", "B", "C"], fn.xor_gate, 24, 24, _power(1.8, 2.6, 1.5), 3.0),
            _combinational("XNOR2", ["A", "B"], fn.xnor_gate, 18, 18, _power(1.6, 2.0, 1.2), 2.2),
            _combinational("XNOR3", ["A", "B", "C"], fn.xnor_gate, 24, 24, _power(1.8, 2.6, 1.5), 3.0),
            _combinational("AOI21", ["A1", "A2", "B"], fn.aoi21, 13, 11, _power(1.4, 1.3, 0.9), 1.8),
            _combinational("AOI22", ["A1", "A2", "B1", "B2"], fn.aoi22, 15, 13, _power(1.5, 1.6, 1.1), 2.3),
            _combinational("OAI21", ["A1", "A2", "B"], fn.oai21, 13, 11, _power(1.4, 1.3, 0.9), 1.8),
            _combinational("OAI22", ["A1", "A2", "B1", "B2"], fn.oai22, 15, 13, _power(1.5, 1.6, 1.1), 2.3),
            _combinational("AO21", ["A1", "A2", "B"], fn.ao21, 17, 16, _power(1.4, 1.5, 1.0), 2.0),
            _combinational("OA21", ["A1", "A2", "B"], fn.oa21, 17, 16, _power(1.4, 1.5, 1.0), 2.0),
            _combinational("MUX2", ["A", "B", "S"], fn.mux2, 16, 16, _power(1.5, 1.8, 1.1), 2.2),
            _combinational("MUX4", ["A", "B", "C", "D", "S0", "S1"], fn.mux4, 24, 24, _power(1.7, 2.8, 1.8), 3.6),
            _combinational("MAJ3", ["A", "B", "C"], fn.maj3, 19, 18, _power(1.5, 1.8, 1.1), 2.4),
            _combinational("FA_SUM", ["A", "B", "CI"], fn.fa_sum, 24, 24, _power(1.8, 2.6, 1.5), 3.0),
            _combinational("FA_CO", ["A", "B", "CI"], fn.fa_carry, 19, 18, _power(1.5, 1.8, 1.1), 2.4),
            _combinational("HA_SUM", ["A", "B"], fn.ha_sum, 18, 18, _power(1.6, 2.0, 1.2), 2.2),
            _combinational("HA_CO", ["A", "B"], fn.ha_carry, 14, 13, _power(1.2, 1.2, 0.8), 1.5),
            _combinational("TIEHI", [], fn.tie_high, 0, 0, _power(0.0, 0.0, 0.1), 0.3),
            _combinational("TIELO", [], fn.tie_low, 0, 0, _power(0.0, 0.0, 0.1), 0.3),
        ]
    )
    lib.add_all(
        [
            Cell(
                name="DFF",
                inputs=("D", "CK"),
                output="Q",
                function=None,
                is_sequential=True,
                clock_pin="CK",
                data_pin="D",
                intrinsic_rise=30,
                intrinsic_fall=30,
                power=_power(1.8, 4.0, 3.0),
                area=4.5,
            ),
            # Async active-low reset (clears Q to 0 the moment RN falls).
            Cell(
                name="DFFR",
                inputs=("D", "CK", "RN"),
                output="Q",
                function=None,
                is_sequential=True,
                clock_pin="CK",
                data_pin="D",
                reset_pin="RN",
                reset_active_low=True,
                reset_async=True,
                reset_value=0,
                intrinsic_rise=32,
                intrinsic_fall=32,
                power=_power(1.9, 4.4, 3.3),
                area=5.0,
            ),
            # Clock-enable flop: EN low holds the current state.
            Cell(
                name="DFFE",
                inputs=("D", "CK", "EN"),
                output="Q",
                function=None,
                is_sequential=True,
                clock_pin="CK",
                data_pin="D",
                enable_pin="EN",
                intrinsic_rise=31,
                intrinsic_fall=31,
                power=_power(1.9, 4.2, 3.2),
                area=4.8,
            ),
            # Sync active-low reset: RN is sampled at the capture edge only.
            Cell(
                name="SDFFR",
                inputs=("D", "CK", "RN"),
                output="Q",
                function=None,
                is_sequential=True,
                clock_pin="CK",
                data_pin="D",
                reset_pin="RN",
                reset_active_low=True,
                reset_async=False,
                reset_value=0,
                intrinsic_rise=33,
                intrinsic_fall=33,
                power=_power(1.9, 4.4, 3.3),
                area=5.2,
            ),
            Cell(
                name="LATCH",
                inputs=("D", "G"),
                output="Q",
                function=None,
                is_sequential=True,
                clock_pin="G",
                data_pin="D",
                is_latch=True,
                intrinsic_rise=22,
                intrinsic_fall=22,
                power=_power(1.6, 3.0, 2.2),
                area=3.2,
            ),
        ]
    )
    return lib


#: Module-level default library shared by generators, parsers, and tests.
DEFAULT_LIBRARY = build_default_library()


def sized_variants(
    library: CellLibrary, base_name: str, sizes: Mapping[str, float]
) -> Dict[str, Cell]:
    """Create drive-strength variants of a cell (e.g. ``INV_X2``).

    Larger drive strengths are faster (delays scale down) but burn more
    internal energy and leakage.  Used by the glitch-fixing gate-resizing
    transform.
    """
    base = library.get(base_name)
    variants: Dict[str, Cell] = {}
    for suffix, strength in sizes.items():
        name = f"{base_name}_{suffix}"
        cell = Cell(
            name=name,
            inputs=base.inputs,
            output=base.output,
            function=base.function,
            is_sequential=base.is_sequential,
            clock_pin=base.clock_pin,
            data_pin=base.data_pin,
            enable_pin=base.enable_pin,
            reset_pin=base.reset_pin,
            reset_active_low=base.reset_active_low,
            reset_async=base.reset_async,
            reset_value=base.reset_value,
            init_value=base.init_value,
            is_latch=base.is_latch,
            intrinsic_rise=base.intrinsic_rise / strength,
            intrinsic_fall=base.intrinsic_fall / strength,
            power=CellPower(
                input_cap_ff=base.power.input_cap_ff * strength,
                internal_energy_fj=base.power.internal_energy_fj * strength,
                leakage_nw=base.power.leakage_nw * strength,
                output_cap_ff=base.power.output_cap_ff * strength,
            ),
            area=base.area * strength,
        )
        if name not in library:
            library.add(cell)
        variants[name] = cell
    return variants
