"""Standard cell library subsystem."""

from .library import (
    Cell,
    CellLibrary,
    CellPower,
    DEFAULT_LIBRARY,
    build_default_library,
    sized_variants,
)

__all__ = [
    "Cell",
    "CellLibrary",
    "CellPower",
    "DEFAULT_LIBRARY",
    "build_default_library",
    "sized_variants",
]
