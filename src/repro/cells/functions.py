"""Boolean logic functions for the standard cell library.

Every function takes a tuple of input bits ordered exactly as the cell's pin
list and returns the single output bit.  These functions are the ground truth
from which the Fig. 4 truth-table arrays are generated.
"""

from __future__ import annotations

from typing import Callable, Sequence

LogicFunction = Callable[[Sequence[int]], int]


def buf(inputs: Sequence[int]) -> int:
    """Non-inverting buffer."""
    (a,) = inputs
    return a


def inv(inputs: Sequence[int]) -> int:
    """Inverter."""
    (a,) = inputs
    return a ^ 1


def and_gate(inputs: Sequence[int]) -> int:
    """N-input AND."""
    result = 1
    for bit in inputs:
        result &= bit
    return result


def nand_gate(inputs: Sequence[int]) -> int:
    """N-input NAND."""
    return and_gate(inputs) ^ 1


def or_gate(inputs: Sequence[int]) -> int:
    """N-input OR."""
    result = 0
    for bit in inputs:
        result |= bit
    return result


def nor_gate(inputs: Sequence[int]) -> int:
    """N-input NOR."""
    return or_gate(inputs) ^ 1


def xor_gate(inputs: Sequence[int]) -> int:
    """N-input XOR (odd parity)."""
    result = 0
    for bit in inputs:
        result ^= bit
    return result


def xnor_gate(inputs: Sequence[int]) -> int:
    """N-input XNOR (even parity)."""
    return xor_gate(inputs) ^ 1


def aoi21(inputs: Sequence[int]) -> int:
    """AND-OR-invert: Y = ~((A1 & A2) | B)."""
    a1, a2, b = inputs
    return ((a1 & a2) | b) ^ 1


def aoi22(inputs: Sequence[int]) -> int:
    """AND-OR-invert: Y = ~((A1 & A2) | (B1 & B2))."""
    a1, a2, b1, b2 = inputs
    return ((a1 & a2) | (b1 & b2)) ^ 1


def oai21(inputs: Sequence[int]) -> int:
    """OR-AND-invert: Y = ~((A1 | A2) & B)."""
    a1, a2, b = inputs
    return ((a1 | a2) & b) ^ 1


def oai22(inputs: Sequence[int]) -> int:
    """OR-AND-invert: Y = ~((A1 | A2) & (B1 | B2))."""
    a1, a2, b1, b2 = inputs
    return ((a1 | a2) & (b1 | b2)) ^ 1


def ao21(inputs: Sequence[int]) -> int:
    """AND-OR: Y = (A1 & A2) | B."""
    a1, a2, b = inputs
    return (a1 & a2) | b


def oa21(inputs: Sequence[int]) -> int:
    """OR-AND: Y = (A1 | A2) & B."""
    a1, a2, b = inputs
    return (a1 | a2) & b


def mux2(inputs: Sequence[int]) -> int:
    """2:1 multiplexer: Y = S ? B : A (pins ordered A, B, S)."""
    a, b, s = inputs
    return b if s else a


def mux4(inputs: Sequence[int]) -> int:
    """4:1 multiplexer: pins ordered A, B, C, D, S0, S1."""
    a, b, c, d, s0, s1 = inputs
    select = (s1 << 1) | s0
    return (a, b, c, d)[select]


def maj3(inputs: Sequence[int]) -> int:
    """3-input majority (carry function of a full adder)."""
    a, b, c = inputs
    return (a & b) | (a & c) | (b & c)


def fa_sum(inputs: Sequence[int]) -> int:
    """Full-adder sum output: S = A ^ B ^ CI."""
    return xor_gate(inputs)


def fa_carry(inputs: Sequence[int]) -> int:
    """Full-adder carry output: CO = majority(A, B, CI)."""
    return maj3(inputs)


def ha_sum(inputs: Sequence[int]) -> int:
    """Half-adder sum output: S = A ^ B."""
    return xor_gate(inputs)


def ha_carry(inputs: Sequence[int]) -> int:
    """Half-adder carry output: CO = A & B."""
    return and_gate(inputs)


def tie_high(inputs: Sequence[int]) -> int:
    """Constant logic 1."""
    return 1


def tie_low(inputs: Sequence[int]) -> int:
    """Constant logic 0."""
    return 0
