"""Benchmark suite definitions mirroring the paper's Table 2.

Each :class:`BenchmarkCase` pairs a generated design with a testbench kind,
cycle count, and target activity factor chosen to land in the same regime as
the corresponding paper benchmark (high-activity scan vs low-activity
functional windows, small vs large designs).  Designs are scaled down from
millions of gates to laptop-sized netlists; ``paper`` records the original
benchmark's numbers so the harness can compare speedup *shape* against the
paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netlist import Netlist
from . import designs


@dataclass(frozen=True)
class PaperNumbers:
    """The corresponding row of the paper's Table 2 (V100)."""

    gate_count: int
    activity_factor: float
    cycles: int
    baseline_app_s: float
    baseline_kernel_s: float
    gatspi_app_s: float
    gatspi_kernel_s: float

    @property
    def kernel_speedup(self) -> float:
        return self.baseline_kernel_s / self.gatspi_kernel_s

    @property
    def app_speedup(self) -> float:
        return self.baseline_app_s / self.gatspi_app_s


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark: a design generator plus a testbench description."""

    name: str
    testbench: str
    design_factory: Callable[[], Netlist]
    stimulus_kind: str
    cycles: int
    activity_factor: float
    clock_period: int = 1000
    seed: int = 1
    paper: Optional[PaperNumbers] = None

    def build_design(self) -> Netlist:
        return self.design_factory()


def _scale() -> float:
    """Optional global scale factor for benchmark sizes (env override)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def _cycles(base: int) -> int:
    return max(10, int(base * _scale()))


def table2_cases() -> List[BenchmarkCase]:
    """The twelve Table 2 benchmarks, scaled for pure-Python execution."""
    scale = _scale()
    gates = lambda n: max(50, int(n * scale))  # noqa: E731 - local shorthand
    return [
        BenchmarkCase(
            name="32b_int_adder",
            testbench="random stimulus",
            design_factory=lambda: designs.ripple_carry_adder(32),
            stimulus_kind="random",
            cycles=_cycles(200),
            activity_factor=1.0,
            seed=101,
            paper=PaperNumbers(1_000, 1.0, 60_000, 554, 529, 5.98, 5.75),
        ),
        BenchmarkCase(
            name="NVDLA_m(small)",
            testbench="convolution",
            design_factory=lambda: designs.nvdla_like_mac_block(macs=4, data_bits=4),
            stimulus_kind="functional",
            cycles=_cycles(300),
            activity_factor=0.058,
            seed=102,
            paper=PaperNumbers(14_000, 0.058, 743_000, 455, 373, 12.05, 4.35),
        ),
        BenchmarkCase(
            name="NVDLA_m(large)",
            testbench="convolution",
            design_factory=lambda: designs.nvdla_like_mac_block(macs=8, data_bits=4),
            stimulus_kind="functional",
            cycles=_cycles(150),
            activity_factor=0.0017,
            seed=103,
            paper=PaperNumbers(257_000, 0.0017, 132_000, 159, 133, 8.56, 1.4),
        ),
        BenchmarkCase(
            name="NVDLA_m(large)",
            testbench="scan",
            design_factory=lambda: designs.nvdla_like_mac_block(macs=8, data_bits=4),
            stimulus_kind="scan",
            cycles=_cycles(40),
            activity_factor=1.2,
            seed=104,
            paper=PaperNumbers(257_000, 1.2, 5_000, 723, 670, 18.27, 3.82),
        ),
        BenchmarkCase(
            name="NVDLA(large)",
            testbench="sanity test",
            design_factory=lambda: designs.nvdla_like_mac_block(macs=12, data_bits=4),
            stimulus_kind="functional",
            cycles=_cycles(100),
            activity_factor=0.00079,
            seed=105,
            paper=PaperNumbers(1_800_000, 0.00079, 100_000, 180, 116, 35.41, 4.09),
        ),
        BenchmarkCase(
            name="NVDLA(large)",
            testbench="scan",
            design_factory=lambda: designs.nvdla_like_mac_block(macs=12, data_bits=4),
            stimulus_kind="scan",
            cycles=_cycles(25),
            activity_factor=1.0,
            seed=106,
            paper=PaperNumbers(1_800_000, 1.0, 1_500, 3211, 2535, 70.81, 9.99),
        ),
        BenchmarkCase(
            name="Industry Design A",
            testbench="functional 1",
            design_factory=lambda: designs.industry_like(
                gate_count=gates(800), num_flops=100, depth=14, seed=111,
                name="design_a",
            ),
            stimulus_kind="functional",
            cycles=_cycles(100),
            activity_factor=0.094,
            seed=111,
            paper=PaperNumbers(77_000, 0.094, 9_400, 670, 635, 4.05, 0.79),
        ),
        BenchmarkCase(
            name="Industry Design B",
            testbench="functional 2",
            design_factory=lambda: designs.industry_like(
                gate_count=gates(2000), num_flops=250, depth=22, seed=112,
                name="design_b",
            ),
            stimulus_kind="functional",
            cycles=_cycles(200),
            activity_factor=0.013,
            seed=112,
            paper=PaperNumbers(2_000_000, 0.013, 78_000, 16_060, 14_924, 41.76, 14.55),
        ),
        BenchmarkCase(
            name="Industry Design B",
            testbench="high activity short test",
            design_factory=lambda: designs.industry_like(
                gate_count=gates(2000), num_flops=250, depth=22, seed=112,
                name="design_b",
            ),
            stimulus_kind="functional",
            cycles=_cycles(50),
            activity_factor=0.186,
            seed=113,
            paper=PaperNumbers(2_000_000, 0.186, 11_000, 20_969, 18_727, 53.46, 19.18),
        ),
        BenchmarkCase(
            name="Industry Design B",
            testbench="high activity long test",
            design_factory=lambda: designs.industry_like(
                gate_count=gates(2000), num_flops=250, depth=22, seed=112,
                name="design_b",
            ),
            stimulus_kind="functional",
            cycles=_cycles(120),
            activity_factor=0.183,
            seed=114,
            paper=PaperNumbers(2_000_000, 0.183, 33_000, 49_230, 46_617, 72.35, 38.90),
        ),
        BenchmarkCase(
            name="Industry Design C",
            testbench="functional 2",
            design_factory=lambda: designs.industry_like(
                gate_count=gates(1900), num_flops=230, depth=20, seed=115,
                name="design_c",
            ),
            stimulus_kind="functional",
            cycles=_cycles(120),
            activity_factor=0.015,
            seed=115,
            paper=PaperNumbers(1_900_000, 0.015, 32_000, 6_224, 5_065, 38.91, 6.98),
        ),
        BenchmarkCase(
            name="Industry Design D",
            testbench="functional 3",
            design_factory=lambda: designs.industry_like(
                gate_count=gates(2300), num_flops=280, depth=24, seed=116,
                name="design_d",
            ),
            stimulus_kind="functional",
            cycles=_cycles(150),
            activity_factor=0.024,
            seed=116,
            paper=PaperNumbers(2_300_000, 0.024, 62_000, 10_638, 8_896, 68.12, 15.72),
        ),
    ]


def representative_cases() -> List[BenchmarkCase]:
    """The three representative benchmarks used in Tables 3, 5-8.

    The paper uses Design A (func. 1), Design B (func. 2) and Design B (high
    activity) as its representative small / unbalanced-low-activity /
    balanced-high-activity workloads.
    """
    by_key: Dict[tuple, BenchmarkCase] = {
        (case.name, case.testbench): case for case in table2_cases()
    }
    return [
        by_key[("Industry Design A", "functional 1")],
        by_key[("Industry Design B", "functional 2")],
        by_key[("Industry Design B", "high activity short test")],
    ]


def case_by_name(name: str, testbench: Optional[str] = None) -> BenchmarkCase:
    """Look up one Table 2 benchmark by design (and optionally testbench)."""
    for case in table2_cases():
        if case.name == name and (testbench is None or case.testbench == testbench):
            return case
    raise KeyError(f"no benchmark named {name!r} / {testbench!r}")
