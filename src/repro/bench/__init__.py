"""Benchmark suite: design generators, Table 2 cases, harness, formatting."""

from . import designs
from .suites import BenchmarkCase, PaperNumbers, case_by_name, representative_cases, table2_cases
from .runner import BenchmarkArtifacts, BenchmarkRow, prepare_case, run_case, run_suite
from .tables import TABLE2_HEADER, format_rows, format_table2, table2_rows

__all__ = [
    "designs",
    "BenchmarkCase",
    "PaperNumbers",
    "case_by_name",
    "representative_cases",
    "table2_cases",
    "BenchmarkArtifacts",
    "BenchmarkRow",
    "prepare_case",
    "run_case",
    "run_suite",
    "TABLE2_HEADER",
    "format_rows",
    "format_table2",
    "table2_rows",
]
