"""Formatting of benchmark results into the paper's table layouts."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .runner import BenchmarkRow

TABLE2_HEADER = [
    "Design",
    "Testbench",
    "Gates",
    "AF",
    "Cycles",
    "Base App(s)",
    "Base Kern(s)",
    "GATSPI App(s)",
    "GATSPI Kern(s)",
    "App X",
    "Kern X",
    "Model Kern X",
    "SAIF",
]


def _fmt(value: float, digits: int = 3) -> str:
    if value == 0:
        return "0"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.{digits}g}"


def table2_rows(rows: Iterable[BenchmarkRow]) -> List[List[str]]:
    formatted: List[List[str]] = []
    for row in rows:
        formatted.append(
            [
                row.name,
                row.testbench,
                str(row.gate_count),
                f"{row.activity_factor:.4g}",
                str(row.cycles),
                _fmt(row.baseline_app_s),
                _fmt(row.baseline_kernel_s),
                _fmt(row.gatspi_app_s),
                _fmt(row.gatspi_kernel_s),
                f"{row.app_speedup:.1f}X",
                f"{row.kernel_speedup:.1f}X",
                f"{row.modeled_kernel_speedup:.0f}X",
                "match" if row.saif_match else "MISMATCH",
            ]
        )
    return formatted


def format_rows(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text rendering of a table."""
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def format_table2(rows: Iterable[BenchmarkRow]) -> str:
    return format_rows(TABLE2_HEADER, table2_rows(rows))
