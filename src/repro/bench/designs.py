"""Benchmark design generators.

The paper evaluates on a 32-bit integer adder, NVDLA convolution blocks at
several configurations, and four multi-million-gate industry designs.  We
cannot ship those netlists, so this module generates synthetic equivalents
that expose the same structural knobs the experiments sweep: gate count,
logic depth, fanout distribution, cell-type mix, and the ratio of sequential
boundaries to combinational logic.  Gate counts are scaled down to laptop
budgets; the scale factors are recorded by the benchmark suite.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..cells import CellLibrary
from ..netlist import Netlist, NetlistBuilder


# ----------------------------------------------------------------------
# Arithmetic blocks
# ----------------------------------------------------------------------
def ripple_carry_adder(bits: int = 32, name: str = "int_adder") -> Netlist:
    """A ``bits``-wide ripple-carry adder built from XOR/AND/OR gates.

    This is the benchmark suite's stand-in for the paper's ``32b_int_adder``;
    it is deliberately built gate-by-gate (rather than from FA cells) so it
    has realistic depth and internal glitching.
    """
    if bits < 1:
        raise ValueError("adder width must be at least 1")
    builder = NetlistBuilder(name)
    a = builder.inputs("a", bits)
    b = builder.inputs("b", bits)
    carry_in = builder.input("cin")
    sums = builder.outputs("sum", bits)
    carry_out = builder.output("cout")

    carry = carry_in
    for bit in range(bits):
        propagate = builder.gate("XOR2", [a[bit], b[bit]])
        generate = builder.gate("AND2", [a[bit], b[bit]])
        builder.gate("XOR2", [propagate, carry], output_net=sums[bit])
        carry_and = builder.gate("AND2", [propagate, carry])
        carry = builder.gate("OR2", [generate, carry_and])
    builder.gate("BUF", [carry], output_net=carry_out)
    return builder.build()


def carry_select_adder(bits: int = 32, block: int = 4, name: str = "csel_adder") -> Netlist:
    """A carry-select adder: wider, shallower, and much more glitch-prone."""
    builder = NetlistBuilder(name)
    a = builder.inputs("a", bits)
    b = builder.inputs("b", bits)
    carry_in = builder.input("cin")
    sums = builder.outputs("sum", bits)
    carry_out = builder.output("cout")

    def block_adder(a_bits, b_bits, cin_net):
        carry = cin_net
        out_sums = []
        for a_net, b_net in zip(a_bits, b_bits):
            propagate = builder.gate("XOR2", [a_net, b_net])
            generate = builder.gate("AND2", [a_net, b_net])
            out_sums.append(builder.gate("XOR2", [propagate, carry]))
            carry = builder.gate(
                "OR2", [generate, builder.gate("AND2", [propagate, carry])]
            )
        return out_sums, carry

    zero = builder.gate("TIELO", [])
    one = builder.gate("TIEHI", [])
    carry = carry_in
    for start in range(0, bits, block):
        stop = min(start + block, bits)
        a_bits = a[start:stop]
        b_bits = b[start:stop]
        sums0, carry0 = block_adder(a_bits, b_bits, zero)
        sums1, carry1 = block_adder(a_bits, b_bits, one)
        for offset, (s0, s1) in enumerate(zip(sums0, sums1)):
            builder.gate("MUX2", [s0, s1, carry], output_net=sums[start + offset])
        carry = builder.gate("MUX2", [carry0, carry1, carry])
    builder.gate("BUF", [carry], output_net=carry_out)
    return builder.build()


def array_multiplier(bits: int = 8, name: str = "multiplier") -> Netlist:
    """A ``bits``×``bits`` array multiplier — the classic glitch generator."""
    builder = NetlistBuilder(name)
    a = builder.inputs("a", bits)
    b = builder.inputs("b", bits)
    product = builder.outputs("p", 2 * bits)

    partial = [
        [builder.gate("AND2", [a[i], b[j]]) for i in range(bits)]
        for j in range(bits)
    ]
    # Row-by-row carry-save reduction.
    row_sum: List[str] = list(partial[0])
    row_carry: List[Optional[str]] = [None] * bits
    outputs: List[str] = [row_sum[0]]
    for j in range(1, bits):
        new_sum: List[str] = []
        new_carry: List[Optional[str]] = []
        for i in range(bits):
            addend = partial[j][i]
            above = row_sum[i + 1] if i + 1 < bits else None
            carry_in = row_carry[i]
            terms = [t for t in (addend, above, carry_in) if t is not None]
            if len(terms) == 1:
                new_sum.append(terms[0])
                new_carry.append(None)
            elif len(terms) == 2:
                new_sum.append(builder.gate("XOR2", terms))
                new_carry.append(builder.gate("AND2", terms))
            else:
                new_sum.append(builder.gate("FA_SUM", terms))
                new_carry.append(builder.gate("FA_CO", terms))
        outputs.append(new_sum[0])
        row_sum = new_sum
        row_carry = new_carry
    # Final ripple to resolve remaining carries.
    carry: Optional[str] = None
    for i in range(1, bits):
        terms = [t for t in (row_sum[i] if i < bits else None,
                             row_carry[i - 1], carry) if t is not None]
        if not terms:
            outputs.append(builder.gate("TIELO", []))
            carry = None
        elif len(terms) == 1:
            outputs.append(terms[0])
            carry = None
        elif len(terms) == 2:
            outputs.append(builder.gate("XOR2", terms))
            carry = builder.gate("AND2", terms)
        else:
            outputs.append(builder.gate("FA_SUM", terms))
            carry = builder.gate("FA_CO", terms)
    outputs.append(carry if carry is not None else builder.gate("TIELO", []))
    for index in range(2 * bits):
        source = outputs[index] if index < len(outputs) else builder.gate("TIELO", [])
        builder.gate("BUF", [source], output_net=product[index])
    return builder.build()


# ----------------------------------------------------------------------
# NVDLA-like convolution datapath
# ----------------------------------------------------------------------
def nvdla_like_mac_block(
    macs: int = 8,
    data_bits: int = 4,
    name: str = "nvdla_m",
    with_registers: bool = True,
) -> Netlist:
    """A convolution MAC array reminiscent of the NVDLA conv core.

    ``macs`` multiply units (``data_bits`` × ``data_bits``) feed a balanced
    adder tree; pipeline registers at the inputs make their outputs the
    pseudo-primary inputs, exactly as in re-simulation of the real design.
    """
    builder = NetlistBuilder(name)
    clock = builder.input("clk")
    mult_outputs_per_mac: List[List[str]] = []

    for mac in range(macs):
        data = builder.inputs(f"d{mac}", data_bits)
        weight = builder.inputs(f"w{mac}", data_bits)
        if with_registers:
            data = [builder.flop(net, clock) for net in data]
            weight = [builder.flop(net, clock) for net in weight]
        # Small array multiplier per MAC.
        partial = [
            [builder.gate("AND2", [data[i], weight[j]]) for i in range(data_bits)]
            for j in range(data_bits)
        ]
        row = list(partial[0])
        for j in range(1, data_bits):
            next_row = []
            carry = None
            for i in range(data_bits):
                terms = [partial[j][i]]
                if i + 1 < data_bits:
                    terms.append(row[i + 1])
                if carry is not None:
                    terms.append(carry)
                if len(terms) == 1:
                    next_row.append(terms[0])
                    carry = None
                elif len(terms) == 2:
                    next_row.append(builder.gate("XOR2", terms))
                    carry = builder.gate("AND2", terms)
                else:
                    next_row.append(builder.gate("FA_SUM", terms))
                    carry = builder.gate("FA_CO", terms)
            row = next_row
        mult_outputs_per_mac.append(row)

    # Balanced adder tree over the MAC outputs (bitwise XOR/MAJ reduction).
    def add_vectors(left: Sequence[str], right: Sequence[str]) -> List[str]:
        carry = None
        out = []
        for a_net, b_net in zip(left, right):
            terms = [a_net, b_net] + ([carry] if carry is not None else [])
            if len(terms) == 2:
                out.append(builder.gate("XOR2", terms))
                carry = builder.gate("AND2", terms)
            else:
                out.append(builder.gate("FA_SUM", terms))
                carry = builder.gate("FA_CO", terms)
        out.append(carry if carry is not None else builder.gate("TIELO", []))
        return out

    level = mult_outputs_per_mac
    while len(level) > 1:
        next_level = []
        for index in range(0, len(level) - 1, 2):
            next_level.append(add_vectors(level[index], level[index + 1]))
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level

    accum = level[0]
    outputs = builder.outputs("acc", len(accum))
    for net, port in zip(accum, outputs):
        if with_registers:
            q = builder.flop(net, clock)
            builder.gate("BUF", [q], output_net=port)
        else:
            builder.gate("BUF", [net], output_net=port)
    return builder.build()


# ----------------------------------------------------------------------
# Industry-like random logic
# ----------------------------------------------------------------------
def industry_like(
    gate_count: int = 2000,
    num_flops: int = 200,
    depth: int = 20,
    seed: int = 1,
    name: str = "industry",
    library: Optional[CellLibrary] = None,
) -> Netlist:
    """A layered random netlist shaped like synthesized industrial logic.

    Gates are placed in ``depth`` layers; each gate's inputs come from nearby
    earlier layers (locality), with a long tail of high-fanout nets (clock
    gates, control signals).  ``num_flops`` flip-flops form the sequential
    boundary so the design exercises re-simulation from pseudo-primary
    inputs, as the industry benchmarks in the paper do.
    """
    if depth < 2:
        raise ValueError("depth must be at least 2")
    rng = random.Random(seed)
    builder = NetlistBuilder(name, library=library)
    clock = builder.input("clk")
    primary = builder.inputs("pi", max(4, num_flops // 8))

    flop_outputs = []
    for index in range(num_flops):
        data = rng.choice(primary)
        flop_outputs.append(builder.flop(data, clock, name=f"reg_in_{index}"))

    cells = [
        ("INV", 10), ("BUF", 6), ("NAND2", 18), ("NOR2", 12), ("AND2", 8),
        ("OR2", 8), ("XOR2", 6), ("XNOR2", 4), ("AOI21", 8), ("OAI21", 8),
        ("AOI22", 4), ("OAI22", 3), ("MUX2", 5), ("NAND3", 4), ("NOR3", 3),
        ("AND3", 2), ("OR3", 2), ("XOR3", 1), ("MAJ3", 1), ("NAND4", 1),
        ("NOR4", 1),
    ]
    population = [c for c, weight in cells for _ in range(weight)]
    lib = builder.netlist.library

    layers: List[List[str]] = [list(flop_outputs) + list(primary)]
    gates_per_layer = max(1, gate_count // depth)
    remaining = gate_count
    layer_index = 0
    while remaining > 0:
        layer_index += 1
        this_layer = min(gates_per_layer, remaining)
        new_nets: List[str] = []
        for _ in range(this_layer):
            cell_name = rng.choice(population)
            num_inputs = lib.get(cell_name).num_inputs
            inputs = []
            for _ in range(num_inputs):
                # Prefer recent layers; occasionally reach far back
                # (reconvergence) or to a high-fanout control net.
                if rng.random() < 0.75 and len(layers) >= 1:
                    source_layer = layers[-1]
                elif rng.random() < 0.5 and len(layers) >= 2:
                    source_layer = layers[rng.randrange(max(1, len(layers) - 3), len(layers))]
                else:
                    source_layer = layers[rng.randrange(len(layers))]
                inputs.append(rng.choice(source_layer))
            new_nets.append(builder.gate(cell_name, inputs))
        layers.append(new_nets)
        remaining -= this_layer

    # Endpoints: outputs and capture flops.
    final_nets = layers[-1] + (layers[-2] if len(layers) > 2 else [])
    num_outputs = max(2, num_flops // 8)
    for index in range(num_outputs):
        port = builder.output(f"po[{index}]")
        builder.gate("BUF", [rng.choice(final_nets)], output_net=port)
    for index in range(num_flops):
        builder.flop(rng.choice(final_nets), clock, name=f"reg_out_{index}")
    return builder.build()


def sequential_datapath(
    bits: int = 16,
    stages: int = 3,
    seed: int = 7,
    name: str = "seq_datapath",
    library: Optional[CellLibrary] = None,
) -> Netlist:
    """A Table-2-style *clocked* workload for the sequential update loop.

    Unlike the other generators — which model one combinational frame
    between register boundaries — this design is meant to be driven
    through ``run_cycles``: an internal LFSR (plain ``DFF`` stages, XNOR
    feedback so the all-zero power-on state sequences) feeds ``stages``
    registered mixing layers.  Intermediate layers capture into ``DFFR``
    flops on an async active-low ``rst_n``; the final layer captures into
    enable-gated ``DFFE`` flops on ``en`` — so one design exercises every
    register flavor the clocked driver commits.  Single PI clock domain
    (``clk``), reset and enable are PIs too, making it valid for every
    executor including streamed replay.
    """
    if bits < 4:
        raise ValueError("bits must be at least 4")
    if stages < 1:
        raise ValueError("stages must be at least 1")
    rng = random.Random(seed)
    builder = NetlistBuilder(name, library=library)
    clock = builder.input("clk")
    rst_n = builder.input("rst_n")
    enable = builder.input("en")

    # Pseudo-random source: XNOR-feedback Fibonacci LFSR.
    lfsr = [f"lfsr_q[{i}]" for i in range(bits)]
    taps = (bits, bits - 1, bits // 2, 2)
    acc = lfsr[taps[0] - 1]
    for tap in taps[1:-1]:
        acc = builder.gate("XOR2", [acc, lfsr[tap - 1]])
    feedback = builder.gate("XNOR2", [acc, lfsr[taps[-1] - 1]])
    previous = feedback
    for i in range(bits):
        builder.flop(
            previous, clock, output_net=lfsr[i], name=f"lfsr_reg[{i}]"
        )
        previous = lfsr[i]

    mix_cells = ("XOR2", "XNOR2", "NAND2", "OR2")
    data = lfsr
    for stage in range(stages):
        capture = stage == stages - 1
        registered: List[str] = []
        for i in range(bits):
            left = data[i]
            right = data[(i * 5 + stage + 1) % bits]
            mixed = builder.gate(rng.choice(mix_cells), [left, right])
            registered.append(
                builder.flop(
                    mixed,
                    clock,
                    cell_name="DFFE" if capture else "DFFR",
                    name=f"st{stage}_reg[{i}]",
                    reset_net=None if capture else rst_n,
                    enable_net=enable if capture else None,
                )
            )
        data = registered

    for i, port in enumerate(builder.outputs("dout", bits)):
        builder.gate("BUF", [data[i]], output_net=port)
    return builder.build()
