"""Benchmark harness: run one case against two named backends.

For every benchmark the harness measures the Python runtimes of the primary
backend (default ``"gatspi"``) and the baseline backend (default ``"event"``,
the commercial-simulator stand-in) — real, laptop-scale speedups — checks
that their SAIF toggle counts agree (the paper's accuracy criterion), and
additionally evaluates the analytic GPU/CPU performance models to produce
paper-scale speedup estimates for the same workload shape.

Backends are resolved through the :mod:`repro.api` registry, so any
registered engine can be benchmarked against any other:
``run_case(case, backend="threaded-cpu", baseline_backend="event")``.
Backend strings may be full specs with prepare options, e.g.
``backend="gatspi:kernel=scalar"`` to benchmark the scalar reference kernel
against the level-batched vector kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..api import resolve_backend
from ..core.config import SimConfig
from ..core.results import SimulationResult
from ..gpu import ApplicationModel, GpuSpec, KernelPerfModel, KernelWorkload, V100
from ..netlist import Netlist
from ..power import summarize_activity
from ..sdf import SyntheticDelayModel, annotation_from_design_delays
from ..waveforms import TestbenchSpec, measured_activity_factor, stimulus_for_netlist
from .suites import BenchmarkCase


@dataclass
class BenchmarkRow:
    """One row of the Table 2 style results."""

    name: str
    testbench: str
    gate_count: int
    cycles: int
    activity_factor: float
    baseline_app_s: float
    baseline_kernel_s: float
    gatspi_app_s: float
    gatspi_kernel_s: float
    saif_match: bool
    modeled_gpu_kernel_s: float = 0.0
    modeled_cpu_kernel_s: float = 0.0
    modeled_gpu_app_s: float = 0.0
    modeled_cpu_app_s: float = 0.0
    backend: str = "gatspi"
    baseline_backend: str = "event"
    # Per-level batch execution stats of the primary backend (vector kernel).
    kernel_mode: str = ""
    #: Array backend (repro.core.xp) the primary backend's data plane ran on.
    device: str = ""
    level_batches: int = 0
    max_batch_tasks: int = 0
    mean_batch_tasks: float = 0.0
    #: Window-axis shards of the primary backend (1 unless gatspi-sharded).
    shards: int = 1
    # Per-phase application timings of the primary backend (Table 5 shape).
    restructure_mode: str = ""
    restructure_s: float = 0.0
    host_to_device_s: float = 0.0
    scheduling_s: float = 0.0
    readback_s: float = 0.0

    @property
    def boundary_phase_s(self) -> float:
        """Non-kernel restructure/load/readback time of the primary backend."""
        return self.restructure_s + self.host_to_device_s + self.readback_s

    @property
    def kernel_speedup(self) -> float:
        if self.gatspi_kernel_s == 0:
            return float("inf")
        return self.baseline_kernel_s / self.gatspi_kernel_s

    @property
    def app_speedup(self) -> float:
        if self.gatspi_app_s == 0:
            return float("inf")
        return self.baseline_app_s / self.gatspi_app_s

    @property
    def modeled_kernel_speedup(self) -> float:
        if self.modeled_gpu_kernel_s == 0:
            return float("inf")
        return self.modeled_cpu_kernel_s / self.modeled_gpu_kernel_s

    @property
    def modeled_app_speedup(self) -> float:
        if self.modeled_gpu_app_s == 0:
            return float("inf")
        return self.modeled_cpu_app_s / self.modeled_gpu_app_s


@dataclass
class BenchmarkArtifacts:
    """Full outputs of one benchmark run (for further analysis)."""

    case: BenchmarkCase
    netlist: Netlist
    row: BenchmarkRow
    gatspi_result: SimulationResult
    reference_result: SimulationResult
    workload: KernelWorkload


def prepare_case(case: BenchmarkCase):
    """Build the design, delay annotation, and stimulus for one benchmark."""
    netlist = case.build_design()
    delays = SyntheticDelayModel(seed=case.seed).build(netlist)
    annotation = annotation_from_design_delays(netlist, delays)
    spec = TestbenchSpec(
        name=case.testbench,
        cycles=case.cycles,
        clock_period=case.clock_period,
        activity_factor=case.activity_factor,
        seed=case.seed,
    )
    stimulus = stimulus_for_netlist(netlist, spec, kind=case.stimulus_kind)
    return netlist, annotation, stimulus


def run_case(
    case: BenchmarkCase,
    config: Optional[SimConfig] = None,
    device: GpuSpec = V100,
    run_reference: bool = True,
    backend: str = "gatspi",
    baseline_backend: str = "event",
) -> BenchmarkArtifacts:
    """Run one benchmark end to end and collect all measurements.

    ``backend`` and ``baseline_backend`` name engines in the
    :mod:`repro.api` registry.  The primary backend's preparation
    (compilation) is included in its measured application time — the paper
    counts netlist/SDF compilation as part of the GATSPI application run —
    while the baseline's elaboration happens before its timer starts, as a
    long-lived commercial simulator's would.
    """
    config = config or SimConfig(clock_period=case.clock_period)
    netlist, annotation, stimulus = prepare_case(case)

    primary, primary_options = resolve_backend(backend)
    start = time.perf_counter()
    session = primary.prepare(
        netlist, annotation=annotation, config=config, **primary_options
    )
    gatspi_result = session.run(stimulus, cycles=case.cycles)
    gatspi_app = time.perf_counter() - start

    if run_reference:
        baseline, baseline_options = resolve_backend(baseline_backend)
        baseline_session = baseline.prepare(
            netlist, annotation=annotation, config=config, **baseline_options
        )
        start = time.perf_counter()
        reference_result = baseline_session.run(stimulus, cycles=case.cycles)
        baseline_app = time.perf_counter() - start
        baseline_kernel = reference_result.kernel_runtime
        saif_match = gatspi_result.matches_toggle_counts(reference_result)
    else:
        reference_result = gatspi_result
        baseline_app = gatspi_app
        baseline_kernel = gatspi_result.kernel_runtime
        saif_match = True

    activity = summarize_activity(netlist, gatspi_result, case.cycles)
    workload = KernelWorkload.from_result(netlist, gatspi_result, design=case.name)

    kernel_model = KernelPerfModel(device)
    app_model = ApplicationModel(device)
    source_events = sum(
        gatspi_result.toggle_counts.get(net, 0) for net in netlist.source_nets()
    )
    estimate = app_model.estimate(
        workload, source_events=source_events, net_count=len(netlist.nets),
        config=config,
    )

    row = BenchmarkRow(
        name=case.name,
        testbench=case.testbench,
        gate_count=netlist.gate_count,
        cycles=case.cycles,
        activity_factor=activity.activity_factor,
        baseline_app_s=baseline_app,
        baseline_kernel_s=baseline_kernel,
        gatspi_app_s=gatspi_app,
        gatspi_kernel_s=gatspi_result.kernel_runtime,
        saif_match=saif_match,
        modeled_gpu_kernel_s=kernel_model.predict_kernel_seconds(workload, config),
        modeled_cpu_kernel_s=kernel_model.baseline_kernel_seconds(workload),
        modeled_gpu_app_s=estimate.total,
        modeled_cpu_app_s=kernel_model.baseline_application_seconds(workload),
        backend=backend,
        baseline_backend=baseline_backend,
        kernel_mode=gatspi_result.stats.kernel_mode,
        device=gatspi_result.stats.device,
        level_batches=gatspi_result.stats.level_batches,
        max_batch_tasks=gatspi_result.stats.max_batch_tasks,
        mean_batch_tasks=gatspi_result.stats.mean_batch_tasks(),
        shards=gatspi_result.stats.shards,
        restructure_mode=gatspi_result.stats.restructure_mode,
        restructure_s=gatspi_result.timings.restructure,
        host_to_device_s=gatspi_result.timings.host_to_device,
        scheduling_s=gatspi_result.timings.scheduling,
        readback_s=gatspi_result.timings.readback,
    )
    return BenchmarkArtifacts(
        case=case,
        netlist=netlist,
        row=row,
        gatspi_result=gatspi_result,
        reference_result=reference_result,
        workload=workload,
    )


def run_suite(
    cases: List[BenchmarkCase],
    config: Optional[SimConfig] = None,
    device: GpuSpec = V100,
    run_reference: bool = True,
    backend: str = "gatspi",
    baseline_backend: str = "event",
) -> List[BenchmarkArtifacts]:
    """Run a list of benchmark cases sequentially."""
    return [
        run_case(
            case,
            config=config,
            device=device,
            run_reference=run_reference,
            backend=backend,
            baseline_backend=baseline_backend,
        )
        for case in cases
    ]
