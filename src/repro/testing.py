"""Deterministic random-design and random-stimulus builders.

Shared by the test suite, the benchmarks, and ad-hoc experiments.  These
used to live in ``tests/conftest.py``, where importing them as
``from conftest import ...`` was ambiguous whenever another ``conftest.py``
(e.g. ``benchmarks/``) was collected first; as a real module they are
importable from anywhere without path tricks.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .core.waveform import Waveform
from .netlist import Netlist, NetlistBuilder

#: Cell mix used by :func:`build_random_netlist`.
RANDOM_NETLIST_CELLS = (
    "INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2",
    "AOI21", "OAI21", "MUX2", "AOI22", "MAJ3", "NAND3", "OR3",
)


def build_random_netlist(
    num_inputs: int = 6, num_gates: int = 40, seed: int = 0
) -> Netlist:
    """A random combinational netlist used by equivalence tests."""
    rng = random.Random(seed)
    builder = NetlistBuilder(f"rand_{seed}")
    nets = [builder.input(f"i{k}") for k in range(num_inputs)]
    library = builder.netlist.library
    for _ in range(num_gates):
        cell = rng.choice(RANDOM_NETLIST_CELLS)
        inputs = [rng.choice(nets) for _ in range(library.get(cell).num_inputs)]
        nets.append(builder.gate(cell, inputs))
    builder.output("out")
    builder.gate("BUF", [nets[-1]], output_net="out")
    return builder.build()


def build_random_stimulus(
    netlist: Netlist,
    duration: int,
    seed: int = 0,
    min_gap: int = 30,
    max_gap: int = 400,
) -> Dict[str, Waveform]:
    """Random toggles for every source net of ``netlist``."""
    rng = random.Random(seed)
    stimulus: Dict[str, Waveform] = {}
    for net in netlist.source_nets():
        time = 0
        toggles = []
        while True:
            time += rng.randint(min_gap, max_gap)
            if time >= duration:
                break
            toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(rng.randint(0, 1), toggles)
    return stimulus


def build_boundary_stimulus(
    netlist: Netlist,
    duration: int,
    window_length: int,
    seed: int = 0,
) -> Dict[str, Waveform]:
    """Toggles clustered exactly at cycle-parallel window boundaries.

    The restructure step slices waveforms at multiples of the window
    length; transitions landing exactly *on*, one unit *before*, and one
    unit *after* each boundary exercise the strict/inclusive edges of the
    slicing and of the settle-margin trim.  Each net gets a random subset
    of ``{boundary - 1, boundary, boundary + 1}`` at every boundary.
    """
    if window_length < 4:
        raise ValueError("window_length must be at least 4")
    rng = random.Random(seed)
    boundaries = list(range(window_length, duration, window_length))
    stimulus: Dict[str, Waveform] = {}
    for index, net in enumerate(netlist.source_nets()):
        net_rng = random.Random(rng.randrange(1 << 30) + index)
        toggles: List[int] = []
        for boundary in boundaries:
            for offset in (-1, 0, 1):
                time = boundary + offset
                if 0 < time < duration and net_rng.random() < 0.5:
                    toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(net_rng.randint(0, 1), toggles)
    return stimulus


#: Maximal-length LFSR tap positions (1-based, Fibonacci form) by width.
_LFSR_TAPS = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    12: (12, 11, 10, 4),
    16: (16, 15, 13, 4),
}


def build_counter(bits: int = 4, *, init: int = 0, name: str = "") -> Netlist:
    """A ``bits``-wide binary up-counter on ``DFFR`` flops.

    Inputs ``clk``/``rst_n`` (async active-low reset clearing to 0),
    outputs ``count[i]``; the increment is a ripple XOR/AND chain.  The
    canonical sequential smoke design: after ``n`` held-reset-free cycles
    the state reads ``(init + n) mod 2**bits``.
    """
    builder = NetlistBuilder(name or f"counter{bits}")
    clk = builder.input("clk")
    rst_n = builder.input("rst_n")
    count = builder.outputs("count", bits)
    carry = ""
    for i in range(bits):
        q = count[i]
        if i == 0:
            data = builder.gate("INV", [q])
            carry = q
        else:
            data = builder.gate("XOR2", [q, carry])
            if i < bits - 1:
                carry = builder.gate("AND2", [q, carry])
        builder.flop(
            data,
            clk,
            output_net=q,
            cell_name="DFFR",
            name=f"count_reg[{i}]",
            reset_net=rst_n,
            init=(init >> i) & 1,
        )
    return builder.build()


def build_shift_register(
    bits: int = 8, *, enable: bool = False, name: str = ""
) -> Netlist:
    """A ``din -> q[0] -> ... -> q[bits-1]`` shift register.

    Plain ``DFF`` stages by default; ``enable=True`` switches every stage
    to ``DFFE`` gated by a shared ``en`` input (EN low freezes the whole
    chain), which is the test designs' enable-semantics workhorse.
    """
    builder = NetlistBuilder(name or f"shift{bits}")
    clk = builder.input("clk")
    din = builder.input("din")
    en = builder.input("en") if enable else None
    stages = builder.outputs("q", bits)
    previous = din
    for i, q in enumerate(stages):
        builder.flop(
            previous,
            clk,
            output_net=q,
            cell_name="DFFE" if enable else "DFF",
            name=f"sr_reg[{i}]",
            enable_net=en,
        )
        previous = q
    return builder.build()


def build_lfsr(bits: int = 8, *, init: int = 0, name: str = "") -> Netlist:
    """A ``bits``-wide XNOR-feedback Fibonacci LFSR clocked by ``clk``.

    XNOR feedback makes the all-zero state sequence (all-ones is the
    lockup state instead), so the default ``init=0`` produces a
    maximal-length pseudo-random run without any reset plumbing — ideal
    stimulus-free sequential workloads for differential tests and the
    sequential throughput benchmark.
    """
    builder = NetlistBuilder(name or f"lfsr{bits}")
    clk = builder.input("clk")
    stages = builder.outputs("q", bits)
    taps = _LFSR_TAPS.get(bits, (bits, bits - 1))
    tap_nets = [stages[t - 1] for t in taps]
    if len(tap_nets) == 1:
        feedback = builder.gate("INV", [tap_nets[0]])
    else:
        acc = tap_nets[0]
        for net in tap_nets[1:-1]:
            acc = builder.gate("XOR2", [acc, net])
        feedback = builder.gate("XNOR2", [acc, tap_nets[-1]])
    previous = feedback
    for i, q in enumerate(stages):
        builder.flop(
            previous,
            clk,
            output_net=q,
            cell_name="DFF",
            name=f"q_reg[{i}]",
            init=(init >> i) & 1,
        )
        previous = q
    return builder.build()


def build_sparse_stimulus(
    netlist: Netlist,
    duration: int,
    seed: int = 0,
    burst_count: int = 2,
    burst_span: int = 200,
) -> Dict[str, Waveform]:
    """A stimulus that leaves most cycle-parallel windows empty.

    Activity is confined to ``burst_count`` short bursts at random
    positions; every window outside a burst carries no events at all, and
    a third of the nets are completely constant — the empty-window and
    constant-net edge cases of the restructure/load/readback pipeline.
    """
    rng = random.Random(seed)
    bursts = [rng.randrange(0, max(1, duration - burst_span)) for _ in range(burst_count)]
    stimulus: Dict[str, Waveform] = {}
    for index, net in enumerate(netlist.source_nets()):
        net_rng = random.Random(rng.randrange(1 << 30) + index)
        if index % 3 == 0:
            stimulus[net] = Waveform.constant(net_rng.randint(0, 1))
            continue
        toggles: List[int] = []
        for burst in bursts:
            time = burst
            while time < min(burst + burst_span, duration):
                time += net_rng.randint(10, 60)
                if 0 < time < duration:
                    toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(
            net_rng.randint(0, 1), sorted(set(toggles))
        )
    return stimulus
