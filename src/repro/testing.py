"""Deterministic random-design and random-stimulus builders.

Shared by the test suite, the benchmarks, and ad-hoc experiments.  These
used to live in ``tests/conftest.py``, where importing them as
``from conftest import ...`` was ambiguous whenever another ``conftest.py``
(e.g. ``benchmarks/``) was collected first; as a real module they are
importable from anywhere without path tricks.
"""

from __future__ import annotations

import random
from typing import Dict

from .core.waveform import Waveform
from .netlist import Netlist, NetlistBuilder

#: Cell mix used by :func:`build_random_netlist`.
RANDOM_NETLIST_CELLS = (
    "INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2",
    "AOI21", "OAI21", "MUX2", "AOI22", "MAJ3", "NAND3", "OR3",
)


def build_random_netlist(
    num_inputs: int = 6, num_gates: int = 40, seed: int = 0
) -> Netlist:
    """A random combinational netlist used by equivalence tests."""
    rng = random.Random(seed)
    builder = NetlistBuilder(f"rand_{seed}")
    nets = [builder.input(f"i{k}") for k in range(num_inputs)]
    library = builder.netlist.library
    for _ in range(num_gates):
        cell = rng.choice(RANDOM_NETLIST_CELLS)
        inputs = [rng.choice(nets) for _ in range(library.get(cell).num_inputs)]
        nets.append(builder.gate(cell, inputs))
    builder.output("out")
    builder.gate("BUF", [nets[-1]], output_net="out")
    return builder.build()


def build_random_stimulus(
    netlist: Netlist,
    duration: int,
    seed: int = 0,
    min_gap: int = 30,
    max_gap: int = 400,
) -> Dict[str, Waveform]:
    """Random toggles for every source net of ``netlist``."""
    rng = random.Random(seed)
    stimulus: Dict[str, Waveform] = {}
    for net in netlist.source_nets():
        time = 0
        toggles = []
        while True:
            time += rng.randint(min_gap, max_gap)
            if time >= duration:
                break
            toggles.append(time)
        stimulus[net] = Waveform.from_initial_and_toggles(rng.randint(0, 1), toggles)
    return stimulus
