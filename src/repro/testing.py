"""Deterministic random-design and random-stimulus builders.

Shared by the test suite, the benchmarks, and ad-hoc experiments.  These
used to live in ``tests/conftest.py``, where importing them as
``from conftest import ...`` was ambiguous whenever another ``conftest.py``
(e.g. ``benchmarks/``) was collected first; as a real module they are
importable from anywhere without path tricks.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .core.waveform import Waveform
from .netlist import Netlist, NetlistBuilder

#: Cell mix used by :func:`build_random_netlist`.
RANDOM_NETLIST_CELLS = (
    "INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2",
    "AOI21", "OAI21", "MUX2", "AOI22", "MAJ3", "NAND3", "OR3",
)


def build_random_netlist(
    num_inputs: int = 6, num_gates: int = 40, seed: int = 0
) -> Netlist:
    """A random combinational netlist used by equivalence tests."""
    rng = random.Random(seed)
    builder = NetlistBuilder(f"rand_{seed}")
    nets = [builder.input(f"i{k}") for k in range(num_inputs)]
    library = builder.netlist.library
    for _ in range(num_gates):
        cell = rng.choice(RANDOM_NETLIST_CELLS)
        inputs = [rng.choice(nets) for _ in range(library.get(cell).num_inputs)]
        nets.append(builder.gate(cell, inputs))
    builder.output("out")
    builder.gate("BUF", [nets[-1]], output_net="out")
    return builder.build()


def build_random_stimulus(
    netlist: Netlist,
    duration: int,
    seed: int = 0,
    min_gap: int = 30,
    max_gap: int = 400,
) -> Dict[str, Waveform]:
    """Random toggles for every source net of ``netlist``."""
    rng = random.Random(seed)
    stimulus: Dict[str, Waveform] = {}
    for net in netlist.source_nets():
        time = 0
        toggles = []
        while True:
            time += rng.randint(min_gap, max_gap)
            if time >= duration:
                break
            toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(rng.randint(0, 1), toggles)
    return stimulus


def build_boundary_stimulus(
    netlist: Netlist,
    duration: int,
    window_length: int,
    seed: int = 0,
) -> Dict[str, Waveform]:
    """Toggles clustered exactly at cycle-parallel window boundaries.

    The restructure step slices waveforms at multiples of the window
    length; transitions landing exactly *on*, one unit *before*, and one
    unit *after* each boundary exercise the strict/inclusive edges of the
    slicing and of the settle-margin trim.  Each net gets a random subset
    of ``{boundary - 1, boundary, boundary + 1}`` at every boundary.
    """
    if window_length < 4:
        raise ValueError("window_length must be at least 4")
    rng = random.Random(seed)
    boundaries = list(range(window_length, duration, window_length))
    stimulus: Dict[str, Waveform] = {}
    for index, net in enumerate(netlist.source_nets()):
        net_rng = random.Random(rng.randrange(1 << 30) + index)
        toggles: List[int] = []
        for boundary in boundaries:
            for offset in (-1, 0, 1):
                time = boundary + offset
                if 0 < time < duration and net_rng.random() < 0.5:
                    toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(net_rng.randint(0, 1), toggles)
    return stimulus


def build_sparse_stimulus(
    netlist: Netlist,
    duration: int,
    seed: int = 0,
    burst_count: int = 2,
    burst_span: int = 200,
) -> Dict[str, Waveform]:
    """A stimulus that leaves most cycle-parallel windows empty.

    Activity is confined to ``burst_count`` short bursts at random
    positions; every window outside a burst carries no events at all, and
    a third of the nets are completely constant — the empty-window and
    constant-net edge cases of the restructure/load/readback pipeline.
    """
    rng = random.Random(seed)
    bursts = [rng.randrange(0, max(1, duration - burst_span)) for _ in range(burst_count)]
    stimulus: Dict[str, Waveform] = {}
    for index, net in enumerate(netlist.source_nets()):
        net_rng = random.Random(rng.randrange(1 << 30) + index)
        if index % 3 == 0:
            stimulus[net] = Waveform.constant(net_rng.randint(0, 1))
            continue
        toggles: List[int] = []
        for burst in bursts:
            time = burst
            while time < min(burst + burst_span, duration):
                time += net_rng.randint(10, 60)
                if 0 < time < duration:
                    toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(
            net_rng.randint(0, 1), sorted(set(toggles))
        )
    return stimulus
