"""Length-prefixed wire protocol for the serving front end.

The serving stack is in-process Python objects end to end
(:class:`~repro.serve.service.SimulationService` futures); this module
gives it a socket form so simulation clients can live in other processes
or on other machines.  The protocol is deliberately minimal:

* **Framing.**  Every message is one frame: an 8-byte header
  (``b"RS"`` magic, protocol version, frame kind, big-endian payload
  length) followed by a pickled payload.  Length-prefixing makes the
  stream self-delimiting — a reader always knows exactly how many bytes
  the next message occupies — and the declared length is validated
  against a frame-size ceiling *before* the payload is read, so an
  oversized or corrupt header cannot make the server buffer unbounded
  data.
* **Kinds.**  ``REQUEST`` carries ``{"op": ..., ...}`` dictionaries
  (``"run"`` with a :class:`~repro.serve.service.ServeRequest`;
  ``"stats"``), ``RESPONSE`` the matching result payload, ``ERROR`` a
  structured error: the exception class name, its message, and — for
  :class:`~repro.serve.service.DesignRejectedError` — the analysis
  report.  Clients map structured errors back onto the same exception
  classes in-process callers see, so switching between ``WireClient``
  and ``SimulationService`` is transparent to error handling.
* **Versioning.**  The header carries a protocol version byte; a reader
  that sees a version it does not speak fails with
  :class:`ProtocolError` instead of misparsing the stream.

Payloads are pickled: netlists, waveforms, and results are the repo's
own (picklable) dataclasses, and inventing a parallel schema for them
would duplicate every model class.  The standard pickle caveat applies —
the protocol authenticates nothing and must only span *trusted*
processes/hosts (the same trust boundary ``multiprocessing`` itself
assumes).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from .service import (
    DesignRejectedError,
    QuotaExceededError,
    ServeRequest,
    ServeResponse,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    UnknownBaseDesignError,
)

MAGIC = b"RS"
PROTOCOL_VERSION = 1
#: Header: magic (2s), version (B), frame kind (B), payload length (I, BE).
HEADER = struct.Struct(">2sBBI")
#: Default ceiling on a single frame's payload (64 MiB) — generous for
#: netlist + stimulus payloads, small enough to bound a connection's
#: buffering.  Both ends enforce it, on send and on receive.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Frame kinds.
KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
_KNOWN_KINDS = (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR)


class WireError(RuntimeError):
    """Base class of wire-protocol failures."""


class ProtocolError(WireError):
    """The peer sent bytes that are not a valid protocol frame."""


class FrameTooLargeError(WireError):
    """A frame's declared payload exceeds the configured ceiling."""


class ConnectionClosedError(WireError):
    """The peer closed the connection.

    ``clean`` distinguishes an orderly close between frames (a client
    simply disconnecting) from a close in the middle of one (a truncated
    frame — data was lost).
    """

    def __init__(self, message: str, clean: bool = False):
        super().__init__(message)
        self.clean = clean


class RemoteError(ServiceError):
    """A server-side error with no dedicated client-side class."""


#: Exception classes a structured error frame can round-trip.  Anything
#: else arrives as :class:`RemoteError` carrying the original class name.
_ERROR_TYPES: Dict[str, Type[Exception]] = {
    cls.__name__: cls
    for cls in (
        ServiceError,
        ServiceClosedError,
        ServiceOverloadedError,
        QuotaExceededError,
        UnknownBaseDesignError,
        ValueError,
        TypeError,
        NotImplementedError,
        ProtocolError,
        FrameTooLargeError,
    )
}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(
    kind: int, payload: Any, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Serialize one frame (header + pickled payload) to bytes."""
    if kind not in _KNOWN_KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte ceiling"
        )
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, len(body)) + body


def _recv_exact(sock: socket.socket, count: int, *, header: bool) -> bytes:
    """Read exactly ``count`` bytes; EOF raises :class:`ConnectionClosedError`.

    EOF on the first byte of a *header* is a clean close (the peer hung
    up between frames); EOF anywhere else truncated a frame.
    """
    chunks = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            raise ConnectionClosedError(
                "connection closed "
                + ("between frames" if header and received == 0 else "mid-frame"),
                clean=header and received == 0,
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[int, Any]:
    """Read one frame from a socket, returning ``(kind, payload)``.

    The declared length is validated against ``max_frame_bytes`` before
    any payload byte is read.
    """
    header = _recv_exact(sock, HEADER.size, header=True)
    magic, version, kind, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol version {version}, "
            f"this end speaks {PROTOCOL_VERSION}"
        )
    if kind not in _KNOWN_KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"peer declared a {length}-byte frame, ceiling is "
            f"{max_frame_bytes} bytes"
        )
    body = _recv_exact(sock, length, header=False)
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    return kind, payload


def write_frame(
    sock: socket.socket,
    kind: int,
    payload: Any,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Encode and send one frame."""
    sock.sendall(encode_frame(kind, payload, max_frame_bytes))


# ----------------------------------------------------------------------
# Structured errors
# ----------------------------------------------------------------------
def encode_error(exc: BaseException) -> Dict[str, Any]:
    """Structured-error payload for an exception (class, message, extras)."""
    payload: Dict[str, Any] = {
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, DesignRejectedError):
        payload["report"] = exc.report
    return payload


def decode_error(payload: Mapping[str, Any]) -> Exception:
    """Rebuild the client-side exception a structured error describes."""
    name = str(payload.get("error", "ServiceError"))
    message = str(payload.get("message", ""))
    if name == DesignRejectedError.__name__:
        return DesignRejectedError(message, payload.get("report"))
    cls = _ERROR_TYPES.get(name)
    if cls is not None:
        return cls(message)
    return RemoteError(f"{name}: {message}")


# ----------------------------------------------------------------------
# Blocking client
# ----------------------------------------------------------------------
class WireClient:
    """Blocking client of a :class:`~repro.serve.server.SimulationServer`.

    One connection serves one request at a time (request frame out,
    response frame in); run several clients for concurrency — the server
    multiplexes connections onto the service's queue, where admission,
    coalescing, and quotas apply exactly as for in-process submits::

        with WireClient(host, port) as client:
            response = client.run(ServeRequest(netlist=..., stimulus=...,
                                               duration=10_000))
            print(response.result.total_toggles())

    Raises the same exception classes as
    :meth:`SimulationService.run <repro.serve.service.SimulationService.run>`
    (rebuilt from structured error frames).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self._max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def run(self, request: ServeRequest) -> ServeResponse:
        """Submit one request and block for its response."""
        payload = self._round_trip({"op": "run", "request": request})
        response = payload.get("response")
        if not isinstance(response, ServeResponse):
            raise ProtocolError("run response frame carries no ServeResponse")
        return response

    def stats(self) -> Dict[str, float]:
        """Fetch the service's counter/latency snapshot."""
        payload = self._round_trip({"op": "stats"})
        stats = payload.get("stats")
        if not isinstance(stats, dict):
            raise ProtocolError("stats response frame carries no stats")
        return stats

    def _round_trip(self, request_payload: Dict[str, Any]) -> Dict[str, Any]:
        write_frame(
            self._sock, KIND_REQUEST, request_payload, self._max_frame_bytes
        )
        kind, payload = read_frame(self._sock, self._max_frame_bytes)
        if kind == KIND_ERROR:
            raise decode_error(payload)
        if kind != KIND_RESPONSE or not isinstance(payload, dict):
            raise ProtocolError(f"unexpected frame kind {kind} in response")
        return payload

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are harmless
            pass

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
