"""``repro.serve``: the concurrent simulation serving front end.

A :class:`SimulationService` accepts many concurrent re-simulation
requests through a bounded queue, micro-batches requests that share a
compiled-design fingerprint onto one prepared session, and executes them
on a worker pool — any registered backend spec, including the sharded
``"gatspi-sharded:shards=4"``::

    from repro.serve import ServeRequest, SimulationService

    with SimulationService(max_workers=4) as service:
        future = service.submit(ServeRequest(
            netlist=netlist, stimulus=stimulus,
            backend="gatspi-sharded:shards=4",
            annotation=annotation, cycles=100,
        ))
        response = future.result()       # -> ServeResponse
        print(response.result.total_toggles(), response.run_seconds)
"""

from .service import (
    DesignRejectedError,
    ServeRequest,
    ServeResponse,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SimulationService,
    UnknownBaseDesignError,
    session_key,
)

__all__ = [
    "DesignRejectedError",
    "ServeRequest",
    "ServeResponse",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "SimulationService",
    "UnknownBaseDesignError",
    "session_key",
]
