"""``repro.serve``: the concurrent simulation serving front end.

A :class:`SimulationService` accepts many concurrent re-simulation
requests through a bounded queue, micro-batches requests that share a
compiled-design fingerprint onto one prepared session, coalesces
identical in-flight requests onto one engine run, and executes them
on a worker pool — any registered backend spec, including the sharded
``"gatspi-sharded:shards=4"``::

    from repro.serve import ServeRequest, SimulationService

    with SimulationService(max_workers=4) as service:
        future = service.submit(ServeRequest(
            netlist=netlist, stimulus=stimulus,
            backend="gatspi-sharded:shards=4",
            annotation=annotation, cycles=100,
        ))
        response = future.result()       # -> ServeResponse
        print(response.result.total_toggles(), response.run_seconds)

For out-of-process clients, :class:`SimulationServer` fronts a service
with a length-prefixed socket protocol (:mod:`repro.serve.wire`) and
:class:`WireClient` speaks it — ``python -m repro.serve`` stands a
server up from the command line.
"""

from .server import SimulationServer
from .service import (
    DesignRejectedError,
    QuotaExceededError,
    ServeRequest,
    ServeResponse,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SimulationService,
    UnknownBaseDesignError,
    session_key,
    stimulus_fingerprint,
)
from .wire import WireClient, WireError

__all__ = [
    "DesignRejectedError",
    "QuotaExceededError",
    "ServeRequest",
    "ServeResponse",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "SimulationServer",
    "SimulationService",
    "UnknownBaseDesignError",
    "WireClient",
    "WireError",
    "session_key",
    "stimulus_fingerprint",
]
