"""Socket front end over :class:`~repro.serve.service.SimulationService`.

:class:`SimulationServer` binds a TCP listener and serves the wire
protocol of :mod:`repro.serve.wire`: one OS thread per connection reads
request frames, submits them to the shared service (where micro-batching,
request coalescing, session caching, and per-client quotas apply across
*all* connections), and writes the matching response or structured-error
frame back.  The blocking one-request-per-connection discipline keeps the
per-connection state machine trivial; concurrency comes from many
connections, mirroring how the service's own callers use one ``submit``
per thread.

Connection identity feeds admission control: requests that do not name a
``client`` are stamped with their connection's id, so per-client quotas
bound each anonymous connection independently.

Error handling is two-tier.  *Service* errors (rejection, overload,
unknown base design, ...) are answered with an ``ERROR`` frame and the
connection stays usable — they are per-request outcomes.  *Protocol*
errors (bad magic, oversized frame, truncated stream) poison the byte
stream, so the server answers with a best-effort ``ERROR`` frame and
closes the connection.  A client that disconnects mid-request simply
loses its answer: the submitted work completes in the service and the
handler drains out without disturbing other connections.
"""

from __future__ import annotations

import dataclasses
import itertools
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from .service import ServeRequest, SimulationService
from .wire import (
    DEFAULT_MAX_FRAME_BYTES,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    ConnectionClosedError,
    ProtocolError,
    WireError,
    encode_error,
    read_frame,
    write_frame,
)


class SimulationServer:
    """TCP server speaking the serving wire protocol.

    ::

        service = SimulationService(max_workers=4)
        server = SimulationServer(service, host="127.0.0.1", port=0)
        server.start()                      # background accept loop
        host, port = server.address        # port=0 -> OS-assigned
        ...
        server.close()                      # stop accepting, drain handlers
        service.close()

    The server owns its listener and connection threads but *not* the
    service — one service can stand behind several servers (or behind a
    server and in-process callers at once), and closing the server never
    cancels in-flight simulation work.
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self._service = service
        self._max_frame_bytes = max_frame_bytes
        self._listener = socket.create_server((host, port))
        self._address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._closed = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_counter = itertools.count(1)
        self._conn_lock = threading.Lock()
        self._connections: Dict[int, socket.socket] = {}
        self._handler_threads: List[threading.Thread] = []

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` requests."""
        return self._address

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SimulationServer":
        """Start the background accept loop; returns ``self`` (chainable)."""
        if self._closed.is_set():
            raise WireError("server is closed")
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-serve-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread until ``close()``."""
        if self._closed.is_set():
            raise WireError("server is closed")
        self._accept_loop()

    def close(self) -> None:
        """Stop accepting, unblock and join every handler (idempotent).

        In-flight service work keeps running; only the socket layer is
        torn down.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._conn_lock:
            connections = list(self._connections.values())
            threads = list(self._handler_threads)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close races are harmless
                pass
        for thread in threads:
            thread.join(timeout=10.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)

    def __enter__(self) -> "SimulationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                # Listener closed (close()) or transient accept failure
                # during shutdown — either way the loop is done.
                break
            conn_index = next(self._conn_counter)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, conn_index),
                name=f"repro-serve-conn-{conn_index}",
                daemon=True,
            )
            with self._conn_lock:
                if self._closed.is_set():
                    conn.close()
                    break
                self._connections[conn_index] = conn
                self._handler_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, conn_index: int) -> None:
        client_id = f"wire:{self._address[1]}:conn-{conn_index}"
        try:
            while not self._closed.is_set():
                try:
                    kind, payload = read_frame(conn, self._max_frame_bytes)
                except ConnectionClosedError:
                    # Clean disconnects between frames are normal; a
                    # truncated frame means the client died mid-request —
                    # in both cases the stream is over and any submitted
                    # work simply completes unobserved in the service.
                    return
                except WireError as exc:
                    self._send_error(conn, exc)
                    return
                if kind != KIND_REQUEST or not isinstance(payload, dict):
                    self._send_error(
                        conn,
                        ProtocolError(f"expected a REQUEST frame, got kind {kind}"),
                    )
                    return
                if not self._handle_request(conn, client_id, payload):
                    return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close races are harmless
                pass
            with self._conn_lock:
                self._connections.pop(conn_index, None)

    def _handle_request(
        self, conn: socket.socket, client_id: str, payload: Dict[str, Any]
    ) -> bool:
        """Serve one request frame; False ends the connection."""
        op = payload.get("op")
        try:
            if op == "run":
                request = payload.get("request")
                if not isinstance(request, ServeRequest):
                    raise ProtocolError("run request frame carries no ServeRequest")
                if request.client is None:
                    # Anonymous requests are quota-bounded per connection.
                    request = dataclasses.replace(request, client=client_id)
                response = self._service.run(request)
                reply: Dict[str, Any] = {"response": response}
            elif op == "stats":
                reply = {"stats": self._service.stats()}
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - every failure becomes a frame
            poison = isinstance(exc, WireError)
            self._send_error(conn, exc)
            return not poison
        return self._send_frame(conn, KIND_RESPONSE, reply)

    def _send_frame(self, conn: socket.socket, kind: int, payload: Any) -> bool:
        try:
            write_frame(conn, kind, payload, self._max_frame_bytes)
            return True
        except WireError as exc:
            # The *reply* did not fit or encode; tell the client with a
            # (small) error frame rather than silently dropping it.
            try:
                write_frame(conn, KIND_ERROR, encode_error(exc))
            except OSError:
                pass
            return True
        except OSError:
            # Client went away while we were answering: drain quietly.
            return False

    def _send_error(self, conn: socket.socket, exc: BaseException) -> None:
        try:
            write_frame(conn, KIND_ERROR, encode_error(exc))
        except (OSError, WireError):  # pragma: no cover - peer already gone
            pass
