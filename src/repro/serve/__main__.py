"""``python -m repro.serve`` — stand up a wire-protocol simulation server.

Binds a :class:`~repro.serve.server.SimulationServer` over a freshly
constructed :class:`~repro.serve.service.SimulationService` and serves
until interrupted.  Clients connect with
:class:`~repro.serve.wire.WireClient`::

    $ python -m repro.serve --port 7634 --max-workers 4 &
    >>> from repro.serve import ServeRequest, WireClient
    >>> with WireClient("127.0.0.1", 7634) as client:
    ...     client.run(ServeRequest(netlist=..., stimulus=..., cycles=100))
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .server import SimulationServer
from .service import SimulationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve simulation requests over the wire protocol.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to bind; 0 picks a free port (default %(default)s)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=4,
        help="service worker threads (default %(default)s)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded admission queue depth (default %(default)s)",
    )
    parser.add_argument(
        "--session-cache-size", type=int, default=8,
        help="prepared sessions kept hot (default %(default)s)",
    )
    parser.add_argument(
        "--per-client-quota", type=int, default=None,
        help="max in-flight requests per client id (default: unlimited)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    service = SimulationService(
        max_workers=args.max_workers,
        queue_size=args.queue_size,
        session_cache_size=args.session_cache_size,
        per_client_quota=args.per_client_quota,
    )
    server = SimulationServer(service, host=args.host, port=args.port)
    host, port = server.address
    print(f"repro.serve listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
