"""The sharded/batched simulation serving front end.

The ROADMAP's scale item asks for "an async/batched serving front end for
many concurrent sessions": this module is that subsystem, built directly
on the concurrency guarantees the rest of the stack now provides — the
locked process-wide compile cache (concurrent ``prepare()`` is safe and
shares one compile per design fingerprint) and the thread-safe ``Session``
layer (concurrent ``run()`` on one session serializes instead of racing).

Request lifecycle::

    client -> submit() -> bounded queue -> dispatcher thread
                                              |  drains + groups by
                                              |  compiled-design fingerprint
                                              v
                                   worker pool: one task per group,
                                   each group runs on ONE prepared Session
                                              |
                                              v
                              Future resolves to ServeResponse

* **Bounded admission.**  ``submit`` enqueues into a bounded queue and
  returns a :class:`concurrent.futures.Future` immediately (``asyncio``
  callers can ``asyncio.wrap_future`` it).  The dispatcher only pulls a
  request out of the queue when an in-flight permit is free (at most
  ``2 * max_workers`` requests dispatched-but-incomplete), so saturated
  workers back the queue up instead of growing an unbounded executor
  backlog.  When the queue is full the next ``submit`` blocks — or, with
  ``block=False`` / a timeout, fails fast with
  :class:`ServiceOverloadedError` — so a burst of clients degrades into
  back-pressure, not unbounded memory growth.
* **Micro-batching.**  The dispatcher drains whatever is queued and
  groups it by *session key*: the content fingerprints of the request's
  netlist and annotation (the same fingerprints the compile cache is
  keyed by) plus the backend spec and config.  Each group is executed as
  one worker task against one prepared session, so a burst of requests
  for the same design costs one ``prepare()`` and runs back to back on a
  warm session, while requests for different designs spread across the
  pool.  When the session supports batched runs
  (:meth:`~repro.api.sharded.ShardedGatspiSession.run_many` — the
  ``gatspi-sharded`` backend), the whole group executes as **one fused
  engine run** and is sliced apart bit-exactly, paying the engine's
  per-run fixed costs once per batch instead of once per request; a
  fused failure falls back to per-request runs so isolation is kept.
* **Session reuse.**  Prepared sessions live in a bounded LRU keyed by
  session key.  Batches for one key are serialized (per-key active
  bookkeeping), so a new design is prepared exactly once — outside the
  cache lock, so one slow compile never stalls other designs; evicted
  sessions fall back to the compile cache, which still makes the next
  ``prepare()`` cheap.
* **Failure isolation.**  A failing request (bad stimulus, unknown
  backend, engine error) resolves only its own future with the exception;
  the queue, the dispatcher, and the other requests keep flowing.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..analysis import analyze_design
from ..api import resolve_backend
from ..core.compile_cache import fingerprint_annotation, fingerprint_netlist
from ..core.config import SimConfig
from ..core.edits import Edit
from ..core.results import SimulationResult
from ..core.waveform import Waveform
from ..netlist import Netlist
from ..sdf.annotate import DelayAnnotation


class ServiceError(RuntimeError):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServiceError):
    """Raised when submitting to a closed service."""


class ServiceOverloadedError(ServiceError):
    """Raised when the bounded request queue cannot admit a request."""


class UnknownBaseDesignError(ServiceError):
    """Raised when a delta request's ``base_key`` names no live session.

    Delta requests can only run against a prepared session still in the
    service's session cache; after eviction (or against a key that never
    existed) the client must re-submit the full design once to re-establish
    the base.
    """


class DesignRejectedError(ServiceError):
    """Raised when design-rule analysis finds error-severity problems.

    Carries the structured :class:`~repro.analysis.AnalysisReport` on
    ``report`` so the client can see exactly which rules fired and on which
    nets/instances — the serving front door rejects un-simulatable designs
    eagerly at ``submit`` time instead of failing the future later inside a
    worker's ``prepare()``.
    """

    def __init__(self, message: str, report: Any):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class ServeRequest:
    """One re-simulation request — full or delta.

    **Full request** (the default): provide ``netlist`` and ``stimulus``;
    ``backend`` is a registry spec (``"gatspi"``,
    ``"gatspi-sharded:shards=4"``, ``"event"``, ...); one of ``cycles`` /
    ``duration`` must be given, exactly as for :meth:`Session.run`.

    **Delta request**: provide ``base_key`` (the ``session_key`` echoed on
    a previous response) plus ``edits`` instead of a netlist.  The service
    applies the edits to the cached base session, re-simulates only their
    cone of influence (:meth:`Session.rerun`), and undoes them before the
    next request — the shared session always stays at the base design, so
    clients can probe independent what-if ECOs against one compile.
    ``stimulus``/``cycles``/``duration`` default to the base session's
    previous run when omitted.

    ``tag`` is opaque client bookkeeping echoed back on the response.
    """

    netlist: Optional[Netlist] = None
    stimulus: Mapping[str, Waveform] = field(default_factory=dict)
    backend: str = "gatspi"
    annotation: Optional[DelayAnnotation] = None
    config: Optional[SimConfig] = None
    cycles: Optional[int] = None
    duration: Optional[int] = None
    tag: Optional[str] = None
    #: Session key of the prepared base design a delta request targets.
    base_key: Optional[str] = None
    #: Edit batch of a delta request (applied, re-simulated, undone).
    edits: Tuple[Edit, ...] = ()


@dataclass(frozen=True)
class ServeResponse:
    """A completed request: the simulation result plus serving telemetry."""

    result: SimulationResult
    backend: str
    session_key: str
    #: Seconds spent queued before a worker picked the request up.
    queue_seconds: float
    #: Seconds the session run itself took on the worker.
    run_seconds: float
    #: Requests in the micro-batch this one was dispatched with.
    batch_size: int
    #: Whether the prepared session came from the service's session cache.
    session_reused: bool
    #: Whether the request executed inside a fused (batched) engine run.
    fused: bool = False
    tag: Optional[str] = None


@dataclass
class _QueueItem:
    request: ServeRequest
    future: "Future[ServeResponse]"
    key: str
    enqueued_at: float
    batch_size: int = 1


_SHUTDOWN = object()


def session_key(request: ServeRequest) -> str:
    """Content-based identity of the prepared session a request needs.

    Built from the same netlist/annotation fingerprints the compile cache
    uses, so two structurally identical designs submitted as different
    objects batch onto one session; the backend spec and config are part
    of the key because they select the engine and its executors.  A delta
    request targets its base design's session directly: its key IS the
    ``base_key`` it carries.
    """
    if request.base_key is not None:
        return request.base_key
    if request.netlist is None:
        raise ValueError("request provides neither netlist nor base_key")
    netlist_fp = fingerprint_netlist(request.netlist)
    annotation_fp = (
        fingerprint_annotation(request.annotation, request.netlist)
        if request.annotation is not None
        else "default"
    )
    # ``config=None`` means the backend's default config, so it must key
    # identically to an explicitly passed ``SimConfig()`` — otherwise
    # semantically identical requests would never batch together.
    config_fp = repr(request.config if request.config is not None else SimConfig())
    return "|".join((request.backend, netlist_fp, annotation_fp, config_fp))


class SimulationService:
    """Concurrent simulation serving over the backend registry.

    Parameters
    ----------
    max_workers:
        Worker threads executing micro-batches (distinct designs run in
        parallel up to this bound).
    queue_size:
        Admission bound: at most this many requests may be queued and not
        yet dispatched; further ``submit`` calls block or fail fast.
    session_cache_size:
        Prepared sessions kept warm (LRU).  Eviction only drops the
        session object — compiled artifacts stay in the compile cache.
    """

    def __init__(
        self,
        max_workers: int = 4,
        queue_size: int = 64,
        session_cache_size: int = 8,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        if session_cache_size < 1:
            raise ValueError("session_cache_size must be at least 1")
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        # Caps requests that are dispatched but not yet finished, so the
        # bounded queue — not the executor's unbounded internal queue — is
        # where overload accumulates.  One permit per in-flight request,
        # released on completion/failure/cancellation.
        self._inflight = threading.Semaphore(2 * max_workers)
        # Per-key accumulation: while a batch for a session key executes,
        # later arrivals for that key collect in ``_pending_groups`` and
        # dispatch as ONE batch when the key frees up — this is what lets
        # steady concurrent traffic fuse instead of convoying one by one
        # on the session lock.
        self._group_lock = threading.Lock()
        self._pending_groups: Dict[str, List[_QueueItem]] = {}
        self._active_keys: set = set()
        # key -> prepared Session.  At most one batch per key executes at
        # a time (_run_group's active-key bookkeeping), so a key is never
        # prepared twice concurrently.
        self._sessions: "OrderedDict[str, Any]" = OrderedDict()
        self._session_cache_size = session_cache_size
        self._session_lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "batches": 0,
            "max_batch_size": 0,
            "fused_fallbacks": 0,
            "session_hits": 0,
            "session_misses": 0,
            "max_queue_depth": 0,
        }
        self._closed = False
        self._closed_lock = threading.Lock()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ServeRequest,
        *,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> "Future[ServeResponse]":
        """Enqueue a request; returns a future resolving to a response.

        Blocks while the bounded queue is full (back-pressure) unless
        ``block=False`` or ``timeout`` is given, in which case a full
        queue raises :class:`ServiceOverloadedError`.  The returned
        future may be ``cancel()``-ed while the request is still queued.

        Admission runs design-rule analysis eagerly (unless the request's
        config says ``analysis="off"``): a design with error-severity
        findings is rejected here with :class:`DesignRejectedError` —
        before it consumes a queue slot or a worker — rather than failing
        later inside ``prepare()``.  Reports are fingerprint-cached, so
        repeat submissions of a known design pay a dictionary lookup.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        if (request.netlist is None) == (request.base_key is None):
            raise ValueError(
                "exactly one of netlist (full request) or base_key "
                "(delta request) must be provided"
            )
        if request.base_key is None:
            # Delta requests may omit the horizon (and stimulus): they
            # default to the base session's previous run.
            if request.cycles is None and request.duration is None:
                raise ValueError("one of cycles/duration must be provided")
        self._check_admission(request)
        item = _QueueItem(
            request=request,
            future=Future(),
            key=session_key(request),
            enqueued_at=time.perf_counter(),
        )
        try:
            self._queue.put(item, block=block, timeout=timeout)
        except queue.Full:
            self._bump("rejected")
            raise ServiceOverloadedError(
                f"request queue is full ({self._queue.maxsize} pending)"
            ) from None
        if self._closed and item.future.cancel():
            # close() raced past between the closed-check and the put; the
            # dispatcher may already be gone, so reclaim the item (a failed
            # cancel means some consumer owns it and will resolve it).
            self._bump("rejected")
            raise ServiceClosedError("service is closed")
        self._bump("submitted")
        with self._stats_lock:
            self._stats["max_queue_depth"] = max(
                self._stats["max_queue_depth"], self._queue.qsize()
            )
        return item.future

    def _check_admission(self, request: ServeRequest) -> None:
        """Reject un-simulatable designs at the front door.

        Uses the fingerprint-keyed analysis cache, so the per-submit cost
        for an already-seen design is one cache lookup (``submit`` computes
        the same fingerprints for the session key anyway).
        """
        if request.netlist is None:
            # Delta request: there is no netlist to analyze here; the
            # session's incremental analysis gate (``Session.rerun``) checks
            # the edited design and rolls the edits back on rejection.
            return
        config = request.config if request.config is not None else SimConfig()
        if config.analysis == "off":
            return
        report = analyze_design(request.netlist, annotation=request.annotation)
        if report.has_errors:
            self._bump("rejected")
            rule_ids = sorted({f.rule_id for f in report.errors})
            raise DesignRejectedError(
                f"design {request.netlist.name!r} rejected by analysis: "
                f"{len(report.errors)} error finding(s) "
                f"({', '.join(rule_ids)})",
                report,
            )

    def run(self, request: ServeRequest, timeout: Optional[float] = None) -> ServeResponse:
        """Synchronous convenience: ``submit`` and wait for the response."""
        return self.submit(request).result(timeout=timeout)

    def stats(self) -> Dict[str, int]:
        """Snapshot of the service counters (plus current queue depth)."""
        with self._stats_lock:
            snapshot = dict(self._stats)
        snapshot["queue_depth"] = self._queue.qsize()
        with self._session_lock:
            snapshot["cached_sessions"] = len(self._sessions)
        return snapshot

    def close(self) -> None:
        """Drain the queue, finish in-flight work, and stop the service.

        Already-queued requests are still executed; new ``submit`` calls
        fail with :class:`ServiceClosedError`.  Idempotent.
        """
        with self._closed_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join()
        # A submit that raced past the closed-check may have enqueued
        # behind the shutdown sentinel; the dispatcher is gone, so fail
        # those futures here instead of leaving them to hang forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(
                    ServiceClosedError("service is closed")
                )
            self._bump("rejected")
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Pull queued requests, micro-batch by session key, dispatch.

        Each pulled request holds one in-flight permit (acquired before
        the queue ``get``, released when the request finishes), so with
        saturated workers the loop stalls here and overload surfaces as
        a full queue at ``submit`` time.
        """
        shutting_down = False
        while not shutting_down:
            self._inflight.acquire()
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._inflight.release()
                break
            batch: List[_QueueItem] = [item]
            # Opportunistically widen the micro-batch with whatever is
            # both queued and admissible right now.
            while self._inflight.acquire(blocking=False):
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    self._inflight.release()
                    break
                if extra is _SHUTDOWN:
                    self._inflight.release()
                    shutting_down = True
                    break
                batch.append(extra)
            ready: "OrderedDict[str, List[_QueueItem]]" = OrderedDict()
            with self._group_lock:
                for queued in batch:
                    self._pending_groups.setdefault(queued.key, []).append(
                        queued
                    )
                for key in list(self._pending_groups):
                    if key not in self._active_keys:
                        self._active_keys.add(key)
                        ready[key] = self._pending_groups.pop(key)
            for key, items in ready.items():
                self._executor.submit(self._run_group, key, items)

    def _run_group(self, key: str, items: List[_QueueItem]) -> None:
        """Execute one batch for ``key``, then chain any accumulated work.

        The key stays marked active until its pending list is empty, so
        requests arriving during execution coalesce into the *next* batch
        instead of queueing individually behind the session lock.
        """
        for queued in items:
            queued.batch_size = len(items)
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["max_batch_size"] = max(
                self._stats["max_batch_size"], len(items)
            )
        try:
            self._execute_batch(key, items)
        finally:
            with self._group_lock:
                more = self._pending_groups.pop(key, None)
                if more is None:
                    self._active_keys.discard(key)
            if more is not None:
                try:
                    self._executor.submit(self._run_group, key, more)
                except RuntimeError:
                    # Executor already shutting down (close() drains):
                    # run the chained batch inline on this worker.
                    self._run_group(key, more)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _session_for(self, key: str, request: ServeRequest) -> Tuple[Any, bool]:
        """The one prepared session for ``key`` (preparing it on a miss).

        Batches for one key are serialized by ``_run_group``'s active-key
        bookkeeping, so at most one thread ever prepares a given key; the
        ``prepare()`` itself runs outside the session lock, so a slow
        compile of one design never stalls lookups for the others.  A
        failed prepare caches nothing — the next request for the key
        retries.  Returns ``(session, reused)``.
        """
        with self._session_lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self._bump("session_hits")
                return session, True
            self._bump("session_misses")
        if request.netlist is None:
            raise UnknownBaseDesignError(
                f"base_key {key!r} names no live prepared session "
                "(evicted or never prepared); re-submit the full design"
            )
        backend, options = resolve_backend(request.backend)
        session = backend.prepare(
            request.netlist,
            annotation=request.annotation,
            config=request.config,
            **options,
        )
        with self._session_lock:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            while len(self._sessions) > self._session_cache_size:
                self._sessions.popitem(last=False)
        return session, False

    def _execute_batch(self, key: str, items: List[_QueueItem]) -> None:
        """Run one micro-batch on its shared prepared session.

        Every item releases its in-flight permit exactly once, whatever
        its outcome (completed, failed, cancelled, prepare error).
        """
        # Prepare (or fetch) the session from a full request when the batch
        # has one; an all-delta batch can only hit the cache.
        probe = next(
            (q.request for q in items if q.request.netlist is not None),
            items[0].request,
        )
        try:
            session, reused = self._session_for(key, probe)
        except BaseException as exc:
            for queued in items:
                if queued.future.set_running_or_notify_cancel():
                    queued.future.set_exception(exc)
                self._bump("failed")
                self._inflight.release()
            return
        live: List[_QueueItem] = []
        for queued in items:
            if queued.future.set_running_or_notify_cancel():
                live.append(queued)
            else:  # cancelled while queued
                self._inflight.release()
        if not live:
            return
        # Delta requests are never fused: each one mutates the session
        # (apply -> rerun -> undo), which the time-axis fusion layout
        # cannot express.  Full requests of the batch still fuse.
        full_items = [q for q in live if q.request.netlist is not None]
        run_many = getattr(session, "run_many", None)
        if run_many is not None and len(full_items) > 1:
            if self._execute_fused(key, run_many, full_items, reused):
                live = [q for q in live if q.request.netlist is None]
                reused = True
        for queued in live:
            try:
                picked_up = time.perf_counter()
                request = queued.request
                try:
                    if request.netlist is None:
                        result = self._run_delta(session, request)
                    else:
                        result = session.run(
                            request.stimulus,
                            cycles=request.cycles,
                            duration=request.duration,
                        )
                except BaseException as exc:
                    queued.future.set_exception(exc)
                    self._bump("failed")
                    continue
                done = time.perf_counter()
                queued.future.set_result(
                    ServeResponse(
                        result=result,
                        backend=request.backend,
                        session_key=key,
                        queue_seconds=picked_up - queued.enqueued_at,
                        run_seconds=done - picked_up,
                        batch_size=queued.batch_size,
                        session_reused=reused,
                        tag=request.tag,
                    )
                )
                self._bump("completed")
                # Later requests of the batch ran on a session the batch
                # itself warmed up.
                reused = True
            finally:
                self._inflight.release()

    def _run_delta(self, session: Any, request: ServeRequest) -> SimulationResult:
        """Evaluate one what-if edit batch against the base session.

        At most one batch per key executes at a time (the dispatcher's
        active-key bookkeeping), so apply -> rerun -> undo is race-free.
        The undo restores the shared session to the base design before
        the next request touches it; the journal-chained compile cache
        makes repeat evaluations of a seen batch (and every undo) cache
        hits instead of rebuilds.
        """
        result = session.rerun(
            list(request.edits),
            stimulus=request.stimulus or None,
            cycles=request.cycles,
            duration=request.duration,
        )
        receipt = getattr(session, "last_edit_receipt", None)
        if receipt is not None and receipt.edits:
            session.apply_edits(receipt.undo_edits)
        return result

    def _execute_fused(
        self,
        key: str,
        run_many: Callable[..., List[SimulationResult]],
        live: List[_QueueItem],
        reused: bool,
    ) -> bool:
        """Execute a micro-batch as one fused session run.

        Returns ``False`` — with no future resolved and no permit
        released — when the batched run raises, so the caller can fall
        back to per-request execution and keep failures isolated to the
        request that caused them.
        """
        from ..api.sharded import RunSpec

        picked_up = time.perf_counter()
        try:
            results = run_many(
                [
                    RunSpec(
                        stimulus=queued.request.stimulus,
                        cycles=queued.request.cycles,
                        duration=queued.request.duration,
                    )
                    for queued in live
                ]
            )
        except Exception:
            # Isolation: re-run the batch serially so only the request
            # that actually fails resolves with its exception.  Counted so
            # a systematically failing fused path is observable in stats
            # instead of degrading silently.
            self._bump("fused_fallbacks")
            return False
        wall = time.perf_counter() - picked_up
        for queued, result in zip(live, results):
            queued.future.set_result(
                ServeResponse(
                    result=result,
                    backend=queued.request.backend,
                    session_key=key,
                    queue_seconds=picked_up - queued.enqueued_at,
                    # The batch executed jointly; attribute the wall time
                    # evenly, matching the fused stats attribution.
                    run_seconds=wall / len(live),
                    batch_size=queued.batch_size,
                    session_reused=reused,
                    fused=result.stats.fused_requests > 1,
                    tag=queued.request.tag,
                )
            )
            self._bump("completed")
            self._inflight.release()
        return True

    def _bump(self, counter: str) -> None:
        with self._stats_lock:
            self._stats[counter] += 1
