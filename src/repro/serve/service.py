"""The sharded/batched simulation serving front end.

The ROADMAP's scale item asks for "an async/batched serving front end for
many concurrent sessions": this module is that subsystem, built directly
on the concurrency guarantees the rest of the stack now provides — the
locked process-wide compile cache (concurrent ``prepare()`` is safe and
shares one compile per design fingerprint) and the thread-safe ``Session``
layer (concurrent ``run()`` on one session serializes instead of racing).

Request lifecycle::

    client -> submit() -> bounded queue -> dispatcher thread
                                              |  drains + groups by
                                              |  compiled-design fingerprint
                                              v
                                   worker pool: one task per group,
                                   each group runs on ONE prepared Session
                                              |
                                              v
                              Future resolves to ServeResponse

* **Bounded admission.**  ``submit`` enqueues into a bounded queue and
  returns a :class:`concurrent.futures.Future` immediately (``asyncio``
  callers can ``asyncio.wrap_future`` it).  The dispatcher only pulls a
  request out of the queue when an in-flight permit is free (at most
  ``2 * max_workers`` requests dispatched-but-incomplete), so saturated
  workers back the queue up instead of growing an unbounded executor
  backlog.  When the queue is full the next ``submit`` blocks — or, with
  ``block=False`` / a timeout, fails fast with
  :class:`ServiceOverloadedError` — so a burst of clients degrades into
  back-pressure, not unbounded memory growth.
* **Micro-batching.**  The dispatcher drains whatever is queued and
  groups it by *session key*: the content fingerprints of the request's
  netlist and annotation (the same fingerprints the compile cache is
  keyed by) plus the backend spec and config.  Each group is executed as
  one worker task against one prepared session, so a burst of requests
  for the same design costs one ``prepare()`` and runs back to back on a
  warm session, while requests for different designs spread across the
  pool.  When the session supports batched runs
  (:meth:`~repro.api.sharded.ShardedGatspiSession.run_many` — the
  ``gatspi-sharded`` backend), the whole group executes as **one fused
  engine run** and is sliced apart bit-exactly, paying the engine's
  per-run fixed costs once per batch instead of once per request; a
  fused failure falls back to per-request runs so isolation is kept.
* **Session reuse.**  Prepared sessions live in a bounded LRU keyed by
  session key.  Batches for one key are serialized (per-key active
  bookkeeping), so a new design is prepared exactly once — outside the
  cache lock, so one slow compile never stalls other designs; evicted
  sessions fall back to the compile cache, which still makes the next
  ``prepare()`` cheap.
* **Failure isolation.**  A failing request (bad stimulus, unknown
  backend, engine error) resolves only its own future with the exception;
  the queue, the dispatcher, and the other requests keep flowing.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..analysis import analyze_design
from ..api import resolve_backend
from ..core.compile_cache import fingerprint_annotation, fingerprint_netlist
from ..core.config import SimConfig
from ..core.edits import Edit
from ..core.results import SimulationResult
from ..core.waveform import Waveform
from ..netlist import Netlist
from ..sdf.annotate import DelayAnnotation


class ServiceError(RuntimeError):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServiceError):
    """Raised when submitting to a closed service."""


class ServiceOverloadedError(ServiceError):
    """Raised when the bounded request queue cannot admit a request."""


class QuotaExceededError(ServiceOverloadedError):
    """Raised when one client exceeds its per-client in-flight quota.

    Subclasses :class:`ServiceOverloadedError` because it is the same
    back-pressure contract, scoped to one misbehaving client instead of
    the whole queue: other clients keep being admitted.
    """


class UnknownBaseDesignError(ServiceError):
    """Raised when a delta request's ``base_key`` names no live session.

    Delta requests can only run against a prepared session still in the
    service's session cache; after eviction (or against a key that never
    existed) the client must re-submit the full design once to re-establish
    the base.
    """


class DesignRejectedError(ServiceError):
    """Raised when design-rule analysis finds error-severity problems.

    Carries the structured :class:`~repro.analysis.AnalysisReport` on
    ``report`` so the client can see exactly which rules fired and on which
    nets/instances — the serving front door rejects un-simulatable designs
    eagerly at ``submit`` time instead of failing the future later inside a
    worker's ``prepare()``.
    """

    def __init__(self, message: str, report: Any):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class ServeRequest:
    """One re-simulation request — full or delta.

    **Full request** (the default): provide ``netlist`` and ``stimulus``;
    ``backend`` is a registry spec (``"gatspi"``,
    ``"gatspi-sharded:shards=4"``, ``"event"``, ...); one of ``cycles`` /
    ``duration`` must be given, exactly as for :meth:`Session.run`.

    **Delta request**: provide ``base_key`` (the ``session_key`` echoed on
    a previous response) plus ``edits`` instead of a netlist.  The service
    applies the edits to the cached base session, re-simulates only their
    cone of influence (:meth:`Session.rerun`), and undoes them before the
    next request — the shared session always stays at the base design, so
    clients can probe independent what-if ECOs against one compile.
    ``stimulus``/``cycles``/``duration`` default to the base session's
    previous run when omitted.

    ``tag`` is opaque client bookkeeping echoed back on the response.
    """

    netlist: Optional[Netlist] = None
    stimulus: Mapping[str, Waveform] = field(default_factory=dict)
    backend: str = "gatspi"
    annotation: Optional[DelayAnnotation] = None
    config: Optional[SimConfig] = None
    cycles: Optional[int] = None
    duration: Optional[int] = None
    tag: Optional[str] = None
    #: Session key of the prepared base design a delta request targets.
    base_key: Optional[str] = None
    #: Edit batch of a delta request (applied, re-simulated, undone).
    edits: Tuple[Edit, ...] = ()
    #: Client identity for per-client admission quotas (the wire server
    #: stamps each connection's requests with its connection id when the
    #: client does not name itself).
    client: Optional[str] = None


@dataclass(frozen=True)
class ServeResponse:
    """A completed request: the simulation result plus serving telemetry."""

    result: SimulationResult
    backend: str
    session_key: str
    #: Seconds spent queued before a worker picked the request up.
    queue_seconds: float
    #: Seconds the session run itself took on the worker.
    run_seconds: float
    #: Requests in the micro-batch this one was dispatched with.
    batch_size: int
    #: Whether the prepared session came from the service's session cache.
    session_reused: bool
    #: Whether the request executed inside a fused (batched) engine run.
    fused: bool = False
    tag: Optional[str] = None
    #: Whether this request was coalesced onto another in-flight identical
    #: request's engine run (same design, stimulus, and config).
    coalesced: bool = False
    #: The admission analysis report (``analysis="warn"``/``"strict"``
    #: submissions; ``None`` when analysis was off or for delta requests).
    analysis_report: Optional[Any] = None


@dataclass
class _QueueItem:
    request: ServeRequest
    future: "Future[ServeResponse]"
    key: str
    enqueued_at: float
    batch_size: int = 1
    analysis_report: Optional[Any] = None


@dataclass
class _Outcome:
    """What one executed leader produced, for coalesced fan-out."""

    result: Optional[SimulationResult] = None
    error: Optional[BaseException] = None
    run_seconds: float = 0.0
    fused: bool = False


def stimulus_fingerprint(stimulus: Mapping[str, Waveform]) -> str:
    """Content hash of a stimulus set (net names + waveform arrays).

    Together with the session key (which already pins the design
    fingerprints, backend, and config) this identifies a request's entire
    input, so two in-flight requests with equal fingerprints are
    guaranteed to produce bit-identical results and can be coalesced onto
    one engine run.
    """
    digest = hashlib.sha256()
    for net in sorted(stimulus):
        wave = stimulus[net]
        digest.update(net.encode())
        digest.update(b"\x00")
        digest.update(wave.data.tobytes())
    return digest.hexdigest()


_SHUTDOWN = object()


def session_key(
    request: ServeRequest, *, netlist_fingerprint: Optional[str] = None
) -> str:
    """Content-based identity of the prepared session a request needs.

    Built from the same netlist/annotation fingerprints the compile cache
    uses, so two structurally identical designs submitted as different
    objects batch onto one session; the backend spec and config are part
    of the key because they select the engine and its executors.  A delta
    request targets its base design's session directly: its key IS the
    ``base_key`` it carries.  ``netlist_fingerprint`` lets ``submit``
    reuse the hash its admission analysis already computed.
    """
    if request.base_key is not None:
        return request.base_key
    if request.netlist is None:
        raise ValueError("request provides neither netlist nor base_key")
    netlist_fp = netlist_fingerprint or fingerprint_netlist(request.netlist)
    annotation_fp = (
        fingerprint_annotation(request.annotation, request.netlist)
        if request.annotation is not None
        else "default"
    )
    # ``config=None`` means the backend's default config, so it must key
    # identically to an explicitly passed ``SimConfig()`` — otherwise
    # semantically identical requests would never batch together.
    config_fp = repr(request.config if request.config is not None else SimConfig())
    return "|".join((request.backend, netlist_fp, annotation_fp, config_fp))


class SimulationService:
    """Concurrent simulation serving over the backend registry.

    Parameters
    ----------
    max_workers:
        Worker threads executing micro-batches (distinct designs run in
        parallel up to this bound).
    queue_size:
        Admission bound: at most this many requests may be queued and not
        yet dispatched; further ``submit`` calls block or fail fast.
    session_cache_size:
        Prepared sessions kept warm (LRU).  Eviction only drops the
        session object — compiled artifacts stay in the compile cache.
        Keys with dispatched-but-unfinished or pending work are pinned
        and never evicted, so a delta stream's base session cannot vanish
        mid-stream under eviction pressure.
    per_client_quota:
        When set, at most this many requests per ``ServeRequest.client``
        may be in flight (submitted, not yet resolved) at once; the next
        submission from that client raises :class:`QuotaExceededError`
        while other clients keep being admitted.
    """

    def __init__(
        self,
        max_workers: int = 4,
        queue_size: int = 64,
        session_cache_size: int = 8,
        per_client_quota: Optional[int] = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        if session_cache_size < 1:
            raise ValueError("session_cache_size must be at least 1")
        if per_client_quota is not None and per_client_quota < 1:
            raise ValueError("per_client_quota must be at least 1")
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        # Caps requests that are dispatched but not yet finished, so the
        # bounded queue — not the executor's unbounded internal queue — is
        # where overload accumulates.  One permit per in-flight request,
        # released on completion/failure/cancellation.
        self._inflight = threading.Semaphore(2 * max_workers)
        # Per-key accumulation: while a batch for a session key executes,
        # later arrivals for that key collect in ``_pending_groups`` and
        # dispatch as ONE batch when the key frees up — this is what lets
        # steady concurrent traffic fuse instead of convoying one by one
        # on the session lock.
        self._group_lock = threading.Lock()
        self._pending_groups: Dict[str, List[_QueueItem]] = {}
        self._active_keys: set = set()
        # key -> prepared Session.  At most one batch per key executes at
        # a time (_run_group's active-key bookkeeping), so a key is never
        # prepared twice concurrently.
        self._sessions: "OrderedDict[str, Any]" = OrderedDict()
        self._session_cache_size = session_cache_size
        self._session_lock = threading.RLock()
        # Per-client in-flight accounting for admission quotas; a leaf
        # lock (never held while any other lock is taken).
        self._quota_lock = threading.Lock()
        self._per_client_quota = per_client_quota
        self._client_inflight: Dict[str, int] = {}
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, float] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "quota_rejected": 0,
            "batches": 0,
            "max_batch_size": 0,
            "coalesced": 0,
            "fused_fallbacks": 0,
            "session_hits": 0,
            "session_misses": 0,
            "max_queue_depth": 0,
            # Per-phase latency accumulators (seconds); divide by
            # ``completed`` for the mean, the wire protocol's ``stats``
            # op surfaces them as-is.
            "queue_seconds_total": 0.0,
            "run_seconds_total": 0.0,
        }
        self._closed = False
        self._closed_lock = threading.Lock()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ServeRequest,
        *,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> "Future[ServeResponse]":
        """Enqueue a request; returns a future resolving to a response.

        Blocks while the bounded queue is full (back-pressure) unless
        ``block=False`` or ``timeout`` is given, in which case a full
        queue raises :class:`ServiceOverloadedError`.  The returned
        future may be ``cancel()``-ed while the request is still queued.

        Admission runs design-rule analysis eagerly (unless the request's
        config says ``analysis="off"``): under ``analysis="strict"`` a
        design with error-severity findings is rejected here with
        :class:`DesignRejectedError` — before it consumes a queue slot or
        a worker — while the default ``"warn"`` attaches the report to
        the response and proceeds, matching ``prepare()`` semantics.
        Reports are fingerprint-cached (the netlist is hashed once per
        submit, shared between the analysis key and the session key), so
        repeat submissions of a known design pay a dictionary lookup and
        evaluate zero rules.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        if (request.netlist is None) == (request.base_key is None):
            raise ValueError(
                "exactly one of netlist (full request) or base_key "
                "(delta request) must be provided"
            )
        if request.base_key is None:
            # Delta requests may omit the horizon (and stimulus): they
            # default to the base session's previous run.
            if request.cycles is None and request.duration is None:
                raise ValueError("one of cycles/duration must be provided")
        netlist_fp = (
            fingerprint_netlist(request.netlist)
            if request.netlist is not None
            else None
        )
        report = self._check_admission(request, netlist_fp)
        quota_client = self._reserve_quota(request)
        item = _QueueItem(
            request=request,
            future=Future(),
            key=session_key(request, netlist_fingerprint=netlist_fp),
            enqueued_at=time.perf_counter(),
            analysis_report=report,
        )
        if quota_client is not None:
            client_id = quota_client
            item.future.add_done_callback(
                lambda _future: self._release_quota(client_id)
            )
        try:
            self._queue.put(item, block=block, timeout=timeout)
        except queue.Full:
            if quota_client is not None:
                # The done callback never fires for an item that was
                # never enqueued; undo the reservation here.
                item.future.cancel()
            self._bump("rejected")
            raise ServiceOverloadedError(
                f"request queue is full ({self._queue.maxsize} pending)"
            ) from None
        if self._closed and item.future.cancel():
            # close() raced past between the closed-check and the put; the
            # dispatcher may already be gone, so reclaim the item (a failed
            # cancel means some consumer owns it and will resolve it).
            self._bump("rejected")
            raise ServiceClosedError("service is closed")
        self._bump("submitted")
        with self._stats_lock:
            self._stats["max_queue_depth"] = max(
                self._stats["max_queue_depth"], self._queue.qsize()
            )
        return item.future

    def _check_admission(
        self, request: ServeRequest, netlist_fingerprint: Optional[str]
    ) -> Optional[Any]:
        """Analyze a full request at the front door; maybe reject it.

        Routes through the fingerprint-keyed analysis report cache
        (reusing the netlist hash ``submit`` computes for the session
        key), so the per-submit cost for an already-seen design is one
        cache lookup with zero rule evaluations.  Only the effective
        ``analysis="strict"`` mode rejects on error findings; ``"warn"``
        (the default) returns the report so it can be attached to the
        response, and the design proceeds — the same contract
        ``prepare()`` honors.  Returns the report (``None`` for delta
        requests and ``analysis="off"``).
        """
        if request.netlist is None:
            # Delta request: there is no netlist to analyze here; the
            # session's incremental analysis gate (``Session.rerun``) checks
            # the edited design and rolls the edits back on rejection.
            return None
        config = request.config if request.config is not None else SimConfig()
        if config.analysis == "off":
            return None
        report = analyze_design(
            request.netlist,
            annotation=request.annotation,
            netlist_fingerprint=netlist_fingerprint,
        )
        if config.analysis == "strict" and report.has_errors:
            self._bump("rejected")
            rule_ids = sorted({f.rule_id for f in report.errors})
            raise DesignRejectedError(
                f"design {request.netlist.name!r} rejected by analysis: "
                f"{len(report.errors)} error finding(s) "
                f"({', '.join(rule_ids)})",
                report,
            )
        return report

    def _reserve_quota(self, request: ServeRequest) -> Optional[str]:
        """Claim one in-flight slot for the request's client (or raise).

        Returns the client id whose reservation must be released when the
        request's future resolves, or ``None`` when quotas are disabled.
        """
        if self._per_client_quota is None:
            return None
        client_id = request.client if request.client is not None else "<anonymous>"
        with self._quota_lock:
            inflight = self._client_inflight.get(client_id, 0)
            if inflight >= self._per_client_quota:
                over = True
            else:
                over = False
                self._client_inflight[client_id] = inflight + 1
        if over:
            self._bump("quota_rejected")
            raise QuotaExceededError(
                f"client {client_id!r} has {inflight} request(s) in flight "
                f"(quota {self._per_client_quota})"
            )
        return client_id

    def _release_quota(self, client_id: str) -> None:
        with self._quota_lock:
            remaining = self._client_inflight.get(client_id, 0) - 1
            if remaining > 0:
                self._client_inflight[client_id] = remaining
            else:
                self._client_inflight.pop(client_id, None)

    def run(self, request: ServeRequest, timeout: Optional[float] = None) -> ServeResponse:
        """Synchronous convenience: ``submit`` and wait for the response."""
        return self.submit(request).result(timeout=timeout)

    def stats(self) -> Dict[str, float]:
        """Snapshot of the service counters (plus current queue depth).

        Integer counters plus the per-phase latency accumulators
        (``queue_seconds_total`` / ``run_seconds_total``) and the
        coalesce/fusion counters; the wire protocol's ``stats`` op
        returns exactly this mapping.
        """
        with self._stats_lock:
            snapshot = dict(self._stats)
        snapshot["queue_depth"] = self._queue.qsize()
        with self._session_lock:
            snapshot["cached_sessions"] = len(self._sessions)
        return snapshot

    def close(self) -> None:
        """Drain the queue, finish in-flight work, and stop the service.

        Already-queued requests are still executed; new ``submit`` calls
        fail with :class:`ServiceClosedError`.  Idempotent.
        """
        with self._closed_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join()
        # A submit that raced past the closed-check may have enqueued
        # behind the shutdown sentinel; the dispatcher is gone, so fail
        # those futures here instead of leaving them to hang forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(
                    ServiceClosedError("service is closed")
                )
            self._bump("rejected")
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Pull queued requests, micro-batch by session key, dispatch.

        Each pulled request holds one in-flight permit (acquired before
        the queue ``get``, released when the request finishes), so with
        saturated workers the loop stalls here and overload surfaces as
        a full queue at ``submit`` time.
        """
        shutting_down = False
        while not shutting_down:
            self._inflight.acquire()
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._inflight.release()
                break
            batch: List[_QueueItem] = [item]
            # Opportunistically widen the micro-batch with whatever is
            # both queued and admissible right now.
            while self._inflight.acquire(blocking=False):
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    self._inflight.release()
                    break
                if extra is _SHUTDOWN:
                    self._inflight.release()
                    shutting_down = True
                    break
                batch.append(extra)
            ready: "OrderedDict[str, List[_QueueItem]]" = OrderedDict()
            with self._group_lock:
                for queued in batch:
                    self._pending_groups.setdefault(queued.key, []).append(
                        queued
                    )
                for key in list(self._pending_groups):
                    if key not in self._active_keys:
                        self._active_keys.add(key)
                        ready[key] = self._pending_groups.pop(key)
            for key, items in ready.items():
                self._executor.submit(self._run_group, key, items)

    def _run_group(self, key: str, items: List[_QueueItem]) -> None:
        """Execute one batch for ``key``, then chain any accumulated work.

        The key stays marked active until its pending list is empty, so
        requests arriving during execution coalesce into the *next* batch
        instead of queueing individually behind the session lock.
        """
        for queued in items:
            queued.batch_size = len(items)
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["max_batch_size"] = max(
                self._stats["max_batch_size"], len(items)
            )
        try:
            self._execute_batch(key, items)
        finally:
            with self._group_lock:
                more = self._pending_groups.pop(key, None)
                if more is None:
                    self._active_keys.discard(key)
            if more is not None:
                try:
                    self._executor.submit(self._run_group, key, more)
                except RuntimeError:
                    # Executor already shutting down (close() drains):
                    # run the chained batch inline on this worker.
                    self._run_group(key, more)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _session_for(self, key: str, request: ServeRequest) -> Tuple[Any, bool]:
        """The one prepared session for ``key`` (preparing it on a miss).

        Batches for one key are serialized by ``_run_group``'s active-key
        bookkeeping, so at most one thread ever prepares a given key; the
        ``prepare()`` itself runs outside the session lock, so a slow
        compile of one design never stalls lookups for the others.  A
        failed prepare caches nothing — the next request for the key
        retries.  Returns ``(session, reused)``.
        """
        with self._session_lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self._bump("session_hits")
                return session, True
            self._bump("session_misses")
        if request.netlist is None:
            raise UnknownBaseDesignError(
                f"base_key {key!r} names no live prepared session "
                "(evicted or never prepared); re-submit the full design"
            )
        backend, options = resolve_backend(request.backend)
        session = backend.prepare(
            request.netlist,
            annotation=request.annotation,
            config=request.config,
            **options,
        )
        # Keys with dispatched-but-unfinished batches or pending groups
        # are pinned: evicting them would turn the queued work (delta
        # requests especially, which cannot re-prepare) into spurious
        # UnknownBaseDesignError.  Snapshot under the group lock *before*
        # taking the session lock — same-rank locks are never nested.
        with self._group_lock:
            pinned = set(self._active_keys)
            pinned.update(self._pending_groups)
        with self._session_lock:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            if len(self._sessions) > self._session_cache_size:
                for stale in list(self._sessions):
                    if len(self._sessions) <= self._session_cache_size:
                        break
                    if stale == key or stale in pinned:
                        continue
                    del self._sessions[stale]
            # With every resident key pinned the cache may transiently
            # exceed its bound; the next unpinned insert re-trims it.
        return session, False

    def _execute_batch(self, key: str, items: List[_QueueItem]) -> None:
        """Run one micro-batch on its shared prepared session.

        Every item releases its in-flight permit exactly once, whatever
        its outcome (completed, failed, cancelled, prepare error).
        """
        # Prepare (or fetch) the session from a full request when the batch
        # has one; an all-delta batch can only hit the cache.
        probe = next(
            (q.request for q in items if q.request.netlist is not None),
            items[0].request,
        )
        try:
            session, reused = self._session_for(key, probe)
        except BaseException as exc:
            for queued in items:
                if queued.future.set_running_or_notify_cancel():
                    queued.future.set_exception(exc)
                self._bump("failed")
                self._inflight.release()
            return
        live: List[_QueueItem] = []
        for queued in items:
            if queued.future.set_running_or_notify_cancel():
                live.append(queued)
            else:  # cancelled while queued
                self._inflight.release()
        if not live:
            return
        # Coalesce in-flight identical full requests: the session key
        # already pins the design fingerprints, backend spec, and config,
        # so equal stimulus fingerprints and horizons guarantee
        # bit-identical results — one leader runs the engine, followers
        # fan its result out.  Delta requests are never coalesced (each
        # mutates the session apply -> rerun -> undo).
        followers: List[Tuple[_QueueItem, _QueueItem]] = []
        leaders_by_fp: Dict[Tuple[str, Optional[int], Optional[int]], _QueueItem] = {}
        runnable: List[_QueueItem] = []
        for queued in live:
            if queued.request.netlist is None:
                runnable.append(queued)
                continue
            identity = (
                stimulus_fingerprint(queued.request.stimulus),
                queued.request.cycles,
                queued.request.duration,
            )
            leader = leaders_by_fp.get(identity)
            if leader is None:
                leaders_by_fp[identity] = queued
                runnable.append(queued)
            else:
                followers.append((queued, leader))
        outcomes: Dict[int, _Outcome] = {}
        # Delta requests are never fused either: the time-axis fusion
        # layout cannot express the session mutation.  Distinct full
        # requests of the batch still fuse.
        full_items = [q for q in runnable if q.request.netlist is not None]
        run_many = getattr(session, "run_many", None)
        if run_many is not None and len(full_items) > 1:
            fused_results = self._execute_fused(key, run_many, full_items, reused)
            if fused_results is not None:
                for queued, result in zip(full_items, fused_results):
                    outcomes[id(queued)] = _Outcome(
                        result=result,
                        run_seconds=0.0,
                        fused=result.stats.fused_requests > 1,
                    )
                runnable = [q for q in runnable if q.request.netlist is None]
                reused = True
        for queued in runnable:
            try:
                picked_up = time.perf_counter()
                request = queued.request
                try:
                    if request.netlist is None:
                        result = self._run_delta(session, request)
                    else:
                        result = session.run(
                            request.stimulus,
                            cycles=request.cycles,
                            duration=request.duration,
                        )
                except BaseException as exc:
                    outcomes[id(queued)] = _Outcome(error=exc)
                    queued.future.set_exception(exc)
                    self._bump("failed")
                    continue
                done = time.perf_counter()
                outcomes[id(queued)] = _Outcome(
                    result=result, run_seconds=done - picked_up
                )
                queued.future.set_result(
                    ServeResponse(
                        result=result,
                        backend=request.backend,
                        session_key=key,
                        queue_seconds=picked_up - queued.enqueued_at,
                        run_seconds=done - picked_up,
                        batch_size=queued.batch_size,
                        session_reused=reused,
                        analysis_report=queued.analysis_report,
                        tag=request.tag,
                    )
                )
                self._record_latency(picked_up - queued.enqueued_at, done - picked_up)
                self._bump("completed")
                # Later requests of the batch ran on a session the batch
                # itself warmed up.
                reused = True
            finally:
                self._inflight.release()
        for queued, leader in followers:
            try:
                outcome = outcomes.get(id(leader))
                if outcome is None or (outcome.result is None and outcome.error is None):
                    # The leader never produced an outcome (defensive; it
                    # always should) — fail the follower loudly rather
                    # than hanging its future.
                    queued.future.set_exception(
                        ServiceError("coalesced leader produced no outcome")
                    )
                    self._bump("failed")
                    continue
                if outcome.error is not None:
                    queued.future.set_exception(outcome.error)
                    self._bump("failed")
                    continue
                now = time.perf_counter()
                queued.future.set_result(
                    ServeResponse(
                        result=outcome.result,
                        backend=queued.request.backend,
                        session_key=key,
                        queue_seconds=now - queued.enqueued_at,
                        run_seconds=outcome.run_seconds,
                        batch_size=queued.batch_size,
                        session_reused=True,
                        fused=outcome.fused,
                        coalesced=True,
                        analysis_report=queued.analysis_report,
                        tag=queued.request.tag,
                    )
                )
                self._record_latency(now - queued.enqueued_at, 0.0)
                self._bump("completed")
                self._bump("coalesced")
            finally:
                self._inflight.release()

    def _run_delta(self, session: Any, request: ServeRequest) -> SimulationResult:
        """Evaluate one what-if edit batch against the base session.

        At most one batch per key executes at a time (the dispatcher's
        active-key bookkeeping), so apply -> rerun -> undo is race-free.
        The undo restores the shared session to the base design before
        the next request touches it; the journal-chained compile cache
        makes repeat evaluations of a seen batch (and every undo) cache
        hits instead of rebuilds.
        """
        result = session.rerun(
            list(request.edits),
            stimulus=request.stimulus or None,
            cycles=request.cycles,
            duration=request.duration,
        )
        receipt = getattr(session, "last_edit_receipt", None)
        if receipt is not None and receipt.edits:
            session.apply_edits(receipt.undo_edits)
        return result

    def _execute_fused(
        self,
        key: str,
        run_many: Callable[..., List[SimulationResult]],
        live: List[_QueueItem],
        reused: bool,
    ) -> Optional[List[SimulationResult]]:
        """Execute a micro-batch as one fused session run.

        Returns the per-request results (request order, futures resolved,
        permits released) on success, or ``None`` — with no future
        resolved and no permit released — when the batched run raises, so
        the caller can fall back to per-request execution and keep
        failures isolated to the request that caused them.
        """
        from ..api.sharded import RunSpec

        picked_up = time.perf_counter()
        try:
            results = run_many(
                [
                    RunSpec(
                        stimulus=queued.request.stimulus,
                        cycles=queued.request.cycles,
                        duration=queued.request.duration,
                    )
                    for queued in live
                ]
            )
        except Exception:
            # Isolation: re-run the batch serially so only the request
            # that actually fails resolves with its exception.  Counted so
            # a systematically failing fused path is observable in stats
            # instead of degrading silently.
            self._bump("fused_fallbacks")
            return None
        wall = time.perf_counter() - picked_up
        for queued, result in zip(live, results):
            queue_seconds = picked_up - queued.enqueued_at
            # The batch executed jointly; attribute the wall time evenly,
            # matching the fused stats attribution.
            run_seconds = wall / len(live)
            queued.future.set_result(
                ServeResponse(
                    result=result,
                    backend=queued.request.backend,
                    session_key=key,
                    queue_seconds=queue_seconds,
                    run_seconds=run_seconds,
                    batch_size=queued.batch_size,
                    session_reused=reused,
                    fused=result.stats.fused_requests > 1,
                    analysis_report=queued.analysis_report,
                    tag=queued.request.tag,
                )
            )
            self._record_latency(queue_seconds, run_seconds)
            self._bump("completed")
            self._inflight.release()
        return list(results)

    def _bump(self, counter: str) -> None:
        with self._stats_lock:
            self._stats[counter] += 1

    def _record_latency(self, queue_seconds: float, run_seconds: float) -> None:
        with self._stats_lock:
            self._stats["queue_seconds_total"] += queue_seconds
            self._stats["run_seconds_total"] += run_seconds
