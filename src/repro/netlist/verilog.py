"""Structural (gate-level) Verilog reader and writer.

Only the structural subset emitted by synthesis tools is supported:

* one flat module per file (the first module is used),
* ``input`` / ``output`` / ``wire`` declarations, scalar or vectored
  (``input [7:0] a;`` is flattened to scalar nets ``a[7] … a[0]``),
* cell instantiations with named port connections
  (``NAND2 u1 (.A(n1), .B(n2), .Y(n3));``),
* ``1'b0`` / ``1'b1`` constants in connections (tied via TIELO/TIEHI cells).

Everything else (behavioural code, parameters, assigns) is rejected with a
clear error, because a gate-level re-simulator should never see it.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..cells import CellLibrary, DEFAULT_LIBRARY
from .netlist import Netlist, NetlistError


class VerilogError(ValueError):
    """Raised when the input file is not supported structural Verilog."""


_COMMENT_LINE = re.compile(r"//.*?$", re.MULTILINE)
_COMMENT_BLOCK = re.compile(r"/\*.*?\*/", re.DOTALL)
_MODULE = re.compile(r"\bmodule\s+(\w+)\s*\((.*?)\)\s*;", re.DOTALL)
_ENDMODULE = re.compile(r"\bendmodule\b")
_DECL = re.compile(
    r"\b(input|output|wire)\s+(?:\[(\d+)\s*:\s*(\d+)\]\s*)?([^;]+);", re.DOTALL
)
_INSTANCE = re.compile(r"(\w+)\s+(\\?[\w\[\].$]+)\s*\(\s*(\..*?)\)\s*;", re.DOTALL)
_PIN_CONN = re.compile(r"\.(\w+)\s*\(\s*([^)]*?)\s*\)")
_CONSTANT = re.compile(r"1'b([01])")


def _strip_comments(text: str) -> str:
    text = _COMMENT_BLOCK.sub(" ", text)
    text = _COMMENT_LINE.sub(" ", text)
    return text


def _expand_names(raw: str, msb: Optional[str], lsb: Optional[str]) -> List[str]:
    """Expand a declaration's name list, flattening any vector range."""
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if msb is None:
        return names
    high, low = int(msb), int(lsb)
    if low > high:
        high, low = low, high
    expanded: List[str] = []
    for name in names:
        expanded.extend(f"{name}[{bit}]" for bit in range(high, low - 1, -1))
    return expanded


def parse_verilog(
    text: str, library: Optional[CellLibrary] = None
) -> Netlist:
    """Parse structural Verilog text into a :class:`Netlist`."""
    library = library or DEFAULT_LIBRARY
    text = _strip_comments(text)
    module_match = _MODULE.search(text)
    if not module_match:
        raise VerilogError("no module declaration found")
    module_name = module_match.group(1)
    end_match = _ENDMODULE.search(text, module_match.end())
    if not end_match:
        raise VerilogError(f"module {module_name!r} has no endmodule")
    body = text[module_match.end() : end_match.start()]

    if re.search(r"\b(assign|always|initial)\b", body):
        raise VerilogError(
            "behavioural constructs (assign/always/initial) are not supported; "
            "expected a structural gate-level netlist"
        )

    netlist = Netlist(module_name, library=library)

    declared_wires: List[str] = []
    for kind, msb, lsb, names in _DECL.findall(body):
        expanded = _expand_names(names, msb or None, lsb or None)
        for name in expanded:
            if kind == "input":
                netlist.add_input(name)
            elif kind == "output":
                netlist.add_output(name)
            else:
                declared_wires.append(name)
    for name in declared_wires:
        netlist.add_net(name)

    body_wo_decls = _DECL.sub(" ", body)
    tie_counter = [0]

    def resolve_constant(value: str) -> str:
        """Create a tie cell for a 1'b0 / 1'b1 connection and return its net."""
        bit = _CONSTANT.match(value).group(1)
        cell = "TIEHI" if bit == "1" else "TIELO"
        net_name = f"__tie{bit}_{tie_counter[0]}"
        tie_counter[0] += 1
        netlist.add_instance(cell, f"__tie_inst_{net_name}", {"Y": net_name})
        return net_name

    found_any = False
    for cell_name, inst_name, conn_text in _INSTANCE.findall(body_wo_decls):
        if cell_name in ("module", "endmodule"):
            continue
        found_any = True
        if cell_name not in library:
            raise VerilogError(
                f"instance {inst_name!r} references unknown cell {cell_name!r}"
            )
        inst_name = inst_name.lstrip("\\")
        connections: Dict[str, str] = {}
        for pin, net in _PIN_CONN.findall(conn_text):
            net = net.strip().lstrip("\\").strip()
            if not net:
                raise VerilogError(
                    f"instance {inst_name!r} pin {pin!r} is unconnected"
                )
            if _CONSTANT.match(net):
                net = resolve_constant(net)
            connections[pin] = net
        try:
            netlist.add_instance(cell_name, inst_name, connections)
        except NetlistError as exc:
            raise VerilogError(str(exc)) from exc

    if not found_any and not netlist.nets:
        raise VerilogError(f"module {module_name!r} contains no instances")
    return netlist


def read_verilog(path: str, library: Optional[CellLibrary] = None) -> Netlist:
    """Read and parse a structural Verilog file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), library=library)


def _needs_escape(name: str) -> bool:
    return bool(re.search(r"[\[\].$]", name))


def _format_name(name: str) -> str:
    """Escape identifiers containing brackets (flattened bus bits)."""
    if _needs_escape(name):
        return f"\\{name} "
    return name


def write_verilog(netlist: Netlist) -> str:
    """Render a netlist back to structural Verilog text."""
    lines: List[str] = []
    ports = list(netlist.inputs) + list(netlist.outputs)
    port_list = ", ".join(_format_name(p) for p in ports)
    lines.append(f"module {netlist.name} ({port_list});")
    for name in netlist.inputs:
        lines.append(f"  input {_format_name(name)};")
    for name in netlist.outputs:
        lines.append(f"  output {_format_name(name)};")
    port_set = set(ports)
    for name in sorted(netlist.nets):
        if name not in port_set:
            lines.append(f"  wire {_format_name(name)};")
    for inst in netlist.instances.values():
        conns = ", ".join(
            f".{pin}({_format_name(net)})" for pin, net in inst.connections.items()
        )
        lines.append(f"  {inst.cell_name} {_format_name(inst.name)}({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(netlist: Netlist, path: str) -> None:
    """Write a netlist to a structural Verilog file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(netlist))
