"""Graph views of a netlist.

The paper translates the netlist into a DGL graph whose node features carry
the cell logic function and whose edge features carry gate and interconnect
delays.  DGL is not available offline, so we provide the equivalent
``networkx`` construction: a directed graph over instances (and port/source
pseudo-nodes) with the same attribute annotation.  The GATSPI engine itself
consumes the compiled :class:`CompiledGraph` structure, which is the flat
array-of-attributes form the DGL object would be lowered to on the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .levelize import Levelization, levelize
from .netlist import Netlist, PORT


def to_networkx(netlist: Netlist) -> nx.DiGraph:
    """Build a directed instance-level graph with netlist attributes.

    Nodes are instance names (plus ``"port:<name>"`` pseudo-nodes for primary
    ports); node attribute ``cell`` holds the cell type.  Edges follow signal
    flow and carry the connecting ``net`` name and the sink ``pin``.
    """
    graph = nx.DiGraph(name=netlist.name)
    for name in netlist.inputs:
        graph.add_node(f"port:{name}", kind="input", cell=None)
    for name in netlist.outputs:
        graph.add_node(f"port:{name}", kind="output", cell=None)
    for inst in netlist.instances.values():
        kind = "sequential" if inst.is_sequential else "combinational"
        graph.add_node(inst.name, kind=kind, cell=inst.cell_name)

    def node_for(endpoint: Tuple[str, str]) -> str:
        owner, pin = endpoint
        if owner == PORT:
            return f"port:{pin}"
        return owner

    for net_name, net in netlist.nets.items():
        if net.driver is None:
            continue
        source = node_for(net.driver)
        for load in net.loads:
            sink = node_for(load)
            graph.add_edge(source, sink, net=net_name, pin=load[1])
    return graph


@dataclass
class CompiledGate:
    """Flattened attributes of one combinational gate, ready for the kernel."""

    name: str
    cell_name: str
    level: int
    input_nets: Tuple[str, ...]
    output_net: str
    input_pins: Tuple[str, ...]


@dataclass
class CompiledGraph:
    """The netlist lowered to per-level gate arrays (the paper's compiled
    ``Design.dgl`` object)."""

    netlist: Netlist
    levelization: Levelization
    gates: Dict[str, CompiledGate] = field(default_factory=dict)
    gates_by_level: List[List[CompiledGate]] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.gates_by_level)

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def level_sizes(self) -> List[int]:
        return [len(level) for level in self.gates_by_level]


def compile_netlist(
    netlist: Netlist, levelization: Optional[Levelization] = None
) -> CompiledGraph:
    """Lower a netlist into the per-level structure the engine iterates over."""
    levelization = levelization or levelize(netlist)
    compiled = CompiledGraph(netlist=netlist, levelization=levelization)
    compiled.gates_by_level = [[] for _ in range(levelization.depth)]
    for level_index, names in enumerate(levelization.levels):
        for name in names:
            inst = netlist.instances[name]
            gate = CompiledGate(
                name=name,
                cell_name=inst.cell_name,
                level=level_index + 1,
                input_nets=inst.input_nets(),
                output_net=inst.output_net(),
                input_pins=inst.cell.inputs,
            )
            compiled.gates[name] = gate
            compiled.gates_by_level[level_index].append(gate)
    return compiled
