"""Logic levelization of a gate-level netlist.

GATSPI partitions the combinational netlist by logic level: sources (primary
inputs, sequential outputs, tie cells) are level 0; a gate's level is one plus
the maximum level of its input nets.  Simulation advances level by level so
that every gate's input waveforms are final before it is simulated (paper
Section 2/3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .netlist import Netlist, NetlistError, PORT


@dataclass
class Levelization:
    """Result of levelizing a netlist.

    ``net_levels`` maps every net to its logic level; ``levels`` lists the
    combinational instance names grouped by level (level 1 onward; level 0 has
    no gates, only sources).
    """

    net_levels: Dict[str, int] = field(default_factory=dict)
    gate_levels: Dict[str, int] = field(default_factory=dict)
    levels: List[List[str]] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Number of combinational levels (the paper's logic depth)."""
        return len(self.levels)

    @property
    def widest_level(self) -> int:
        """Gate count of the widest level (drives GPU thread-count estimates)."""
        return max((len(level) for level in self.levels), default=0)

    def gates_at(self, level: int) -> List[str]:
        return self.levels[level]

    def level_sizes(self) -> List[int]:
        return [len(level) for level in self.levels]


def levelize(netlist: Netlist) -> Levelization:
    """Compute logic levels for every net and combinational gate.

    Raises :class:`NetlistError` if the combinational logic contains a cycle
    or if a combinational gate input is undriven.
    """
    result = Levelization()
    # Level 0 sources: primary inputs, sequential outputs, and zero-input
    # cells (tie-high/low).
    pending_inputs: Dict[str, int] = {}
    ready: deque = deque()

    for name in netlist.source_nets():
        result.net_levels[name] = 0

    combinational = netlist.combinational_instances()
    consumers: Dict[str, List[str]] = {}
    # Materialize per-gate input/output nets once: the worklist loop below
    # revisits them, and tuple-building per visit dominated levelization
    # time on large designs.
    inputs_of: Dict[str, Tuple[str, ...]] = {}
    output_of: Dict[str, str] = {}
    for inst in combinational:
        inputs_of[inst.name] = inst.input_nets()
        output_of[inst.name] = inst.output_net()
        remaining = 0
        for net_name in inputs_of[inst.name]:
            if net_name in result.net_levels:
                continue
            remaining += 1
            consumers.setdefault(net_name, []).append(inst.name)
        pending_inputs[inst.name] = remaining
        if remaining == 0:
            ready.append(inst.name)

    processed = 0
    net_levels = result.net_levels
    while ready:
        inst_name = ready.popleft()
        input_nets = inputs_of[inst_name]
        level = (max([net_levels[n] for n in input_nets]) + 1) if input_nets else 1
        result.gate_levels[inst_name] = level
        processed += 1
        output_net = output_of[inst_name]
        previous = result.net_levels.get(output_net)
        if previous is not None and previous != level:
            raise NetlistError(
                f"net {output_net!r} assigned conflicting levels "
                f"{previous} and {level}"
            )
        result.net_levels[output_net] = level
        for consumer in consumers.get(output_net, []):
            pending_inputs[consumer] -= 1
            if pending_inputs[consumer] == 0:
                ready.append(consumer)

    if processed != len(combinational):
        unresolved = [
            name for name, remaining in pending_inputs.items() if remaining > 0
        ]
        undriven = _undriven_inputs(netlist)
        if undriven:
            raise NetlistError(
                f"combinational gates have undriven inputs: {sorted(undriven)[:10]}"
            )
        raise NetlistError(
            f"combinational loop detected involving instances "
            f"{sorted(unresolved)[:10]}"
        )

    depth = max(result.gate_levels.values(), default=0)
    result.levels = [[] for _ in range(depth)]
    for inst_name, level in result.gate_levels.items():
        result.levels[level - 1].append(inst_name)
    for level in result.levels:
        level.sort()
    return result


def _undriven_inputs(netlist: Netlist) -> List[str]:
    """Nets used as combinational inputs but never driven by anything."""
    undriven = []
    sources = set(netlist.source_nets())
    for inst in netlist.combinational_instances():
        for net_name in inst.input_nets():
            net = netlist.nets[net_name]
            if net.driver is None and net_name not in sources:
                undriven.append(net_name)
    return undriven


# ----------------------------------------------------------------------
# Register crossings (the D-cone -> Q-source table between frames)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisterCrossing:
    """One sequential element as a crossing between combinational frames.

    The D cone of frame ``k`` ends at ``d_net`` (an endpoint of the
    levelized frame) and, one capture edge later, re-enters frame ``k+1``
    as the level-0 source ``q_net``.  Control-pin nets and next-state
    semantics are denormalized from the cell so consumers (the register
    file, the clocked driver, analysis rules) need no cell lookups.
    """

    instance: str
    cell_name: str
    q_net: str
    d_net: Optional[str]
    clock_net: Optional[str]
    enable_net: Optional[str]
    reset_net: Optional[str]
    reset_active_low: bool
    reset_async: bool
    reset_value: int
    init_value: int
    is_latch: bool
    clk_to_q_rise: float
    clk_to_q_fall: float


def register_crossings(netlist: Netlist) -> List[RegisterCrossing]:
    """The register crossing table, sorted by instance name.

    One :class:`RegisterCrossing` per sequential instance; ``init_value``
    already folds in any per-instance override from
    :attr:`Netlist.initial_values`.
    """
    crossings: List[RegisterCrossing] = []
    for inst in netlist.sequential_instances():
        cell = inst.cell

        def pin_net(pin: Optional[str]) -> Optional[str]:
            return inst.connections[pin] if pin is not None else None

        crossings.append(
            RegisterCrossing(
                instance=inst.name,
                cell_name=cell.name,
                q_net=inst.output_net(),
                d_net=pin_net(cell.data_pin),
                clock_net=pin_net(cell.clock_pin),
                enable_net=pin_net(cell.enable_pin),
                reset_net=pin_net(cell.reset_pin),
                reset_active_low=cell.reset_active_low,
                reset_async=cell.reset_async,
                reset_value=cell.reset_value & 1,
                init_value=netlist.initial_value_of(inst.name),
                is_latch=cell.is_latch,
                clk_to_q_rise=cell.intrinsic_rise,
                clk_to_q_fall=cell.intrinsic_fall,
            )
        )
    crossings.sort(key=lambda c: c.instance)
    return crossings


def critical_level_path(levelization: Levelization) -> Tuple[int, int]:
    """Return ``(depth, widest_level_size)`` — the two numbers that bound the
    GPU launch count and per-launch thread count respectively."""
    return levelization.depth, levelization.widest_level
