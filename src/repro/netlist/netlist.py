"""Gate-level netlist data structures.

A :class:`Netlist` is a flat (non-hierarchical) gate-level design: primary
ports, nets, and cell instances from a :class:`~repro.cells.CellLibrary`.
Sequential instances (flip-flops, latches) are kept in the netlist but are
*re-simulation boundaries*: their outputs are treated as pseudo-primary
inputs whose waveforms are supplied by the testbench, and their inputs are
treated as endpoints (paper Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cells import Cell, CellLibrary, DEFAULT_LIBRARY

#: Pseudo-instance name used for net drivers/loads that are module ports.
PORT = "__port__"


class NetlistError(ValueError):
    """Raised for structural netlist problems."""


@dataclass
class Net:
    """A single-bit wire.

    ``driver`` is ``(instance_name, pin)`` or ``(PORT, port_name)`` and
    ``loads`` is the list of sinks in the same format.
    """

    name: str
    driver: Optional[Tuple[str, str]] = None
    loads: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.loads)

    def is_driven_by_port(self) -> bool:
        return self.driver is not None and self.driver[0] == PORT


@dataclass
class Instance:
    """One placed cell with its pin-to-net connections."""

    name: str
    cell: Cell
    connections: Dict[str, str]

    @property
    def cell_name(self) -> str:
        return self.cell.name

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential

    def input_nets(self) -> Tuple[str, ...]:
        """Nets connected to input pins, in the cell's pin order."""
        # List-comp then tuple() is measurably faster than a genexpr here,
        # and this is the hottest structural accessor (levelization,
        # packing and analysis all iterate it per gate).
        connections = self.connections
        return tuple([connections[pin] for pin in self.cell.inputs])

    def output_net(self) -> str:
        return self.connections[self.cell.output]

    def net_for(self, pin: str) -> str:
        return self.connections[pin]


class Netlist:
    """A flat gate-level netlist plus convenience queries for re-simulation."""

    def __init__(self, name: str, library: Optional[CellLibrary] = None):
        self.name = name
        self.library = library or DEFAULT_LIBRARY
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}
        #: Per-instance power-on state overrides (instance name -> 0/1) for
        #: sequential elements; instances absent here start at their cell's
        #: ``init_value``.  Set by the Yosys importer (``init`` attributes)
        #: and by :meth:`set_initial_value`.
        self.initial_values: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> Net:
        """Declare a primary input port and its net."""
        if name in self.inputs or name in self.outputs:
            raise NetlistError(f"port {name!r} already declared")
        net = self.add_net(name)
        if net.driver is not None:
            raise NetlistError(f"net {name!r} already has a driver")
        net.driver = (PORT, name)
        self.inputs.append(name)
        return net

    def add_output(self, name: str) -> Net:
        """Declare a primary output port and its net."""
        if name in self.inputs or name in self.outputs:
            raise NetlistError(f"port {name!r} already declared")
        net = self.add_net(name)
        net.loads.append((PORT, name))
        self.outputs.append(name)
        return net

    def add_net(self, name: str) -> Net:
        """Declare (or fetch) a net by name."""
        if name not in self.nets:
            self.nets[name] = Net(name=name)
        return self.nets[name]

    def add_instance(
        self, cell_name: str, instance_name: str, connections: Mapping[str, str]
    ) -> Instance:
        """Instantiate a library cell.

        Every cell pin must be connected; referenced nets are created on
        demand.
        """
        if instance_name in self.instances:
            raise NetlistError(f"instance {instance_name!r} already exists")
        cell = self.library.get(cell_name)
        missing = [pin for pin in cell.pins if pin not in connections]
        if missing:
            raise NetlistError(
                f"instance {instance_name!r} of {cell_name!r} is missing "
                f"connections for pins {missing}"
            )
        extra = [pin for pin in connections if pin not in cell.pins]
        if extra:
            raise NetlistError(
                f"instance {instance_name!r} of {cell_name!r} has connections "
                f"for unknown pins {extra}"
            )
        conn = {pin: str(net) for pin, net in connections.items()}
        instance = Instance(name=instance_name, cell=cell, connections=conn)
        for pin in cell.inputs:
            self.add_net(conn[pin]).loads.append((instance_name, pin))
        out_net = self.add_net(conn[cell.output])
        if out_net.driver is not None:
            raise NetlistError(
                f"net {conn[cell.output]!r} already driven by "
                f"{out_net.driver}; cannot also drive from {instance_name!r}"
            )
        out_net.driver = (instance_name, cell.output)
        self.instances[instance_name] = instance
        return instance

    def set_initial_value(self, instance_name: str, value: int) -> None:
        """Record the power-on state of a sequential instance (0 or 1)."""
        inst = self.instance(instance_name)
        if not inst.is_sequential:
            raise NetlistError(
                f"instance {instance_name!r} is combinational; only "
                f"sequential elements carry initial values"
            )
        if value not in (0, 1):
            raise NetlistError(
                f"initial value for {instance_name!r} must be 0 or 1, "
                f"got {value!r}"
            )
        self.initial_values[instance_name] = value

    def initial_value_of(self, instance_name: str) -> int:
        """Power-on state of a sequential instance (override or cell default)."""
        inst = self.instance(instance_name)
        if instance_name in self.initial_values:
            return self.initial_values[instance_name]
        return inst.cell.init_value & 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def gate_count(self) -> int:
        """Number of combinational instances (the paper's gate count)."""
        return sum(1 for inst in self.instances.values() if not inst.is_sequential)

    @property
    def sequential_count(self) -> int:
        return sum(1 for inst in self.instances.values() if inst.is_sequential)

    def combinational_instances(self) -> List[Instance]:
        return [inst for inst in self.instances.values() if not inst.is_sequential]

    def sequential_instances(self) -> List[Instance]:
        return [inst for inst in self.instances.values() if inst.is_sequential]

    def source_nets(self) -> List[str]:
        """Nets whose waveforms are testbench stimuli in re-simulation.

        These are the primary inputs plus the outputs of sequential elements
        (pseudo-primary inputs).
        """
        sources = list(self.inputs)
        for inst in self.sequential_instances():
            sources.append(inst.output_net())
        return sources

    def endpoint_nets(self) -> List[str]:
        """Primary outputs plus sequential element inputs (excluding clocks)."""
        endpoints = list(self.outputs)
        for inst in self.sequential_instances():
            for pin in inst.cell.inputs:
                if pin == inst.cell.clock_pin:
                    continue
                endpoints.append(inst.connections[pin])
        return endpoints

    def driver_of(self, net_name: str) -> Optional[Tuple[str, str]]:
        return self.nets[net_name].driver

    def loads_of(self, net_name: str) -> List[Tuple[str, str]]:
        return list(self.nets[net_name].loads)

    def fanout_of(self, net_name: str) -> int:
        return self.nets[net_name].fanout

    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(f"unknown instance {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"unknown net {name!r}") from None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def cell_histogram(self) -> Dict[str, int]:
        """Instance count per cell type."""
        histogram: Dict[str, int] = {}
        for inst in self.instances.values():
            histogram[inst.cell_name] = histogram.get(inst.cell_name, 0) + 1
        return histogram

    def summary(self) -> Dict[str, int]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "nets": len(self.nets),
            "instances": len(self.instances),
            "combinational_gates": self.gate_count,
            "sequential_elements": self.sequential_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, gates={self.gate_count}, "
            f"seq={self.sequential_count}, nets={len(self.nets)})"
        )


class NetlistBuilder:
    """Small helper for programmatic netlist construction.

    Used by the benchmark design generators; keeps a running counter for
    anonymous net and instance names.
    """

    def __init__(self, name: str, library: Optional[CellLibrary] = None):
        self.netlist = Netlist(name, library=library)
        self._net_counter = 0
        self._inst_counter = 0

    def input(self, name: str) -> str:
        self.netlist.add_input(name)
        return name

    def inputs(self, prefix: str, count: int) -> List[str]:
        return [self.input(f"{prefix}[{i}]") for i in range(count)]

    def output(self, name: str) -> str:
        self.netlist.add_output(name)
        return name

    def outputs(self, prefix: str, count: int) -> List[str]:
        return [self.output(f"{prefix}[{i}]") for i in range(count)]

    def new_net(self, hint: str = "n") -> str:
        name = f"{hint}_{self._net_counter}"
        self._net_counter += 1
        self.netlist.add_net(name)
        return name

    def gate(
        self,
        cell_name: str,
        input_nets: Sequence[str],
        output_net: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        """Instantiate a combinational cell; returns the output net name."""
        cell = self.netlist.library.get(cell_name)
        if len(input_nets) != cell.num_inputs:
            raise NetlistError(
                f"{cell_name} expects {cell.num_inputs} inputs, got {len(input_nets)}"
            )
        if output_net is None:
            output_net = self.new_net(cell_name.lower())
        if name is None:
            name = f"u{self._inst_counter}"
            self._inst_counter += 1
        connections = dict(zip(cell.inputs, input_nets))
        connections[cell.output] = output_net
        self.netlist.add_instance(cell_name, name, connections)
        return output_net

    def flop(
        self,
        data_net: str,
        clock_net: str,
        output_net: Optional[str] = None,
        cell_name: str = "DFF",
        name: Optional[str] = None,
        *,
        reset_net: Optional[str] = None,
        enable_net: Optional[str] = None,
        init: Optional[int] = None,
    ) -> str:
        """Instantiate a flip-flop; returns its Q net name.

        ``reset_net``/``enable_net`` connect the cell's reset/enable pins
        (an error when the cell has none); control pins left unconnected
        are tied to their inactive level with TIEHI/TIELO cells so the
        register behaves like a plain DFF when simulated.  ``init`` records
        the power-on state.
        """
        cell = self.netlist.library.get(cell_name)
        if output_net is None:
            output_net = self.new_net("q")
        if name is None:
            name = f"r{self._inst_counter}"
            self._inst_counter += 1
        connections = {cell.data_pin or "D": data_net,
                       cell.clock_pin or "CK": clock_net,
                       cell.output: output_net}
        for net, pin, role in ((reset_net, cell.reset_pin, "reset"),
                               (enable_net, cell.enable_pin, "enable")):
            if net is None:
                continue
            if pin is None:
                raise NetlistError(
                    f"cell {cell_name!r} has no {role} pin for net {net!r}"
                )
            connections[pin] = net
        for pin in cell.inputs:
            if pin in connections:
                continue
            # Tie unconnected control pins to their inactive level: reset
            # inactive is the opposite of its active polarity, enable
            # inactive-high keeps the register capturing every edge.
            if pin == cell.reset_pin:
                tie = "TIEHI" if cell.reset_active_low else "TIELO"
            elif pin == cell.enable_pin:
                tie = "TIEHI"
            else:
                tie = "TIELO"
            tie_net = self.netlist.add_net(f"{name}_{pin}").name
            self.netlist.add_instance(tie, f"{name}_{pin}_tie", {"Y": tie_net})
            connections[pin] = tie_net
        self.netlist.add_instance(cell_name, name, connections)
        if init is not None:
            self.netlist.set_initial_value(name, init)
        return output_net

    def build(self) -> Netlist:
        return self.netlist
