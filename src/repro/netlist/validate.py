"""Netlist structural checks run before simulation.

The checks mirror what a commercial simulator's elaboration step would flag:
undriven nets, multiply-driven nets (already prevented at construction),
floating gate inputs, dangling nets, and combinational loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .levelize import levelize
from .netlist import Netlist, NetlistError, PORT


@dataclass
class ValidationReport:
    """Collected findings from :func:`validate_netlist`."""

    undriven_nets: List[str] = field(default_factory=list)
    dangling_nets: List[str] = field(default_factory=list)
    unconnected_outputs: List[str] = field(default_factory=list)
    combinational_loop: bool = False
    loop_message: str = ""

    @property
    def is_clean(self) -> bool:
        return not (
            self.undriven_nets or self.combinational_loop or self.unconnected_outputs
        )

    def raise_if_fatal(self) -> None:
        """Raise :class:`NetlistError` for errors that prevent simulation."""
        if self.combinational_loop:
            raise NetlistError(self.loop_message or "combinational loop detected")
        if self.undriven_nets:
            raise NetlistError(
                f"undriven nets used as gate inputs: {self.undriven_nets[:10]}"
            )


def validate_netlist(netlist: Netlist) -> ValidationReport:
    """Run all structural checks and return a report."""
    report = ValidationReport()
    sources = set(netlist.source_nets())

    used_as_input = set()
    for inst in netlist.instances.values():
        for pin in inst.cell.inputs:
            used_as_input.add(inst.connections[pin])

    for name, net in netlist.nets.items():
        driven = net.driver is not None or name in sources
        loaded = bool(net.loads)
        if not driven and name in used_as_input:
            report.undriven_nets.append(name)
        if driven and not loaded and name not in netlist.outputs:
            report.dangling_nets.append(name)

    for name in netlist.outputs:
        net = netlist.nets[name]
        if net.driver is None or net.driver[0] == PORT and name not in netlist.inputs:
            if net.driver is None:
                report.unconnected_outputs.append(name)

    try:
        levelize(netlist)
    except NetlistError as exc:
        message = str(exc)
        if "loop" in message:
            report.combinational_loop = True
            report.loop_message = message
        elif "undriven" in message:
            pass  # already captured above
        else:
            raise

    report.undriven_nets.sort()
    report.dangling_nets.sort()
    report.unconnected_outputs.sort()
    return report
