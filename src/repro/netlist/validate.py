"""Netlist structural checks run before simulation.

Since the design-rule engine landed (:mod:`repro.analysis`), this module is
a backwards-compatible shim: :func:`validate_netlist` evaluates the
structural subset of the rule registry (undriven inputs, multi-driven nets,
unconnected outputs, dangling nets, combinational loops) and folds the
findings back into the legacy :class:`ValidationReport` shape that existing
callers consume.  New code should call
:func:`repro.analysis.analyze_design` directly — it runs the full registry
(SDF coverage, delay sanity, cone analysis, ...) and returns structured,
JSON-serializable findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .netlist import Netlist, NetlistError

#: The rule-registry subset equivalent to the legacy structural checks.
STRUCTURAL_RULES: Tuple[str, ...] = (
    "undriven-input",
    "multi-driven-net",
    "unconnected-output",
    "combinational-loop",
    "dangling-net",
)


@dataclass
class ValidationReport:
    """Collected findings from :func:`validate_netlist`.

    ``is_clean`` is symmetric with what the report carries: it is true only
    when *no* finding of any kind was collected — including dangling nets,
    which earlier revisions reported but silently excluded from
    cleanliness (the asymmetry meant a report could be "clean" while still
    carrying findings nothing downstream ever surfaced).  Callers that
    only care about simulatability should use :attr:`has_fatal` /
    :meth:`raise_if_fatal`, whose semantics are unchanged.
    """

    undriven_nets: List[str] = field(default_factory=list)
    dangling_nets: List[str] = field(default_factory=list)
    multi_driven_nets: List[str] = field(default_factory=list)
    unconnected_outputs: List[str] = field(default_factory=list)
    combinational_loop: bool = False
    loop_message: str = ""
    loop_instances: List[str] = field(default_factory=list)

    @property
    def has_fatal(self) -> bool:
        """True when the design cannot be levelized and simulated."""
        return bool(
            self.undriven_nets
            or self.multi_driven_nets
            or self.combinational_loop
            or self.unconnected_outputs
        )

    @property
    def warnings(self) -> List[str]:
        """Non-fatal findings (currently: dangling nets)."""
        return [f"dangling net {name!r} (driven, no loads)" for name in self.dangling_nets]

    @property
    def is_clean(self) -> bool:
        return not (self.has_fatal or self.dangling_nets)

    def raise_if_fatal(self) -> None:
        """Raise :class:`NetlistError` for errors that prevent simulation."""
        if self.combinational_loop:
            raise NetlistError(self.loop_message or "combinational loop detected")
        if self.undriven_nets:
            raise NetlistError(
                f"undriven nets used as gate inputs: {self.undriven_nets[:10]}"
            )
        if self.multi_driven_nets:
            raise NetlistError(
                f"multiply-driven nets: {self.multi_driven_nets[:10]}"
            )


def validate_netlist(netlist: Netlist) -> ValidationReport:
    """Run the structural design rules and return a legacy-shaped report.

    Delegates to the rule engine (:mod:`repro.analysis`), so results are
    fingerprint-cached: validating the same design twice analyzes it once.
    """
    # Local import: ``repro.analysis`` imports ``repro.netlist``, so a
    # module-level import here would be a cycle.
    from ..analysis.engine import analyze_design

    report = ValidationReport()
    analysis = analyze_design(netlist, rules=list(STRUCTURAL_RULES))
    for finding in analysis.findings:
        if finding.rule_id == "undriven-input":
            report.undriven_nets.extend(finding.nets)
        elif finding.rule_id == "multi-driven-net":
            report.multi_driven_nets.extend(finding.nets)
        elif finding.rule_id == "unconnected-output":
            report.unconnected_outputs.extend(finding.nets)
        elif finding.rule_id == "dangling-net":
            report.dangling_nets.extend(finding.nets)
        elif finding.rule_id == "combinational-loop":
            report.combinational_loop = True
            report.loop_message = finding.message
            report.loop_instances.extend(finding.instances)
    report.undriven_nets.sort()
    report.dangling_nets.sort()
    report.multi_driven_nets.sort()
    report.unconnected_outputs.sort()
    report.loop_instances.sort()
    return report
