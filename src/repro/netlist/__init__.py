"""Gate-level netlist subsystem: data structures, Verilog/Yosys I/O, levelization."""

from .netlist import Instance, Net, Netlist, NetlistBuilder, NetlistError, PORT
from .levelize import (
    Levelization,
    RegisterCrossing,
    levelize,
    register_crossings,
)
from .verilog import (
    VerilogError,
    parse_verilog,
    read_verilog,
    save_verilog,
    write_verilog,
)
from .yosys import (
    UnsupportedCellError,
    YosysFormatError,
    YosysImportError,
    fixture_path,
    import_yosys_json,
    load_fixture,
    read_yosys_json,
)
from .graph import CompiledGate, CompiledGraph, compile_netlist, to_networkx
from .validate import ValidationReport, validate_netlist

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "PORT",
    "Levelization",
    "RegisterCrossing",
    "levelize",
    "register_crossings",
    "VerilogError",
    "parse_verilog",
    "read_verilog",
    "save_verilog",
    "write_verilog",
    "UnsupportedCellError",
    "YosysFormatError",
    "YosysImportError",
    "fixture_path",
    "import_yosys_json",
    "load_fixture",
    "read_yosys_json",
    "CompiledGate",
    "CompiledGraph",
    "compile_netlist",
    "to_networkx",
    "ValidationReport",
    "validate_netlist",
]
