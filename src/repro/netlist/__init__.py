"""Gate-level netlist subsystem: data structures, Verilog I/O, levelization."""

from .netlist import Instance, Net, Netlist, NetlistBuilder, NetlistError, PORT
from .levelize import Levelization, levelize
from .verilog import (
    VerilogError,
    parse_verilog,
    read_verilog,
    save_verilog,
    write_verilog,
)
from .graph import CompiledGate, CompiledGraph, compile_netlist, to_networkx
from .validate import ValidationReport, validate_netlist

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "PORT",
    "Levelization",
    "levelize",
    "VerilogError",
    "parse_verilog",
    "read_verilog",
    "save_verilog",
    "write_verilog",
    "CompiledGate",
    "CompiledGraph",
    "compile_netlist",
    "to_networkx",
    "ValidationReport",
    "validate_netlist",
]
