"""Yosys JSON netlist ingestion.

``yosys -p "synth; abc; write_json design.json"`` emits a bit-level
netlist: every module lists ``ports`` (direction + bit ids), ``cells``
(internal cell type + per-pin bit-id connections) and ``netnames``
(human-visible names + attributes such as power-on ``init``).  This module
maps that format onto the repro cell library so externally synthesized
designs run through the same levelize/simulate/analyze pipeline as
generated ones — file-based only, no Yosys installation or network access
involved.

Supported cell types are the single-bit internal gates Yosys lowers to
(the ``$_NAME_`` forms produced by ``abc``/``simplemap``); the mapping
table is :data:`CELL_MAP`.  Anything else — word-level RTL cells
(``$add``, ``$mem``…), unmapped flop polarities — raises
:class:`UnsupportedCellError` naming the offending type, so callers can
tell "re-run synthesis with simplemap" apart from a malformed file
(:class:`YosysFormatError`).

Constant bits (``"0"``/``"1"`` in a connection list) become shared
``TIELO``/``TIEHI`` instances; ``"x"``/``"z"`` bits are rejected — the
two-valued simulator has no representation for them.  Flop power-on
values are read from ``init`` attributes on the nets attached to register
outputs (MSB-first bit strings, as Yosys writes them) and recorded via
:meth:`~repro.netlist.netlist.Netlist.set_initial_value`.

Checked-in example designs (a counter, an LFSR, and a tiny scan-mux ALU)
live next to this module under ``fixtures/``; :func:`load_fixture` imports
one by name.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..cells.library import CellLibrary
from .netlist import Netlist, NetlistError, PORT


class YosysImportError(NetlistError):
    """Base class for Yosys JSON ingestion failures."""


class YosysFormatError(YosysImportError):
    """The document is not a well-formed Yosys JSON netlist."""


class UnsupportedCellError(YosysImportError):
    """The design uses a cell type the importer cannot map.

    ``cell_type`` carries the offending Yosys type so tooling can report
    every unmapped type of a design, not just the first.
    """

    def __init__(self, message: str, cell_type: str) -> None:
        super().__init__(message)
        self.cell_type = cell_type


#: Yosys internal cell type -> (library cell, yosys pin -> library pin).
#: Only single-bit internal cells appear here by design: the importer
#: consumes post-``simplemap``/``abc`` netlists, where word-level cells no
#: longer exist.
CELL_MAP: Dict[str, Tuple[str, Dict[str, str]]] = {
    "$_BUF_": ("BUF", {"A": "A", "Y": "Y"}),
    "$_NOT_": ("INV", {"A": "A", "Y": "Y"}),
    "$_AND_": ("AND2", {"A": "A", "B": "B", "Y": "Y"}),
    "$_OR_": ("OR2", {"A": "A", "B": "B", "Y": "Y"}),
    "$_XOR_": ("XOR2", {"A": "A", "B": "B", "Y": "Y"}),
    "$_XNOR_": ("XNOR2", {"A": "A", "B": "B", "Y": "Y"}),
    "$_NAND_": ("NAND2", {"A": "A", "B": "B", "Y": "Y"}),
    "$_NOR_": ("NOR2", {"A": "A", "B": "B", "Y": "Y"}),
    # $_MUX_: Y = S ? B : A, matching fn.mux2's (A, B, S) ordering.
    "$_MUX_": ("MUX2", {"A": "A", "B": "B", "S": "S", "Y": "Y"}),
    # $_AOI3_: Y = ~((A & B) | C); AOI21: Y = ~((A1 & A2) | B).
    "$_AOI3_": ("AOI21", {"A": "A1", "B": "A2", "C": "B", "Y": "Y"}),
    "$_OAI3_": ("OAI21", {"A": "A1", "B": "A2", "C": "B", "Y": "Y"}),
    "$_AOI4_": ("AOI22", {"A": "A1", "B": "A2", "C": "B1", "D": "B2", "Y": "Y"}),
    "$_OAI4_": ("OAI22", {"A": "A1", "B": "A2", "C": "B1", "D": "B2", "Y": "Y"}),
    # Flops: positive-edge variants only; other polarities raise
    # UnsupportedCellError (invert the clock/reset in RTL instead).
    "$_DFF_P_": ("DFF", {"C": "CK", "D": "D", "Q": "Q"}),
    "$_DFF_PN0_": ("DFFR", {"C": "CK", "D": "D", "R": "RN", "Q": "Q"}),
    "$_DFFE_PP_": ("DFFE", {"C": "CK", "D": "D", "E": "EN", "Q": "Q"}),
    "$_SDFF_PN0_": ("SDFFR", {"C": "CK", "D": "D", "R": "RN", "Q": "Q"}),
    "$_DLATCH_P_": ("LATCH", {"E": "G", "D": "D", "Q": "Q"}),
}

_OUTPUT_PINS = ("Y", "Q")

_FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"


def fixture_path(name: str) -> Path:
    """Absolute path of a checked-in Yosys JSON fixture (e.g. ``"lfsr"``)."""
    path = _FIXTURE_DIR / f"{name}.json"
    if not path.is_file():
        available = sorted(p.stem for p in _FIXTURE_DIR.glob("*.json"))
        raise YosysImportError(
            f"no Yosys fixture named {name!r}; available: {available}"
        )
    return path


def load_fixture(
    name: str, *, library: Optional[CellLibrary] = None
) -> Netlist:
    """Import one of the checked-in Yosys JSON fixtures by name."""
    return read_yosys_json(fixture_path(name), library=library)


def read_yosys_json(
    path: Union[str, Path],
    *,
    top: Optional[str] = None,
    name: Optional[str] = None,
    library: Optional[CellLibrary] = None,
) -> Netlist:
    """Import a Yosys JSON netlist from a file on disk."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise YosysFormatError(f"{path}: not valid JSON: {exc}") from None
    return import_yosys_json(data, top=top, name=name, library=library)


def import_yosys_json(
    source: Union[str, Mapping[str, Any]],
    *,
    top: Optional[str] = None,
    name: Optional[str] = None,
    library: Optional[CellLibrary] = None,
) -> Netlist:
    """Import a Yosys JSON document (parsed dict or JSON text).

    ``top`` picks the module to import when the document holds several
    (defaults to the module marked with a ``top`` attribute, or the only
    module present); ``name`` overrides the resulting netlist's name.
    """
    if isinstance(source, str):
        try:
            data: Mapping[str, Any] = json.loads(source)
        except json.JSONDecodeError as exc:
            raise YosysFormatError(f"not valid JSON: {exc}") from None
    else:
        data = source
    if not isinstance(data, Mapping):
        raise YosysFormatError(
            f"expected a JSON object at top level, got {type(data).__name__}"
        )
    modules = data.get("modules")
    if not isinstance(modules, Mapping) or not modules:
        raise YosysFormatError("document has no 'modules' object")
    module_name, module = _select_module(modules, top)
    return _import_module(name or module_name, module, library)


def _select_module(
    modules: Mapping[str, Any], top: Optional[str]
) -> Tuple[str, Mapping[str, Any]]:
    if top is not None:
        if top not in modules:
            raise YosysFormatError(
                f"no module named {top!r}; document has {sorted(modules)}"
            )
        return top, modules[top]
    flagged = []
    for mod_name, mod in modules.items():
        if not isinstance(mod, Mapping):
            continue
        top_attr = mod.get("attributes", {}).get("top")
        if top_attr is None:
            continue
        # Yosys writes attribute values as zero-padded bit strings.
        if top_attr in (1, True) or str(top_attr).lstrip("0") == "1":
            flagged.append(mod_name)
    if len(flagged) == 1:
        return flagged[0], modules[flagged[0]]
    if len(modules) == 1:
        only = next(iter(modules))
        return only, modules[only]
    raise YosysFormatError(
        f"document has {len(modules)} modules and no unique top attribute; "
        f"pass top= explicitly (available: {sorted(modules)})"
    )


def _bit_name_map(module: Mapping[str, Any]) -> Dict[int, str]:
    """Name every bit id: port names win, then visible netnames, then a
    ``_bit<id>_`` fallback applied lazily by :func:`_net_of`."""
    names: Dict[int, str] = {}

    def claim(base: str, bits: List[Any]) -> None:
        wide = len(bits) > 1
        for index, bit in enumerate(bits):
            if isinstance(bit, int) and bit not in names:
                names[bit] = f"{base}[{index}]" if wide else base

    for port_name, port in module.get("ports", {}).items():
        claim(str(port_name), _port_bits(port_name, port))
    for net_name, net in module.get("netnames", {}).items():
        if str(net_name).startswith("$"):
            continue
        bits = net.get("bits")
        if isinstance(bits, list):
            claim(str(net_name), bits)
    return names


def _port_bits(port_name: Any, port: Any) -> List[Any]:
    if not isinstance(port, Mapping) or not isinstance(port.get("bits"), list):
        raise YosysFormatError(f"port {port_name!r} has no 'bits' list")
    return port["bits"]


class _Importer:
    def __init__(
        self,
        name: str,
        module: Mapping[str, Any],
        library: Optional[CellLibrary],
    ) -> None:
        self.module = module
        self.netlist = Netlist(name, library=library)
        self.bit_names = _bit_name_map(module)
        self.const_nets: Dict[str, str] = {}

    def _net_of(self, bit: Any, context: str) -> str:
        if isinstance(bit, int):
            return self.bit_names.get(bit, f"_bit{bit}_")
        if bit in ("0", "1"):
            return self._const_net(bit)
        raise YosysFormatError(
            f"{context}: bit value {bit!r} is not supported (two-valued "
            f"simulation has no x/z)"
        )

    def _const_net(self, value: str) -> str:
        if value not in self.const_nets:
            net = f"_const{value}_"
            cell = "TIEHI" if value == "1" else "TIELO"
            self.netlist.add_instance(cell, f"_tie{value}_", {"Y": net})
            self.const_nets[value] = net
        return self.const_nets[value]

    def run(self) -> Netlist:
        out_ports = self._declare_inputs()
        self._build_cells()
        self._declare_outputs(out_ports)
        self._apply_init_attributes()
        return self.netlist

    # ------------------------------------------------------------------
    def _declare_inputs(self) -> List[Tuple[str, Any]]:
        in_ports: List[Tuple[str, Any]] = []
        out_ports: List[Tuple[str, Any]] = []
        for port_name, port in self.module.get("ports", {}).items():
            direction = port.get("direction")
            bits = _port_bits(port_name, port)
            if direction == "input":
                in_ports.append((str(port_name), bits))
            elif direction == "output":
                out_ports.append((str(port_name), bits))
            else:
                raise YosysFormatError(
                    f"port {port_name!r} has unsupported direction "
                    f"{direction!r} (inout ports cannot be simulated)"
                )
        for port_name, bits in in_ports:
            for index, bit in enumerate(bits):
                if not isinstance(bit, int):
                    raise YosysFormatError(
                        f"input port {port_name!r} bit {index} is the "
                        f"constant {bit!r}; inputs must be real nets"
                    )
                self.netlist.add_input(self._net_of(bit, f"port {port_name}"))
        return out_ports

    def _build_cells(self) -> None:
        cells = self.module.get("cells", {})
        if not isinstance(cells, Mapping):
            raise YosysFormatError("'cells' must be an object")
        unsupported = sorted(
            {
                str(cell.get("type"))
                for cell in cells.values()
                if isinstance(cell, Mapping)
                and str(cell.get("type")) not in CELL_MAP
            }
        )
        if unsupported:
            raise UnsupportedCellError(
                f"design uses unmapped Yosys cell type(s) {unsupported}; "
                f"supported types: {sorted(CELL_MAP)} (lower word-level "
                f"cells with 'techmap; simplemap; abc' first)",
                cell_type=unsupported[0],
            )
        for cell_name, cell in cells.items():
            if not isinstance(cell, Mapping):
                raise YosysFormatError(f"cell {cell_name!r} is not an object")
            lib_cell, pin_map = CELL_MAP[str(cell.get("type"))]
            raw = cell.get("connections")
            if not isinstance(raw, Mapping):
                raise YosysFormatError(
                    f"cell {cell_name!r} has no 'connections' object"
                )
            connections: Dict[str, str] = {}
            for yosys_pin, lib_pin in pin_map.items():
                bits = raw.get(yosys_pin)
                if not isinstance(bits, list) or len(bits) != 1:
                    raise YosysFormatError(
                        f"cell {cell_name!r} pin {yosys_pin!r} must be a "
                        f"single-bit connection, got {bits!r}"
                    )
                bit = bits[0]
                if lib_pin in _OUTPUT_PINS and not isinstance(bit, int):
                    raise YosysFormatError(
                        f"cell {cell_name!r} output pin {yosys_pin!r} is "
                        f"connected to the constant {bit!r}"
                    )
                connections[lib_pin] = self._net_of(
                    bit, f"cell {cell_name} pin {yosys_pin}"
                )
            self.netlist.add_instance(lib_cell, str(cell_name), connections)

    def _declare_outputs(self, out_ports: List[Tuple[str, Any]]) -> None:
        for port_name, bits in out_ports:
            wide = len(bits) > 1
            for index, bit in enumerate(bits):
                wanted = f"{port_name}[{index}]" if wide else port_name
                actual = self._net_of(bit, f"port {port_name}")
                if actual != wanted:
                    # The port aliases another net (an input feed-through,
                    # a constant, or a bit already claimed by another
                    # port): buffer it onto a net carrying the port name.
                    self.netlist.add_instance(
                        "BUF", f"{wanted}_port_buf", {"A": actual, "Y": wanted}
                    )
                self.netlist.add_output(wanted)

    def _apply_init_attributes(self) -> None:
        for net_name, net in self.module.get("netnames", {}).items():
            if not isinstance(net, Mapping):
                continue
            init = net.get("attributes", {}).get("init")
            if init is None:
                continue
            bits = net.get("bits")
            if not isinstance(bits, list):
                continue
            init_str = self._init_string(net_name, init, len(bits))
            for index, bit in enumerate(bits):
                # Yosys writes init MSB-first; bits lists are LSB-first.
                char = init_str[len(bits) - 1 - index]
                if char not in "01" or not isinstance(bit, int):
                    continue
                net_ref = self.netlist.nets.get(self._net_of(bit, "init"))
                if net_ref is None or net_ref.driver is None:
                    continue
                driver_name, _ = net_ref.driver
                if driver_name == PORT:
                    continue
                inst = self.netlist.instances[driver_name]
                if inst.cell.is_sequential:
                    self.netlist.set_initial_value(driver_name, int(char))

    @staticmethod
    def _init_string(net_name: Any, init: Any, width: int) -> str:
        if isinstance(init, int):
            text = format(init, "b")
        else:
            text = str(init)
        if any(c not in "01x" for c in text):
            raise YosysFormatError(
                f"net {net_name!r} has unparseable init attribute {init!r}"
            )
        return text.rjust(width, "x")[-width:]


def _import_module(
    name: str, module: Mapping[str, Any], library: Optional[CellLibrary]
) -> Netlist:
    if not isinstance(module, Mapping):
        raise YosysFormatError(f"module {name!r} is not an object")
    return _Importer(name, module, library).run()
