"""Vectorized testbench restructure / load / readback pipeline (Fig. 5).

The GATSPI application phases around the kernel — slicing every source
waveform into cycle-parallel windows, loading the slices into the device
memory pool, and stitching per-window outputs back into full-run waveforms —
used to be per-``(net, window)`` Python loops over :class:`Waveform`
objects.  After the level-batched vector kernel (PR 2) they became the
dominant non-kernel cost.  This module keeps every one of those phases in
bulk array form:

* :func:`lower_stimulus` flattens the stimulus once per run into one
  concatenated event tensor (toggle times, per-net offsets, initial values).
* :func:`slice_windows` computes every ``(net, window)`` slice bound with
  two ``searchsorted`` calls over the whole tensor — no per-window copies.
  The slices feed :meth:`~repro.core.memory.WaveformPool.load_windows`,
  which writes all windows of a batch with a handful of numpy scatters.
* :func:`trim_readback` trims every stored output window to its
  ``[start, end)`` range (dropping the settle margin and the propagation
  tail) in one segmented ``searchsorted`` pass.
* :func:`stitch_windows` reassembles the full-run waveform of a net from
  its trimmed windows, reproducing the engine's sequential seam rules
  bit-exactly (a numpy fast path covers the common seam-consistent case).

Everything here is bit-identical to the per-object reference pipeline,
which stays reachable via ``SimConfig(restructure="python")`` exactly as
``kernel="scalar"`` keeps the scalar kernel as the execution oracle.

Segmented ``searchsorted``
--------------------------

Several phases need, for *each* of ``T`` independently-sorted segments
packed in one flat buffer, the number of elements below a per-segment
threshold.  Every timestamp is in ``[0, EOW)``, so shifting segment ``k``
(values and threshold alike) by ``k * S`` — with a stride ``S`` exceeding
both ``EOW`` and every threshold, since thresholds may be *absolute* times
past ``EOW`` on runs longer than the sentinel — makes the flat buffer
globally sorted and keeps every query inside its own segment's band; a
single ``searchsorted`` then answers all ``T`` queries at once.  ``int64``
gives this trick headroom for billions of segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .waveform import EOW, INITIAL_ONE_MARKER, POOL_DTYPE, Waveform, WaveformError


# ----------------------------------------------------------------------
# Lowered stimulus event tensors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceEvents:
    """The whole stimulus lowered to one flat event tensor.

    ``times`` concatenates every source net's *real* toggle times (the
    establishing entry of each waveform is not a transition); net ``i``
    owns ``times[offsets[i]:offsets[i+1]]``, sorted ascending.  Built once
    per run and reused by every pool-overflow segment batch.
    """

    nets: Tuple[str, ...]
    times: np.ndarray  # flat int64 toggle times, per-net sorted
    offsets: np.ndarray  # (N+1,) int64 prefix offsets into times
    initial_values: np.ndarray  # (N,) int64 in {0, 1}

    @property
    def net_count(self) -> int:
        return len(self.nets)


def lower_stimulus(
    nets: Sequence[str], stimulus: Mapping[str, Waveform]
) -> SourceEvents:
    """Flatten ``stimulus`` into one :class:`SourceEvents` tensor."""
    nets = tuple(nets)
    chunks: List[np.ndarray] = []
    offsets = np.zeros(len(nets) + 1, dtype=np.int64)
    initial_values = np.zeros(len(nets), dtype=np.int64)
    for i, net in enumerate(nets):
        wave = stimulus[net]
        toggles = wave.timestamps[1:]  # skip the establishing entry
        chunks.append(toggles)
        offsets[i + 1] = offsets[i] + toggles.size
        initial_values[i] = wave.initial_value
    times = (
        np.concatenate(chunks) if chunks else np.zeros(0, dtype=POOL_DTYPE)
    )
    return SourceEvents(
        nets=nets, times=times, offsets=offsets, initial_values=initial_values
    )


@dataclass(frozen=True)
class WindowSlices:
    """Per-``(net, window)`` slice bounds into a :class:`SourceEvents` tensor.

    All arrays are ``(N, W)``: ``starts`` indexes ``SourceEvents.times``,
    ``counts`` is the number of toggles strictly inside the extended
    window, and ``initial_values`` is the logic value each sliced waveform
    establishes at its (extended) window start.
    """

    starts: np.ndarray
    counts: np.ndarray
    initial_values: np.ndarray


def slice_windows(
    events: SourceEvents,
    window_starts: np.ndarray,
    window_ends: np.ndarray,
) -> WindowSlices:
    """Slice every source net into every window, without copying events.

    ``window_starts`` are the margin-extended starts; a slice establishes
    ``value_at(start)`` and contains the toggles with ``start < t < end``
    — exactly :meth:`Waveform.window`'s contract, computed for all
    ``N * W`` pairs with two ``searchsorted`` calls.
    """
    N = events.net_count
    starts = np.ascontiguousarray(window_starts, dtype=np.int64)
    ends = np.ascontiguousarray(window_ends, dtype=np.int64)
    seg_base = events.offsets[:-1][:, None]
    counts_per_net = np.diff(events.offsets)
    rows = np.repeat(np.arange(N, dtype=np.int64), counts_per_net)
    # Window bounds are absolute times and may exceed EOW on runs longer
    # than the sentinel (event *times* never do); the stride must cover
    # the largest query so no query escapes its segment's band.
    stride = _segment_stride(ends)
    if N * stride < _SHIFT_OVERFLOW_GUARD:
        shifted = events.times + rows * stride
        shift = np.arange(N, dtype=np.int64)[:, None] * stride
        lo = (
            np.searchsorted(shifted, starts[None, :] + shift, side="right")
            - seg_base
        )
        hi = (
            np.searchsorted(shifted, ends[None, :] + shift, side="left")
            - seg_base
        )
    else:
        # Degenerate horizon (duration ~2**62 time units): shift arithmetic
        # would overflow int64, so fall back to one searchsorted per net.
        lo = np.empty((N, starts.size), dtype=np.int64)
        hi = np.empty((N, ends.size), dtype=np.int64)
        for i in range(N):
            net_times = events.times[events.offsets[i] : events.offsets[i + 1]]
            lo[i] = np.searchsorted(net_times, starts, side="right")
            hi[i] = np.searchsorted(net_times, ends, side="left")
    initial = events.initial_values[:, None] ^ (lo & 1)
    return WindowSlices(
        starts=seg_base + lo, counts=hi - lo, initial_values=initial
    )


# ----------------------------------------------------------------------
# Segmented gather / trim helpers (readback path)
# ----------------------------------------------------------------------
#: Ceiling for ``segments * stride`` so the shifted buffers stay in int64.
_SHIFT_OVERFLOW_GUARD = 1 << 62


def _segment_stride(thresholds: np.ndarray) -> int:
    """Per-segment shift stride covering every value (< ``EOW``) and query."""
    if thresholds.size == 0:
        return EOW
    return max(EOW, int(thresholds.max()) + 1)


def gather_segments(
    buffer: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``buffer[starts[k] : starts[k] + counts[k]]`` for all k."""
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=buffer.dtype)
    ramp = np.arange(total, dtype=np.int64)
    seg_base = np.cumsum(counts) - counts
    ramp -= np.repeat(seg_base, counts)
    return buffer[np.repeat(np.ascontiguousarray(starts, dtype=np.int64), counts) + ramp]


def segmented_counts(
    values: np.ndarray,
    seg_offsets: np.ndarray,
    thresholds: np.ndarray,
    side: str,
) -> np.ndarray:
    """Per-segment ``searchsorted`` over one flat buffer.

    ``values`` holds ``T`` independently sorted segments (segment ``k`` is
    ``values[seg_offsets[k]:seg_offsets[k+1]]``), every element in
    ``[0, EOW)``.  Returns, for each segment, the number of its elements
    ``<= thresholds[k]`` (``side="right"``) or ``< thresholds[k]``
    (``side="left"``), using the per-segment shift trick from the module
    docstring.
    """
    T = thresholds.size
    counts = np.diff(seg_offsets)
    stride = _segment_stride(thresholds)
    if T * stride >= _SHIFT_OVERFLOW_GUARD:
        # Degenerate horizon: shift arithmetic would overflow int64.
        return np.asarray(
            [
                np.searchsorted(
                    values[seg_offsets[k] : seg_offsets[k + 1]],
                    thresholds[k],
                    side=side,
                )
                for k in range(T)
            ],
            dtype=np.int64,
        )
    rows = np.repeat(np.arange(T, dtype=np.int64), counts)
    shifted = values + rows * stride
    queries = thresholds + np.arange(T, dtype=np.int64) * stride
    return np.searchsorted(shifted, queries, side=side) - seg_offsets[:-1]


@dataclass(frozen=True)
class TrimmedReadback:
    """Output windows of one batch, trimmed and lifted to absolute time.

    Tasks are net-major (``task = net * B + window``, ``B`` windows in the
    batch).  ``times`` is flat in task order; window ``b`` of net ``n``
    owns ``counts[n, b]`` entries.  ``establish_values`` is the logic value
    each trimmed window establishes at its window start.
    """

    establish_values: np.ndarray  # (N, B)
    counts: np.ndarray  # (N, B)
    times: np.ndarray  # flat int64, absolute time


def trim_readback(
    local_times: np.ndarray,
    task_offsets: np.ndarray,
    initial_values: np.ndarray,
    margins: np.ndarray,
    right_edges: np.ndarray,
    apply_trim: np.ndarray,
    absolute_offsets: np.ndarray,
    net_count: int,
    window_count: int,
) -> TrimmedReadback:
    """Trim every stored output window to its ``[start, end)`` range.

    ``local_times`` concatenates the stored (window-local) toggle times of
    all ``T = net_count * window_count`` tasks (net-major); per task,
    trimming keeps the toggles strictly inside ``(margin, right_edge)`` —
    dropping the settle margin on the left and the propagation tail on the
    right — unless ``apply_trim`` is false (final window / no overlap), in
    which case the window is kept whole, exactly as the reference readback
    does.  ``margins``/``right_edges``/``apply_trim`` are per task;
    ``absolute_offsets`` (the extended window starts, one per window)
    lifts kept times to absolute time.
    """
    toggle_counts = np.diff(task_offsets)
    if net_count == 0 or window_count == 0:
        return TrimmedReadback(
            establish_values=np.zeros((net_count, window_count), dtype=np.int64),
            counts=np.zeros((net_count, window_count), dtype=np.int64),
            times=np.zeros(0, dtype=np.int64),
        )
    lcnt = segmented_counts(local_times, task_offsets, margins, side="right")
    rcnt = segmented_counts(local_times, task_offsets, right_edges, side="left")
    lcnt = np.where(apply_trim, lcnt, 0)
    rcnt = np.where(apply_trim, rcnt, toggle_counts)
    kept = rcnt - lcnt
    establish = (initial_values ^ (lcnt & 1)).reshape(net_count, window_count)
    times = gather_segments(local_times, task_offsets[:-1] + lcnt, kept)
    per_task_offset = np.broadcast_to(
        absolute_offsets, (net_count, window_count)
    ).ravel()
    times = times + np.repeat(per_task_offset, kept)
    return TrimmedReadback(
        establish_values=establish,
        counts=kept.reshape(net_count, window_count),
        times=times,
    )


# ----------------------------------------------------------------------
# Stitching (vectorized inverse of the restructure step)
# ----------------------------------------------------------------------
def _waveform_from_times(first_value: int, times: np.ndarray) -> Waveform:
    """Build a waveform whose change times are ``times`` (first establishes)."""
    data = np.empty(times.size + 1 + (1 if first_value else 0), dtype=POOL_DTYPE)
    cursor = 0
    if first_value:
        data[0] = INITIAL_ONE_MARKER
        cursor = 1
    data[cursor : cursor + times.size] = times
    data[-1] = EOW
    data.setflags(write=False)
    return Waveform(data)


def stitch_windows(
    window_starts: np.ndarray,
    establish_values: np.ndarray,
    toggle_counts: np.ndarray,
    times: np.ndarray,
) -> Waveform:
    """Stitch trimmed per-window outputs back into one full-run waveform.

    Reproduces the engine's sequential seam rules bit-exactly: a change is
    dropped when it repeats the last kept value, or when its time does not
    advance past the last kept change (a window-boundary artefact).  The
    common case — every window establishes exactly the value its
    predecessor ended on and times strictly advance across seams — is
    recognised with three numpy comparisons and handled without any
    per-window work; otherwise only each window's seam is resolved
    sequentially (never individual events).

    ``window_starts`` are the absolute establishing times (one per
    window), ``times`` the flat absolute toggle times, window-major.
    """
    W = window_starts.size
    if W == 0:
        return _waveform_from_times(0, np.zeros(1, dtype=np.int64))
    finals = establish_values ^ (toggle_counts & 1)
    seam_consistent = bool(
        np.array_equal(establish_values[1:], finals[:-1])
        and (
            times.size == 0
            or (
                times[0] > window_starts[0]
                and bool(np.all(np.diff(times) > 0))
            )
        )
    )
    if seam_consistent:
        # Every non-first establishing entry repeats its predecessor's
        # final value (dropped by the value rule); all toggles advance.
        all_times = np.empty(times.size + 1, dtype=np.int64)
        all_times[0] = window_starts[0]
        all_times[1:] = times
        return _waveform_from_times(int(establish_values[0]), all_times)

    pieces: List[np.ndarray] = []
    last_time = 0
    last_value = -1  # no change kept yet
    offset = 0
    for w in range(W):
        count = int(toggle_counts[w])
        seg = times[offset : offset + count]
        offset += count
        t0 = int(window_starts[w])
        v0 = int(establish_values[w])
        if last_value < 0 or (v0 != last_value and t0 > last_time):
            # The establishing entry is kept; the window's own toggles
            # alternate from it with increasing times, so all follow.
            pieces.append(np.asarray([t0], dtype=np.int64))
            pieces.append(seg)
        else:
            # The establishing entry is dropped (same value, or a seam
            # artefact at or before the last kept change).  The first
            # surviving toggle is the first one past the last kept time
            # whose value differs from the last kept value; values
            # alternate, so it is that index or the one after.
            i = int(np.searchsorted(seg, last_time, side="right"))
            if i < count and (v0 ^ ((i + 1) & 1)) == last_value:
                i += 1
            if i >= count:
                continue
            pieces.append(seg[i:])
        last_time = int(seg[-1]) if count else t0
        last_value = v0 ^ (count & 1)
    # Window 0 always keeps its establishing entry, so pieces is non-empty
    # and the stitched waveform establishes window 0's value.
    return _waveform_from_times(int(establish_values[0]), np.concatenate(pieces))


# ----------------------------------------------------------------------
# Whole-stimulus slicing (multi-device share distribution)
# ----------------------------------------------------------------------
def slice_stimulus(
    stimulus: Mapping[str, Waveform], t_start: int, t_end: int
) -> Dict[str, Waveform]:
    """Vectorized ``{net: wave.window(t_start, t_end, rebase=True)}``.

    Used by the multi-device distributor to carve each device's share of
    the testbench without per-event Python loops; bit-identical to calling
    :meth:`Waveform.window` per net.
    """
    if t_end <= t_start:
        raise WaveformError("window end must be after window start")
    sliced: Dict[str, Waveform] = {}
    for net, wave in stimulus.items():
        toggles = wave.timestamps[1:]
        lo = int(np.searchsorted(toggles, t_start, side="right"))
        hi = int(np.searchsorted(toggles, t_end, side="left"))
        initial = wave.initial_value ^ (lo & 1)
        sliced[net] = Waveform.from_toggle_array(initial, toggles[lo:hi] - t_start)
    return sliced
