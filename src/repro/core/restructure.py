"""Vectorized testbench restructure / load / readback pipeline (Fig. 5).

The GATSPI application phases around the kernel — slicing every source
waveform into cycle-parallel windows, loading the slices into the device
memory pool, and stitching per-window outputs back into full-run waveforms —
used to be per-``(net, window)`` Python loops over :class:`Waveform`
objects.  After the level-batched vector kernel (PR 2) they became the
dominant non-kernel cost.  This module keeps every one of those phases in
bulk array form:

* :func:`lower_stimulus` flattens the stimulus once per run into one
  concatenated event tensor (toggle times, per-net offsets, initial values)
  on the host; :meth:`SourceEvents.to_device` then moves it to the
  configured array backend — the *single* host→device transfer of the
  stimulus path.
* :func:`slice_windows` computes every ``(net, window)`` slice bound with
  two ``searchsorted`` calls over the whole tensor — no per-window copies.
  The slices feed :meth:`~repro.core.memory.WaveformPool.load_windows`,
  which writes all windows of a batch with a handful of scatters.
* :func:`trim_readback` trims every stored output window to its
  ``[start, end)`` range (dropping the settle margin and the propagation
  tail) in one segmented ``searchsorted`` pass; its result is moved back to
  the host in one step (:meth:`TrimmedReadback.to_host`) — the single
  device→host transfer of the readback path.
* :func:`stitch_windows` reassembles the full-run waveform of a net from
  its trimmed windows, reproducing the engine's sequential seam rules
  bit-exactly (an array fast path covers the common seam-consistent case).
  Stitching consumes host arrays, so it always runs on the numpy backend.

Every device-side function takes the array backend as an ``xp`` parameter
(:mod:`repro.core.xp`), defaulting to the host numpy backend — whose
operations *are* the numpy functions, so the default path is bit-identical
to the pre-xp pipeline.  The per-object reference pipeline stays reachable
via ``SimConfig(restructure="python")`` exactly as ``kernel="scalar"``
keeps the scalar kernel as the execution oracle.

Segmented ``searchsorted``
--------------------------

Several phases need, for *each* of ``T`` independently-sorted segments
packed in one flat buffer, the number of elements below a per-segment
threshold.  Every timestamp is in ``[0, EOW)``, so shifting segment ``k``
(values and threshold alike) by ``k * S`` — with a stride ``S`` exceeding
both ``EOW`` and every threshold, since thresholds may be *absolute* times
past ``EOW`` on runs longer than the sentinel — makes the flat buffer
globally sorted and keeps every query inside its own segment's band; a
single ``searchsorted`` then answers all ``T`` queries at once.  ``int64``
gives this trick headroom for billions of segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from .waveform import EOW, INITIAL_ONE_MARKER, POOL_DTYPE, Waveform, WaveformError
from .xp import HOST, ArrayBackend, is_host


# ----------------------------------------------------------------------
# Lowered stimulus event tensors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceEvents:
    """The whole stimulus lowered to one flat event tensor.

    ``times`` concatenates every source net's *real* toggle times (the
    establishing entry of each waveform is not a transition); net ``i``
    owns ``times[offsets[i]:offsets[i+1]]``, sorted ascending.  Built once
    per run and reused by every pool-overflow segment batch.  ``device``
    names the array backend the tensors live on.
    """

    nets: Tuple[str, ...]
    times: "object"  # flat int64 toggle times, per-net sorted
    offsets: "object"  # (N+1,) int64 prefix offsets into times
    initial_values: "object"  # (N,) int64 in {0, 1}
    device: str = "numpy"

    @property
    def net_count(self) -> int:
        return len(self.nets)

    def to_device(self, xp: ArrayBackend) -> "SourceEvents":
        """Move the event tensors to ``xp`` (identity for numpy).

        This is the stimulus path's one host→device transfer point: every
        segment batch afterwards slices the same device tensors.
        """
        if is_host(xp):
            return self
        return SourceEvents(
            nets=self.nets,
            times=xp.asarray(self.times, xp.int64),
            offsets=xp.asarray(self.offsets, xp.int64),
            initial_values=xp.asarray(self.initial_values, xp.int64),
            device=xp.name,
        )


class StreamingSourceEvents:
    """Produces the stimulus one window-span at a time.

    The out-of-core replay pipeline never lowers the whole run; instead it
    asks a stream for the events of each chunk's extended time span and
    feeds the resulting :class:`SourceEvents` straight into
    :func:`slice_windows`.  Implementations must honour the span contract:

    * ``span_events(start, end)`` returns the toggles with
      ``start < t < end`` in *absolute* time, per net, with
      ``initial_values`` holding each net's logic value at ``start`` —
      exactly :meth:`Waveform.window`'s establishment rule, so
      :func:`slice_windows` over the span (with window bounds inside
      ``[start, end]``) is bit-identical to slicing the whole-run tensor.
    * Spans advance monotonically: ``start`` never precedes an earlier
      call's ``retire_before``.  Passing ``retire_before`` tells the
      stream no later span will start before that time, allowing it to
      fold older toggles into its base values and free them — this is
      what bounds memory to O(span + lookback).

    Concrete producers: :class:`WaveformEventStream` (in-memory stimulus)
    and :class:`repro.waveforms.vcd.VcdEventStream` (incremental VCD).
    """

    @property
    def nets(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def span_events(
        self, start: int, end: int, retire_before: int = 0
    ) -> SourceEvents:
        raise NotImplementedError


class WaveformEventStream(StreamingSourceEvents):
    """Window-span producer over an in-memory stimulus mapping.

    Lowers the stimulus once (it is already resident) and answers spans
    with two segmented ``searchsorted`` calls — the streaming counterpart
    of handing :func:`lower_stimulus`'s tensor to :func:`slice_windows`
    directly.  Useful for driving the streaming execution path from
    ordinary stimulus dicts (tests, benches, differential harnesses).
    """

    def __init__(
        self, nets: Sequence[str], stimulus: Mapping[str, Waveform]
    ) -> None:
        self._events = lower_stimulus(nets, stimulus)

    @property
    def nets(self) -> Tuple[str, ...]:
        return self._events.nets

    def span_events(
        self, start: int, end: int, retire_before: int = 0
    ) -> SourceEvents:
        if end <= start:
            raise ValueError("span end must be after span start")
        hnp = HOST
        events = self._events
        N = events.net_count
        thresholds_lo = hnp.full(N, start, dtype=hnp.int64)
        thresholds_hi = hnp.full(N, end - 1, dtype=hnp.int64)
        lo = segmented_counts(
            events.times, events.offsets, thresholds_lo, side="right"
        )
        hi = segmented_counts(
            events.times, events.offsets, thresholds_hi, side="right"
        )
        counts = hi - lo
        initial = events.initial_values ^ (lo & 1)
        times = gather_segments(events.times, events.offsets[:-1] + lo, counts)
        offsets = hnp.zeros(N + 1, dtype=hnp.int64)
        offsets[1:] = hnp.cumsum(counts)
        return SourceEvents(
            nets=events.nets,
            times=times,
            offsets=offsets,
            initial_values=initial,
        )


def lower_stimulus(
    nets: Sequence[str], stimulus: Mapping[str, Waveform]
) -> SourceEvents:
    """Flatten ``stimulus`` into one host-side :class:`SourceEvents` tensor."""
    hnp = HOST
    nets = tuple(nets)
    chunks: List = []
    offsets = hnp.zeros(len(nets) + 1, dtype=hnp.int64)
    initial_values = hnp.zeros(len(nets), dtype=hnp.int64)
    for i, net in enumerate(nets):
        wave = stimulus[net]
        toggles = wave.timestamps[1:]  # skip the establishing entry
        chunks.append(toggles)
        offsets[i + 1] = offsets[i] + toggles.size
        initial_values[i] = wave.initial_value
    times = (
        hnp.concatenate(chunks) if chunks else hnp.zeros(0, dtype=POOL_DTYPE)
    )
    return SourceEvents(
        nets=nets, times=times, offsets=offsets, initial_values=initial_values
    )


@dataclass(frozen=True)
class WindowSlices:
    """Per-``(net, window)`` slice bounds into a :class:`SourceEvents` tensor.

    All arrays are ``(N, W)``: ``starts`` indexes ``SourceEvents.times``,
    ``counts`` is the number of toggles strictly inside the extended
    window, and ``initial_values`` is the logic value each sliced waveform
    establishes at its (extended) window start.
    """

    starts: "object"
    counts: "object"
    initial_values: "object"


def slice_windows(
    events: SourceEvents,
    window_starts,
    window_ends,
    xp: ArrayBackend = HOST,
) -> WindowSlices:
    """Slice every source net into every window, without copying events.

    ``window_starts`` are the margin-extended starts; a slice establishes
    ``value_at(start)`` and contains the toggles with ``start < t < end``
    — exactly :meth:`Waveform.window`'s contract, computed for all
    ``N * W`` pairs with two ``searchsorted`` calls on ``xp``.
    """
    N = events.net_count
    starts = xp.ascontiguousarray(window_starts, xp.int64)
    ends = xp.ascontiguousarray(window_ends, xp.int64)
    seg_base = events.offsets[:-1][:, None]
    counts_per_net = xp.diff(events.offsets)
    # Window bounds are absolute times and may exceed EOW on runs longer
    # than the sentinel (event *times* never do); the stride must cover
    # the largest query so no query escapes its segment's band.
    stride = _segment_stride(ends, xp)
    if N * stride < _SHIFT_OVERFLOW_GUARD:
        rows = xp.repeat(xp.arange(N, dtype=xp.int64), counts_per_net)
        shifted = events.times + rows * stride
        shift = xp.arange(N, dtype=xp.int64)[:, None] * stride
        lo = (
            xp.searchsorted(shifted, starts[None, :] + shift, side="right")
            - seg_base
        )
        hi = (
            xp.searchsorted(shifted, ends[None, :] + shift, side="left")
            - seg_base
        )
    else:
        # Degenerate horizon (duration ~2**62 time units): shift arithmetic
        # would overflow int64, so fall back to one searchsorted per net.
        W = xp.size(starts)
        lo = xp.empty((N, W), dtype=xp.int64)
        hi = xp.empty((N, W), dtype=xp.int64)
        for i in range(N):
            net_times = events.times[
                int(events.offsets[i]) : int(events.offsets[i + 1])
            ]
            lo[i] = xp.searchsorted(net_times, starts, side="right")
            hi[i] = xp.searchsorted(net_times, ends, side="left")
    initial = events.initial_values[:, None] ^ (lo & 1)
    return WindowSlices(
        starts=seg_base + lo, counts=hi - lo, initial_values=initial
    )


# ----------------------------------------------------------------------
# Segmented gather / trim helpers (readback path)
# ----------------------------------------------------------------------
#: Ceiling for ``segments * stride`` so the shifted buffers stay in int64.
_SHIFT_OVERFLOW_GUARD = 1 << 62


def _segment_stride(thresholds, xp: ArrayBackend = HOST) -> int:
    """Per-segment shift stride covering every value (< ``EOW``) and query."""
    if xp.size(thresholds) == 0:
        return EOW
    return max(EOW, int(xp.max(thresholds)) + 1)


def gather_segments(buffer, starts, counts, xp: ArrayBackend = HOST):
    """Concatenate ``buffer[starts[k] : starts[k] + counts[k]]`` for all k."""
    counts = xp.ascontiguousarray(counts, xp.int64)
    total = int(xp.sum(counts))
    if total == 0:
        return buffer[:0]
    ramp = xp.arange(total, dtype=xp.int64)
    seg_base = xp.cumsum(counts) - counts
    ramp -= xp.repeat(seg_base, counts)
    return buffer[xp.repeat(xp.ascontiguousarray(starts, xp.int64), counts) + ramp]


def segmented_counts(
    values,
    seg_offsets,
    thresholds,
    side: str,
    xp: ArrayBackend = HOST,
):
    """Per-segment ``searchsorted`` over one flat buffer.

    ``values`` holds ``T`` independently sorted segments (segment ``k`` is
    ``values[seg_offsets[k]:seg_offsets[k+1]]``), every element in
    ``[0, EOW)``.  Returns, for each segment, the number of its elements
    ``<= thresholds[k]`` (``side="right"``) or ``< thresholds[k]``
    (``side="left"``), using the per-segment shift trick from the module
    docstring.
    """
    T = xp.size(thresholds)
    counts = xp.diff(seg_offsets)
    stride = _segment_stride(thresholds, xp)
    if T * stride >= _SHIFT_OVERFLOW_GUARD:
        # Degenerate horizon: shift arithmetic would overflow int64.
        return xp.asarray(
            [
                int(
                    xp.searchsorted(
                        values[int(seg_offsets[k]) : int(seg_offsets[k + 1])],
                        int(thresholds[k]),
                        side=side,
                    )
                )
                for k in range(T)
            ],
            dtype=xp.int64,
        )
    rows = xp.repeat(xp.arange(T, dtype=xp.int64), counts)
    shifted = values + rows * stride
    queries = thresholds + xp.arange(T, dtype=xp.int64) * stride
    return xp.searchsorted(shifted, queries, side=side) - seg_offsets[:-1]


@dataclass(frozen=True)
class TrimmedReadback:
    """Output windows of one batch, trimmed and lifted to absolute time.

    Tasks are net-major (``task = net * B + window``, ``B`` windows in the
    batch).  ``times`` is flat in task order; window ``b`` of net ``n``
    owns ``counts[n, b]`` entries.  ``establish_values`` is the logic value
    each trimmed window establishes at its window start.
    """

    establish_values: "object"  # (N, B)
    counts: "object"  # (N, B)
    times: "object"  # flat int64, absolute time

    def to_host(self, xp: ArrayBackend) -> "TrimmedReadback":
        """Move the trimmed batch to host numpy arrays.

        This is the readback path's one device→host transfer point; result
        accumulation and stitching run on the host afterwards.
        """
        if is_host(xp):
            return self
        return TrimmedReadback(
            establish_values=xp.to_host(self.establish_values),
            counts=xp.to_host(self.counts),
            times=xp.to_host(self.times),
        )


def trim_readback(
    local_times,
    task_offsets,
    initial_values,
    margins,
    right_edges,
    apply_trim,
    absolute_offsets,
    net_count: int,
    window_count: int,
    xp: ArrayBackend = HOST,
) -> TrimmedReadback:
    """Trim every stored output window to its ``[start, end)`` range.

    ``local_times`` concatenates the stored (window-local) toggle times of
    all ``T = net_count * window_count`` tasks (net-major); per task,
    trimming keeps the toggles strictly inside ``(margin, right_edge)`` —
    dropping the settle margin on the left and the propagation tail on the
    right — unless ``apply_trim`` is false (final window / no overlap), in
    which case the window is kept whole, exactly as the reference readback
    does.  ``margins``/``right_edges``/``apply_trim`` are per task;
    ``absolute_offsets`` (the extended window starts, one per window)
    lifts kept times to absolute time.
    """
    toggle_counts = xp.diff(task_offsets)
    if net_count == 0 or window_count == 0:
        return TrimmedReadback(
            establish_values=xp.zeros((net_count, window_count), dtype=xp.int64),
            counts=xp.zeros((net_count, window_count), dtype=xp.int64),
            times=xp.zeros(0, dtype=xp.int64),
        )
    lcnt = segmented_counts(local_times, task_offsets, margins, side="right", xp=xp)
    rcnt = segmented_counts(local_times, task_offsets, right_edges, side="left", xp=xp)
    lcnt = xp.where(apply_trim, lcnt, 0)
    rcnt = xp.where(apply_trim, rcnt, toggle_counts)
    kept = rcnt - lcnt
    establish = (initial_values ^ (lcnt & 1)).reshape(net_count, window_count)
    times = gather_segments(local_times, task_offsets[:-1] + lcnt, kept, xp=xp)
    per_task_offset = xp.broadcast_to(
        absolute_offsets, (net_count, window_count)
    ).ravel()
    times = times + xp.repeat(per_task_offset, kept)
    return TrimmedReadback(
        establish_values=establish,
        counts=kept.reshape(net_count, window_count),
        times=times,
    )


# ----------------------------------------------------------------------
# Stitching (vectorized inverse of the restructure step)
# ----------------------------------------------------------------------
def _waveform_from_times(first_value: int, times) -> Waveform:
    """Build a waveform whose change times are ``times`` (first establishes)."""
    hnp = HOST
    data = hnp.empty(times.size + 1 + (1 if first_value else 0), dtype=POOL_DTYPE)
    cursor = 0
    if first_value:
        data[0] = INITIAL_ONE_MARKER
        cursor = 1
    data[cursor : cursor + times.size] = times
    data[-1] = EOW
    data.setflags(write=False)
    return Waveform(data)


def stitch_windows(
    window_starts,
    establish_values,
    toggle_counts,
    times,
) -> Waveform:
    """Stitch trimmed per-window outputs back into one full-run waveform.

    Reproduces the engine's sequential seam rules bit-exactly: a change is
    dropped when it repeats the last kept value, or when its time does not
    advance past the last kept change (a window-boundary artefact).  The
    common case — every window establishes exactly the value its
    predecessor ended on and times strictly advance across seams — is
    recognised with three array comparisons and handled without any
    per-window work; otherwise only each window's seam is resolved
    sequentially (never individual events).

    ``window_starts`` are the absolute establishing times (one per
    window), ``times`` the flat absolute toggle times, window-major.
    Inputs are host arrays (readback has already crossed the device→host
    transfer point), so stitching always runs on the numpy backend.
    """
    hnp = HOST
    W = window_starts.size
    if W == 0:
        return _waveform_from_times(0, hnp.zeros(1, dtype=hnp.int64))
    finals = establish_values ^ (toggle_counts & 1)
    seam_consistent = bool(
        hnp.array_equal(establish_values[1:], finals[:-1])
        and (
            times.size == 0
            or (
                times[0] > window_starts[0]
                and bool(hnp.all(hnp.diff(times) > 0))
            )
        )
    )
    if seam_consistent:
        # Every non-first establishing entry repeats its predecessor's
        # final value (dropped by the value rule); all toggles advance.
        all_times = hnp.empty(times.size + 1, dtype=hnp.int64)
        all_times[0] = window_starts[0]
        all_times[1:] = times
        return _waveform_from_times(int(establish_values[0]), all_times)

    pieces: List = []
    last_time = 0
    last_value = -1  # no change kept yet
    offset = 0
    for w in range(W):
        count = int(toggle_counts[w])
        seg = times[offset : offset + count]
        offset += count
        t0 = int(window_starts[w])
        v0 = int(establish_values[w])
        if last_value < 0 or (v0 != last_value and t0 > last_time):
            # The establishing entry is kept; the window's own toggles
            # alternate from it with increasing times, so all follow.
            pieces.append(hnp.asarray([t0], dtype=hnp.int64))
            pieces.append(seg)
        else:
            # The establishing entry is dropped (same value, or a seam
            # artefact at or before the last kept change).  The first
            # surviving toggle is the first one past the last kept time
            # whose value differs from the last kept value; values
            # alternate, so it is that index or the one after.
            i = int(hnp.searchsorted(seg, last_time, side="right"))
            if i < count and (v0 ^ ((i + 1) & 1)) == last_value:
                i += 1
            if i >= count:
                continue
            pieces.append(seg[i:])
        last_time = int(seg[-1]) if count else t0
        last_value = v0 ^ (count & 1)
    # Window 0 always keeps its establishing entry, so pieces is non-empty
    # and the stitched waveform establishes window 0's value.
    return _waveform_from_times(int(establish_values[0]), hnp.concatenate(pieces))


# ----------------------------------------------------------------------
# Whole-stimulus slicing (multi-device share distribution)
# ----------------------------------------------------------------------
def slice_stimulus(
    stimulus: Mapping[str, Waveform], t_start: int, t_end: int
) -> Dict[str, Waveform]:
    """Vectorized ``{net: wave.window(t_start, t_end, rebase=True)}``.

    Used by the multi-device distributor to carve each device's share of
    the testbench without per-event Python loops; bit-identical to calling
    :meth:`Waveform.window` per net.  Host-side (it produces
    :class:`Waveform` objects).
    """
    hnp = HOST
    if t_end <= t_start:
        raise WaveformError("window end must be after window start")
    sliced: Dict[str, Waveform] = {}
    for net, wave in stimulus.items():
        toggles = wave.timestamps[1:]
        lo = int(hnp.searchsorted(toggles, t_start, side="right"))
        hi = int(hnp.searchsorted(toggles, t_end, side="left"))
        initial = wave.initial_value ^ (lo & 1)
        sliced[net] = Waveform.from_toggle_array(initial, toggles[lo:hi] - t_start)
    return sliced
