"""The packed register file: sequential state as flat host tensors.

The clocked update step (:mod:`repro.core.clocked`) commits every register
of a design at once, so the per-register structure — pin nets, reset/enable
semantics, clk-to-q delays, power-on state — is packed here once into
struct-of-arrays form, mirroring how :mod:`repro.core.vector_kernel` packs
the combinational design.  A :class:`RegisterFile` is frozen structural
data; the mutable state vector lives with the driver that owns the run
(:func:`RegisterFile.initial_state` hands out a fresh copy).

Latches are rejected at build time: the clocked driver models
edge-triggered capture between levelized combinational frames, and a
transparent latch has no capture edge to commit on (the ``latch-inferred``
analysis rule flags them before a run gets this far).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from ..netlist.levelize import RegisterCrossing, register_crossings
from ..netlist.netlist import Netlist, NetlistError
from .xp import HOST


class RegisterFileError(NetlistError):
    """Raised when a design's sequential elements cannot be packed."""


@dataclass(frozen=True)
class RegisterFile:
    """Struct-of-arrays view of every register in one design.

    All arrays share the register axis, ordered by instance name (the
    :func:`~repro.netlist.levelize.register_crossings` order).  Net tuples
    use ``None``-free sentinels: registers without an enable/reset pin
    carry an empty string there and are masked off by ``has_enable`` /
    ``has_reset``.
    """

    names: Tuple[str, ...]
    q_nets: Tuple[str, ...]
    d_nets: Tuple[str, ...]
    clock_nets: Tuple[str, ...]
    enable_nets: Tuple[str, ...]
    reset_nets: Tuple[str, ...]
    has_enable: Any  # (R,) bool
    has_reset: Any  # (R,) bool
    reset_async: Any  # (R,) bool
    reset_active_low: Any  # (R,) bool
    reset_values: Any  # (R,) int8
    init_values: Any  # (R,) int8
    clk_to_q_rise: Any  # (R,) int64
    clk_to_q_fall: Any  # (R,) int64

    def __len__(self) -> int:
        return len(self.names)

    def initial_state(self) -> Any:
        """A fresh mutable power-on state vector ((R,) int8)."""
        return HOST.copy(self.init_values)


def build_register_file(
    netlist: Netlist,
    crossings: Optional[Sequence[RegisterCrossing]] = None,
) -> RegisterFile:
    """Pack a design's register crossing table into a :class:`RegisterFile`."""
    if crossings is None:
        crossings = register_crossings(netlist)
    latches = [c.instance for c in crossings if c.is_latch]
    if latches:
        raise RegisterFileError(
            f"design {netlist.name!r} contains level-sensitive latches "
            f"{latches[:5]}; the clocked update step only supports "
            f"edge-triggered registers"
        )
    missing_d = [c.instance for c in crossings if c.d_net is None]
    if missing_d:
        raise RegisterFileError(
            f"sequential instance(s) {missing_d[:5]} have no data pin; "
            f"cannot build a register file"
        )
    missing_ck = [c.instance for c in crossings if c.clock_net is None]
    if missing_ck:
        raise RegisterFileError(
            f"sequential instance(s) {missing_ck[:5]} have no clock pin; "
            f"cannot build a register file"
        )
    hnp = HOST
    return RegisterFile(
        names=tuple(c.instance for c in crossings),
        q_nets=tuple(c.q_net for c in crossings),
        d_nets=tuple(c.d_net or "" for c in crossings),
        clock_nets=tuple(c.clock_net or "" for c in crossings),
        enable_nets=tuple(c.enable_net or "" for c in crossings),
        reset_nets=tuple(c.reset_net or "" for c in crossings),
        has_enable=hnp.asarray(
            [c.enable_net is not None for c in crossings], dtype=hnp.bool_
        ),
        has_reset=hnp.asarray(
            [c.reset_net is not None for c in crossings], dtype=hnp.bool_
        ),
        reset_async=hnp.asarray(
            [c.reset_async for c in crossings], dtype=hnp.bool_
        ),
        reset_active_low=hnp.asarray(
            [c.reset_active_low for c in crossings], dtype=hnp.bool_
        ),
        reset_values=hnp.asarray(
            [c.reset_value & 1 for c in crossings], dtype=hnp.int8
        ),
        init_values=hnp.asarray(
            [c.init_value & 1 for c in crossings], dtype=hnp.int8
        ),
        clk_to_q_rise=hnp.asarray(
            [int(round(c.clk_to_q_rise)) for c in crossings], dtype=hnp.int64
        ),
        clk_to_q_fall=hnp.asarray(
            [int(round(c.clk_to_q_fall)) for c in crossings], dtype=hnp.int64
        ),
    )
