"""Window-axis shard planning and result merging.

The paper's scaling story (Section 5) fans the cycle-parallel window axis
out across devices: with ``n`` GPUs the testbench is carved into ``n``
contiguous shares and each device simulates its share independently.  Two
consumers in this repository need exactly that carve-and-merge shape:

* :func:`~repro.core.multi_gpu.simulate_multi_gpu`, the modelled
  multi-device distributor (shares run back to back through one session,
  per-share runtimes feed the slowest-device-plus-overhead model);
* the ``gatspi-sharded`` backend (:mod:`repro.api.sharded`), which runs
  the shares concurrently on a worker pool and merges them into a result
  **bit-identical** to a single-session run.

This module holds the pieces both share, so the slice bounds, settle
margins, and seam rules cannot drift apart:

* :func:`plan_shards` — contiguous cover of ``[0, duration)`` with
  per-shard settle margins (the same margin the engine prepends to its
  cycle-parallel windows, clamped at the run start);
* :func:`trim_shard_waveform` — drop a share's settle margin and
  propagation tail exactly as the engine's readback trims its windows
  (the final shard keeps its tail, since nothing follows it);
* :func:`merge_shard_waveforms` — stitch trimmed per-shard waveforms into
  one full-run waveform through the engine's own seam rules
  (:func:`~repro.core.restructure.stitch_windows`);
* :func:`accumulate_toggle_counts` — the additive toggle-count merge.

Bit-identity of the sharded merge rests on the engine's windowing
invariant: with a settle margin covering the critical path (the default),
each window's — and therefore each margin-extended shard's — output over
its ``[start, end)`` range equals the true simulation waveform, so any
partition of the run reconstructs the same stitched result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .restructure import stitch_windows
from .waveform import EOW, Waveform
from .xp import HOST


@dataclass(frozen=True)
class Shard:
    """One contiguous share of the simulated horizon.

    ``[start, end)`` is the range this shard owns in the merged result;
    ``margin`` is the settle overlap *included before* ``start`` when the
    shard is simulated (clamped to 0 at the run start), so the shard's
    run covers ``[ext_start, end)`` and its outputs are exact over the
    owned range.
    """

    index: int
    start: int
    end: int
    margin: int = 0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("shard end must be after shard start")
        if self.margin < 0 or self.margin > self.start:
            raise ValueError("shard margin must be within [0, start]")

    @property
    def ext_start(self) -> int:
        """Absolute start of the simulated (margin-extended) range."""
        return self.start - self.margin

    @property
    def length(self) -> int:
        """Length of the owned ``[start, end)`` range."""
        return self.end - self.start

    @property
    def run_duration(self) -> int:
        """Duration of the shard's simulation run (margin included)."""
        return self.end - self.ext_start


def plan_shards(
    duration: int,
    max_shards: int,
    *,
    min_length: int = 1,
    overlap: int = 0,
) -> List[Shard]:
    """Carve ``[0, duration)`` into at most ``max_shards`` contiguous shards.

    Shard length is the ceiling split, floored at ``min_length`` (the
    multi-device distributor floors at one clock period so a share is
    never sub-cycle) — short horizons therefore yield *fewer* than
    ``max_shards`` shards rather than empty ones.  ``overlap`` is the
    settle margin each shard's simulation is extended backwards by,
    clamped at the run start exactly like the engine's window margins.
    """
    if max_shards < 1:
        raise ValueError("max_shards must be at least 1")
    if duration < 1:
        raise ValueError("duration must be positive")
    if min_length < 1:
        raise ValueError("min_length must be at least 1")
    if overlap < 0:
        raise ValueError("overlap must be non-negative")
    length = max(min_length, -(-duration // max_shards))
    shards: List[Shard] = []
    start = 0
    index = 0
    while start < duration and index < max_shards:
        end = min(start + length, duration)
        shards.append(
            Shard(index=index, start=start, end=end, margin=min(overlap, start))
        )
        start = end
        index += 1
    return shards


def trim_shard_waveform(
    wave: Waveform, shard: Shard, duration: int, overlap: int
) -> Waveform:
    """Trim one shard's output waveform to its owned ``[start, end)`` range.

    Mirrors the engine's per-window readback trim bit-exactly: the settle
    margin on the left is dropped, and so is the propagation tail past the
    right edge — unless overlap is disabled or this is the final shard
    (nothing follows it to reproduce the tail).  ``wave`` is in shard-run
    local time (0 = ``shard.ext_start``); the result is rebased so 0 =
    ``shard.start``.

    The trim is two ``searchsorted`` calls over the toggle array — the
    vectorized equivalent of ``wave.window(margin, right_edge)``, same as
    :func:`~repro.core.restructure.slice_stimulus` — because the merge
    runs once per (net, shard) and a per-event Python slice would
    dominate the whole sharded run on large designs.
    """
    hnp = HOST
    if overlap > 0 and shard.end < duration:
        right_edge = shard.end - shard.ext_start
    else:
        right_edge = EOW - 1
    if shard.margin == 0 and right_edge == EOW - 1:
        return wave
    toggles = wave.timestamps[1:]
    # Keep toggles strictly inside (margin, right_edge); the establishing
    # value absorbs the parity of the dropped left-margin toggles —
    # bit-identical to Waveform.window(margin, right_edge, rebase=True).
    lo = int(hnp.searchsorted(toggles, shard.margin, side="right"))
    hi = int(hnp.searchsorted(toggles, right_edge, side="left"))
    initial = wave.initial_value ^ (lo & 1)
    return Waveform.from_toggle_array(initial, toggles[lo:hi] - shard.margin)


def merge_shard_waveforms(
    shards: Sequence[Shard], waves: Sequence[Waveform]
) -> Waveform:
    """Stitch trimmed per-shard waveforms into one full-run waveform.

    ``waves[k]`` must be :func:`trim_shard_waveform` output for
    ``shards[k]`` (local time 0 = ``shards[k].start``).  Seams are
    resolved by :func:`~repro.core.restructure.stitch_windows` — the very
    rules the engine applies between its own cycle-parallel windows, so a
    toggle landing exactly on a shard boundary is counted once.
    """
    if len(shards) != len(waves):
        raise ValueError("one waveform per shard is required")
    hnp = HOST
    window_starts = hnp.asarray([s.start for s in shards], dtype=hnp.int64)
    establish = hnp.asarray([w.initial_value for w in waves], dtype=hnp.int64)
    counts = hnp.asarray([w.toggle_count() for w in waves], dtype=hnp.int64)
    times = (
        hnp.concatenate(
            [w.timestamps[1:] + s.start for s, w in zip(shards, waves)]
        )
        if waves
        else hnp.zeros(0, dtype=hnp.int64)
    )
    return stitch_windows(window_starts, establish, counts, times)


def accumulate_toggle_counts(
    total: Dict[str, int], share: Dict[str, int]
) -> None:
    """Add one share's per-net toggle counts into a running total."""
    for net, count in share.items():
        total[net] = total.get(net, 0) + count


# ----------------------------------------------------------------------
# Time-axis request fusion (micro-batching onto one run)
# ----------------------------------------------------------------------
#
# Sharding splits one run into shares; *fusion* is the same carve-and-merge
# invariant pointed the other way: several independent requests for the same
# compiled design are laid out back to back on the time axis — separated by
# settle pads sized like the window margin — executed as ONE engine run, and
# sliced apart again bit-exactly.  It is what makes micro-batched serving
# pay: the engine's per-level-batch and per-net fixed costs are paid once
# per *batch* instead of once per *request*.
#
# The pad between request ``i`` and ``i+1`` is ``2 * overlap`` long: the
# first half holds every source at request ``i``'s final value, so request
# ``i``'s propagation tail (bounded by the critical-path margin) evolves
# exactly as in a standalone run; the second half holds request ``i+1``'s
# initial values, so the network settles to request ``i+1``'s initial gate
# state before its range begins — the same settle argument the engine's
# window margins rest on.


@dataclass(frozen=True)
class FusedLayout:
    """Time-axis placement of a batch of fused requests.

    Request ``i`` owns ``[offsets[i], offsets[i] + durations[i])`` of the
    fused run; ``overlap`` is the settle-pad half-width (the engine's
    window margin).
    """

    offsets: Tuple[int, ...]
    durations: Tuple[int, ...]
    overlap: int

    @property
    def batch_size(self) -> int:
        return len(self.offsets)

    @property
    def fused_duration(self) -> int:
        return self.offsets[-1] + self.durations[-1]


def plan_fusion(durations: Sequence[int], overlap: int) -> FusedLayout:
    """Lay requests out on the fused time axis with settle pads between."""
    if not durations:
        raise ValueError("at least one request is required")
    if overlap <= 0:
        raise ValueError("fusion requires a positive settle overlap")
    offsets: List[int] = [0]
    for duration in durations[:-1]:
        if duration < 1:
            raise ValueError("request durations must be positive")
        offsets.append(offsets[-1] + duration + 2 * overlap)
    if durations[-1] < 1:
        raise ValueError("request durations must be positive")
    return FusedLayout(
        offsets=tuple(offsets), durations=tuple(durations), overlap=overlap
    )


def fuse_stimuli(
    nets: Sequence[str],
    stimuli: Sequence[Dict[str, Waveform]],
    layout: FusedLayout,
) -> Dict[str, Waveform]:
    """Concatenate per-request stimuli into one fused stimulus.

    Per net: request ``i``'s toggles — clipped to its horizon, exactly as
    a standalone run's window slicing never loads events at or past the
    duration — shift by ``offsets[i]``; where consecutive requests
    disagree across a pad, a boundary toggle at the pad midpoint
    (``offset[i] + duration[i] + overlap``) switches the source from
    request ``i``'s final value to request ``i+1``'s initial value — late
    enough that request ``i``'s kept tail region still sees its own final
    values, early enough that the network settles before request ``i+1``
    begins.
    """
    hnp = HOST
    fused: Dict[str, Waveform] = {}
    for net in nets:
        pieces: List = []
        value = stimuli[0][net].initial_value
        initial = value
        for index, stimulus in enumerate(stimuli):
            wave = stimulus[net]
            offset = layout.offsets[index]
            if wave.initial_value != value:
                # Pad midpoint switch into this request's initial value.
                pieces.append(
                    hnp.asarray([offset - layout.overlap], dtype=hnp.int64)
                )
                value = wave.initial_value
            toggles = wave.timestamps[1:]
            # Clip to the request's horizon: a standalone run ignores
            # toggles at or past ``duration`` (its windows end there), and
            # unclipped they would spill into the settle pad — or past the
            # next request's offset entirely.
            clip = int(
                hnp.searchsorted(toggles, layout.durations[index], side="left")
            )
            toggles = toggles[:clip]
            if toggles.size:
                pieces.append(toggles + offset)
                value ^= int(toggles.size & 1)
        times = (
            hnp.concatenate(pieces) if pieces
            else hnp.zeros(0, dtype=hnp.int64)
        )
        fused[net] = Waveform.from_toggle_array(initial, times)
    return fused


def split_fused_waveform(
    wave: Waveform, layout: FusedLayout, index: int
) -> Waveform:
    """Slice request ``index``'s waveform back out of a fused result.

    Keeps the establishing value at the request's offset and every toggle
    strictly inside ``(offset, offset + duration + overlap)`` — the
    request's own range plus its propagation tail, exactly the range a
    standalone run's final window keeps.  The pad's switch toggle sits at
    the slice boundary and is excluded on both sides.
    """
    hnp = HOST
    offset = layout.offsets[index]
    end = offset + layout.durations[index] + layout.overlap
    toggles = wave.timestamps[1:]
    lo = int(hnp.searchsorted(toggles, offset, side="right"))
    hi = int(hnp.searchsorted(toggles, end, side="left"))
    initial = wave.initial_value ^ (lo & 1)
    return Waveform.from_toggle_array(initial, toggles[lo:hi] - offset)
