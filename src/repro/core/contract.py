"""The shared simulation contract all backends honour.

Every simulator in the repository — the GATSPI engine, the event-driven
baseline, the zero-delay functional simulator, and the partitioned CPU
port — accepts the same testbench description: a stimulus waveform per
source net plus a simulation horizon given as ``cycles`` and/or
``duration``.  The horizon normalization and stimulus validation used to be
re-implemented (slightly differently) in each simulator; this module is the
single definition, used both by the concrete simulators and by the
:mod:`repro.api` session layer.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..netlist import Netlist
from .waveform import Waveform


class StimulusError(ValueError):
    """Raised when the provided testbench does not cover all source nets."""


def normalize_horizon(
    cycles: Optional[int],
    duration: Optional[int],
    clock_period: int,
) -> Tuple[int, int]:
    """Resolve the ``(cycles, duration)`` pair from whichever was given.

    ``duration`` defaults to ``cycles * clock_period``; ``cycles`` defaults to
    ``duration // clock_period`` (at least 1).  Exactly reproduces the rule
    every simulator applied individually before this helper existed.
    """
    if duration is None:
        if cycles is None:
            raise ValueError("either cycles or duration must be provided")
        duration = cycles * clock_period
    if cycles is None:
        cycles = max(1, duration // clock_period)
    return cycles, duration


def fanin_weighted_toggles(
    netlist: Netlist, toggle_counts: Mapping[str, int]
) -> int:
    """Input events seen by gates: fanout-weighted net transitions.

    This is the ``input_events`` statistic of
    :class:`~repro.core.results.SimulationStats`, shared by every backend.
    """
    input_events = 0
    for inst in netlist.combinational_instances():
        for net in inst.input_nets():
            input_events += toggle_counts.get(net, 0)
    return input_events


def validate_stimulus(netlist: Netlist, stimulus: Mapping[str, Waveform]) -> None:
    """Check that every source net (primary input or sequential-element
    output) has a stimulus waveform; raise :class:`StimulusError` otherwise."""
    missing = [net for net in netlist.source_nets() if net not in stimulus]
    if missing:
        raise StimulusError(
            f"stimulus missing for source nets: {sorted(missing)[:10]}"
        )
