"""GATSPI core: waveform format, lookup tables, kernel, and engine."""

from .waveform import EOW, INITIAL_ONE_MARKER, Waveform, WaveformError, concatenate_windows
from .truthtable import TruthTable, index_for_values, pin_weights, values_for_index
from .delaytable import (
    FALL,
    RISE,
    DelayArc,
    GateDelayTable,
    InterconnectDelay,
    NO_DELAY,
)
from .config import PAPER_DEFAULT_CONFIG, SimConfig
from .contract import StimulusError, normalize_horizon, validate_stimulus
from .kernel import (
    GateKernelInputs,
    GateKernelResult,
    count_input_events,
    resolve_gate_delay,
    simulate_gate_window,
)
from .memory import DeviceMemoryError, PoolStats, WaveformPool
from .results import PhaseTimings, SimulationResult, SimulationStats
from .engine import GatspiEngine, simulate
from .multi_gpu import DeviceShare, MultiGpuResult, simulate_multi_gpu

__all__ = [
    "EOW",
    "INITIAL_ONE_MARKER",
    "Waveform",
    "WaveformError",
    "concatenate_windows",
    "TruthTable",
    "index_for_values",
    "pin_weights",
    "values_for_index",
    "FALL",
    "RISE",
    "DelayArc",
    "GateDelayTable",
    "InterconnectDelay",
    "NO_DELAY",
    "PAPER_DEFAULT_CONFIG",
    "SimConfig",
    "normalize_horizon",
    "validate_stimulus",
    "GateKernelInputs",
    "GateKernelResult",
    "count_input_events",
    "resolve_gate_delay",
    "simulate_gate_window",
    "DeviceMemoryError",
    "PoolStats",
    "WaveformPool",
    "PhaseTimings",
    "SimulationResult",
    "SimulationStats",
    "GatspiEngine",
    "StimulusError",
    "simulate",
    "DeviceShare",
    "MultiGpuResult",
    "simulate_multi_gpu",
]
