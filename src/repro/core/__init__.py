"""GATSPI core: waveform format, lookup tables, kernel, and engine."""

from .waveform import (
    EOW,
    INITIAL_ONE_MARKER,
    POOL_DTYPE,
    Waveform,
    WaveformError,
    concatenate_windows,
)
from .truthtable import (
    TruthTable,
    index_for_values,
    pack_truth_tables,
    pin_weights,
    values_for_index,
)
from .delaytable import (
    FALL,
    RISE,
    DelayArc,
    GateDelayTable,
    InterconnectDelay,
    NO_DELAY,
    flatten_delay_array,
)
from .config import PAPER_DEFAULT_CONFIG, SimConfig
from .contract import StimulusError, normalize_horizon, validate_stimulus
from .kernel import (
    GateKernelInputs,
    GateKernelResult,
    count_input_events,
    resolve_gate_delay,
    simulate_gate_window,
)
from .memory import (
    DeviceMemoryError,
    PoolStats,
    TimestampOverflowError,
    WaveformPool,
)
from .restructure import (
    SourceEvents,
    TrimmedReadback,
    WindowSlices,
    lower_stimulus,
    slice_stimulus,
    slice_windows,
    stitch_windows,
)
from .results import PhaseTimings, SimulationResult, SimulationStats
from .vector_kernel import (
    LevelKernelResult,
    LevelTensors,
    PackedDesign,
    TiledLevel,
    pack_design,
    simulate_level,
    tile_level,
)
from .engine import GatspiEngine, simulate
from .multi_gpu import DeviceShare, MultiGpuResult, simulate_multi_gpu

__all__ = [
    "EOW",
    "INITIAL_ONE_MARKER",
    "POOL_DTYPE",
    "Waveform",
    "WaveformError",
    "concatenate_windows",
    "TruthTable",
    "index_for_values",
    "pack_truth_tables",
    "pin_weights",
    "values_for_index",
    "flatten_delay_array",
    "FALL",
    "RISE",
    "DelayArc",
    "GateDelayTable",
    "InterconnectDelay",
    "NO_DELAY",
    "PAPER_DEFAULT_CONFIG",
    "SimConfig",
    "normalize_horizon",
    "validate_stimulus",
    "GateKernelInputs",
    "GateKernelResult",
    "count_input_events",
    "resolve_gate_delay",
    "simulate_gate_window",
    "DeviceMemoryError",
    "TimestampOverflowError",
    "PoolStats",
    "WaveformPool",
    "PhaseTimings",
    "SimulationResult",
    "SimulationStats",
    "LevelKernelResult",
    "LevelTensors",
    "PackedDesign",
    "TiledLevel",
    "pack_design",
    "simulate_level",
    "tile_level",
    "SourceEvents",
    "TrimmedReadback",
    "WindowSlices",
    "lower_stimulus",
    "slice_stimulus",
    "slice_windows",
    "stitch_windows",
    "GatspiEngine",
    "StimulusError",
    "simulate",
    "DeviceShare",
    "MultiGpuResult",
    "simulate_multi_gpu",
]
