"""Multi-GPU workload distribution by cycle parallelism (paper Section 5).

The paper's multi-GPU strategy is deliberately simple: with ``n`` GPUs the
cycle parallelism is set to ``32 * n`` and each GPU simulates 32 of the
independent windows.  The kernel runtime then follows ``t = t1 / n + ovr``
where ``ovr`` is the stream-synchronize + kernel-launch overhead.

Without real GPUs, each "device" here is an independent backend-session run
(``repro.api``, default backend ``"gatspi"``) over its share of windows.  The
measured per-device runtimes let us
report the *parallel* runtime as the slowest device (plus overhead), which is
what a real multi-GPU run would show — including the paper's observation that
deviation from linear scaling comes from uneven activity between the
distributed windows.

The design is prepared exactly once: every device share runs through the same
session, so the gatspi backend's packed struct-of-arrays level tensors
(:class:`~repro.core.vector_kernel.PackedDesign`, built at compile time) are
partitioned across shares by window, never re-derived per device — only the
per-share stimulus windows and waveform pools are device-local.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..netlist import Netlist
from ..sdf.annotate import DelayAnnotation
from .config import SimConfig
from .restructure import slice_stimulus
from .results import SimulationResult
from .sharding import accumulate_toggle_counts, plan_shards
from .waveform import Waveform


@dataclass
class DeviceShare:
    """Result of one device's share of the cycle-parallel workload."""

    device_index: int
    window_start: int
    window_end: int
    result: SimulationResult

    @property
    def kernel_runtime(self) -> float:
        return self.result.kernel_runtime

    @property
    def level_batches(self) -> int:
        """Level-batched kernel launches this share executed."""
        return self.result.stats.level_batches

    @property
    def device(self) -> str:
        """Array backend this share's data plane ran on."""
        return self.result.stats.device

    @property
    def max_batch_tasks(self) -> int:
        """Largest (gate, window) batch this share launched."""
        return self.result.stats.max_batch_tasks


@dataclass
class MultiGpuResult:
    """Combined result of a multi-device run."""

    num_devices: int
    shares: List[DeviceShare] = field(default_factory=list)
    toggle_counts: Dict[str, int] = field(default_factory=dict)
    launch_overhead: float = 0.0
    #: Which kernel executed Algorithm 1 on every share.
    kernel_mode: str = ""
    #: Which array backend (repro.core.xp) every share's data plane ran on.
    device: str = ""
    #: Invariant of this implementation: all shares run through one prepared
    #: session, so the packed design tensors are built once and partitioned
    #: by window — never re-derived per device.
    compiled_once: bool = True

    @property
    def parallel_kernel_runtime(self) -> float:
        """Modelled wall-clock kernel time: slowest device plus overhead."""
        if not self.shares:
            return self.launch_overhead
        return max(share.kernel_runtime for share in self.shares) + self.launch_overhead

    @property
    def serial_kernel_runtime(self) -> float:
        """Total kernel work (what a single device would execute)."""
        return sum(share.kernel_runtime for share in self.shares)

    @property
    def speedup_vs_single_device(self) -> float:
        parallel = self.parallel_kernel_runtime
        if parallel == 0:
            return float("inf")
        return self.serial_kernel_runtime / parallel

    def total_toggles(self) -> int:
        return sum(self.toggle_counts.values())

    def per_device_runtimes(self) -> List[float]:
        return [share.kernel_runtime for share in self.shares]

    def load_imbalance(self) -> float:
        """Max/mean device runtime ratio — the paper's uneven-activity effect."""
        runtimes = self.per_device_runtimes()
        if not runtimes:
            return 1.0
        mean = sum(runtimes) / len(runtimes)
        if mean == 0:
            return 1.0
        return max(runtimes) / mean


def simulate_multi_gpu(
    netlist: Netlist,
    stimulus: Mapping[str, Waveform],
    cycles: int,
    num_devices: int,
    annotation: Optional[DelayAnnotation] = None,
    config: Optional[SimConfig] = None,
    launch_overhead: float = 0.0,
    backend: str = "gatspi",
    backend_options: Optional[Mapping[str, object]] = None,
) -> MultiGpuResult:
    """Distribute a testbench across ``num_devices`` model devices.

    Each device receives a contiguous slice of the testbench (its share of
    the ``32 * n`` cycle-parallel windows) and simulates it through one
    shared ``backend`` session: the design — including the gatspi backend's
    packed struct-of-arrays level tensors — is compiled exactly once, and
    each share's level batches execute over that shared compile artifact.
    Toggle counts are summed across devices; per-device kernel runtimes are
    kept so the parallel runtime can be modelled as the slowest device plus
    ``launch_overhead``.

    ``backend`` accepts a registry spec (``"gatspi:kernel=scalar"``), and
    ``backend_options`` adds explicit prepare options on top of the spec.
    """
    # Imported lazily: ``repro.api`` depends on ``repro.core``.
    from ..api import resolve_backend

    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")
    config = config or SimConfig()
    duration = cycles * config.clock_period

    backend_impl, options = resolve_backend(backend)
    if backend_options:
        options = {**options, **backend_options}
    session = backend_impl.prepare(
        netlist, annotation=annotation, config=config, **options
    )
    result = MultiGpuResult(num_devices=num_devices, launch_overhead=launch_overhead)
    if duration < 1:
        # Nothing to distribute (cycles=0 sweeps): an empty result, as the
        # pre-planner loop produced.
        return result
    # The shard planner shared with the gatspi-sharded backend; shares are
    # floored at one clock period and carry no settle margin here — the
    # distributor models independent devices and sums per-share activity
    # (events propagating across a slice seam may land on either side).
    for shard in plan_shards(duration, num_devices, min_length=config.clock_period):
        # Carve this device's share of the testbench with the vectorized
        # slicer (bit-identical to per-net Waveform.window calls).
        share_stimulus = slice_stimulus(stimulus, shard.start, shard.end)
        share_result = session.run(share_stimulus, duration=shard.length)
        result.kernel_mode = share_result.stats.kernel_mode
        result.device = share_result.stats.device
        result.shares.append(
            DeviceShare(
                device_index=shard.index,
                window_start=shard.start,
                window_end=shard.end,
                result=share_result,
            )
        )
        accumulate_toggle_counts(result.toggle_counts, share_result.toggle_counts)
    return result
