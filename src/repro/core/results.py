"""Result containers for GATSPI and reference simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .waveform import Waveform


@dataclass
class PhaseTimings:
    """Wall-clock time spent in each application phase, in seconds.

    Mirrors the phases the paper profiles in Table 5: host-to-device data
    transfer (here, building the device memory pool), stream-synchronize +
    kernel-launch overhead (here, per-level scheduling), and kernel execution.
    The restructuring of input waveforms into cycle-parallel windows and the
    result dump are reported separately as part of application runtime.
    """

    restructure: float = 0.0
    host_to_device: float = 0.0
    scheduling: float = 0.0
    kernel: float = 0.0
    readback: float = 0.0
    dump: float = 0.0

    @property
    def application(self) -> float:
        """Total application runtime (everything, the paper's "App. Runtime")."""
        return (
            self.restructure
            + self.host_to_device
            + self.scheduling
            + self.kernel
            + self.readback
            + self.dump
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "restructure": self.restructure,
            "host_to_device": self.host_to_device,
            "scheduling": self.scheduling,
            "kernel": self.kernel,
            "readback": self.readback,
            "dump": self.dump,
            "application": self.application,
        }


@dataclass
class SimulationStats:
    """Workload statistics gathered during simulation.

    These feed both the activity-factor column of Table 2 and the GPU
    performance model (events per gate drive memory traffic estimates).
    """

    gate_count: int = 0
    levels: int = 0
    widest_level: int = 0
    windows: int = 0
    segments: int = 1
    cycles: int = 0
    input_events: int = 0
    output_transitions: int = 0
    kernel_invocations: int = 0
    pool_words_used: int = 0
    #: Which kernel executed Algorithm 1 ("vector" or "scalar").
    kernel_mode: str = ""
    #: Which pipeline ran restructure/load/readback ("vector" or "python").
    restructure_mode: str = ""
    #: Which array backend the data plane ran on ("numpy", "torch", "cupy").
    device: str = ""
    #: Level-batched kernel launches (vector kernel; counts every pass).
    level_batches: int = 0
    #: Largest single batch, in (gate, window) tasks.
    max_batch_tasks: int = 0
    #: Window-axis shards the run was partitioned into (1 = unsharded; the
    #: ``gatspi-sharded`` backend sets the actual shard count).
    shards: int = 1
    #: Requests fused into the engine run that produced this result (1 =
    #: standalone; batched serving fuses same-design requests, and fused
    #: workload stats/timings are attributed evenly across the batch).
    fused_requests: int = 1
    #: Whether this result came from an incremental rerun (``Session.rerun``):
    #: only the cone of influence of an edit batch was re-simulated and the
    #: clean waveforms were stitched from the previous run.
    incremental: bool = False
    #: Gates inside the re-simulated dirty cone (0 for full runs).
    dirty_gates: int = 0
    #: ``dirty_gates`` over the design's total gate count.
    dirty_fraction: float = 0.0
    #: Whether this run executed through the out-of-core streaming driver
    #: (``Session.run_stream``): windows were simulated chunk by chunk with
    #: pool columns recycled between chunks and no full-run waveforms kept.
    streamed: bool = False
    #: Streaming chunks executed (0 for whole-run simulations).
    chunks: int = 0

    def mean_batch_tasks(self) -> float:
        """Average tasks per level-batched kernel launch."""
        if self.level_batches == 0:
            return 0.0
        return self.kernel_invocations / self.level_batches

    def activity_factor(self) -> float:
        """Average toggles per gate per cycle (the paper's activity factor)."""
        if self.gate_count == 0 or self.cycles == 0:
            return 0.0
        return self.output_transitions / (self.gate_count * self.cycles)


@dataclass
class StreamBatch:
    """One simulated chunk of a streaming run, as host arrays.

    Produced by the engine's streaming driver and consumed by the online
    activity accumulator; nothing in a batch outlives the chunk it came
    from, which is what keeps streaming runs at constant RSS.

    Gate-output readback is window-batched exactly like
    :class:`~repro.core.restructure.TrimmedReadback`, but flattened
    net-major across the whole chunk: ``establish_values``/``toggle_counts``
    are ``(N, B)`` over the chunk's ``B`` windows and net ``n``'s window
    ``b`` owns ``toggle_counts[n, b]`` entries of ``times`` (absolute time,
    ascending within a window, windows in chunk order).  Source nets are
    reported as one span per chunk, owning the half-open interval
    ``[chunk_start, chunk_end)``: ``source_establish`` is the value each
    source holds entering the chunk (after every toggle ``t <
    chunk_start``) and ``source_times`` holds the owned toggles (net ``i``
    owns ``source_counts[i]`` entries, net-major).
    """

    chunk_index: int
    chunk_start: int
    chunk_end: int
    nets: Tuple[str, ...]
    window_starts: "object"  # (B,) int64 absolute (unextended) window starts
    establish_values: "object"  # (N, B) int64 in {0, 1}
    toggle_counts: "object"  # (N, B) int64
    times: "object"  # flat int64 absolute toggle times, net-major
    source_nets: Tuple[str, ...]
    source_establish: "object"  # (S,) int64 value at chunk_start
    source_counts: "object"  # (S,) int64
    source_times: "object"  # flat int64 absolute toggle times

    @property
    def window_count(self) -> int:
        return int(len(self.window_starts))


@dataclass
class SimulationResult:
    """Output of one re-simulation run."""

    toggle_counts: Dict[str, int] = field(default_factory=dict)
    waveforms: Dict[str, Waveform] = field(default_factory=dict)
    duration: int = 0
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    stats: SimulationStats = field(default_factory=SimulationStats)
    #: Final register state of a clocked run (instance name -> 0/1), set by
    #: ``run_cycles``: the state committed by the capture edge that closes
    #: the last cycle.  ``None`` for ordinary combinational runs.
    register_state: Optional[Dict[str, int]] = None

    @property
    def kernel_runtime(self) -> float:
        """Re-simulation kernel runtime (the paper's "Re-sim. Kernel Runtime")."""
        return self.timings.kernel

    @property
    def application_runtime(self) -> float:
        return self.timings.application

    def total_toggles(self) -> int:
        return sum(self.toggle_counts.values())

    def toggle_count(self, net: str) -> int:
        return self.toggle_counts.get(net, 0)

    def waveform(self, net: str) -> Waveform:
        return self.waveforms[net]

    def activity_factor(self) -> float:
        return self.stats.activity_factor()

    def matches_toggle_counts(
        self, other: "SimulationResult", nets: Optional[Mapping[str, int]] = None
    ) -> bool:
        """Compare per-net toggle counts with another result (SAIF check)."""
        keys = set(self.toggle_counts) | set(other.toggle_counts)
        if nets is not None:
            keys &= set(nets)
        return all(
            self.toggle_counts.get(k, 0) == other.toggle_counts.get(k, 0)
            for k in keys
        )

    def differing_nets(self, other: "SimulationResult") -> Dict[str, tuple]:
        """Nets whose toggle counts differ, for debugging accuracy issues."""
        keys = set(self.toggle_counts) | set(other.toggle_counts)
        return {
            k: (self.toggle_counts.get(k, 0), other.toggle_counts.get(k, 0))
            for k in sorted(keys)
            if self.toggle_counts.get(k, 0) != other.toggle_counts.get(k, 0)
        }
