"""Shared-memory views over the packed design tensors.

The ``workers=process`` mode of the ``gatspi-sharded`` backend runs each
window-axis share in a separate OS process so shares execute truly in
parallel (no GIL).  The compiled design's heavy payload — the flat
truth-table/delay tensors and the per-level gate/pin matrices of
:class:`~repro.core.vector_kernel.PackedDesign` — would otherwise be
pickled to every worker; this module instead places them in one
``multiprocessing.shared_memory`` segment which every worker attaches
read-only, build-once/attach-many:

* :func:`export_packed_design` lays the arrays out in a single segment
  (16-byte aligned, one ``memcpy`` per array) and returns an owning
  :class:`SharedDesign` handle whose picklable :class:`DesignManifest`
  records the segment name plus each array's offset/shape/dtype and the
  small non-array metadata (gate name tuples, the net index).
* :func:`attach_packed_design` (called in the worker) maps the segment
  and rebuilds a ``PackedDesign`` of zero-copy read-only numpy views.

Lifecycle and unlink accounting
-------------------------------

The exporting process owns the segment: :meth:`SharedDesign.close`
unlinks it exactly once and removes it from the module's live-segment
registry (:func:`active_segment_names` — tests assert the registry is
empty after session teardown).  Attaching processes never unlink.  On
CPython < 3.13 merely attaching registers the segment with the attacher's
``resource_tracker``; our attachers are always ``multiprocessing`` spawn
children, which *share the parent's tracker process*, so that registration
is a set-level no-op and the owner's unlink (which unregisters) remains
the one and only cleanup.  Do not attach from an unrelated process on
< 3.13: its private tracker would unlink the segment when it exits.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

from .vector_kernel import LevelTensors, PackedDesign

#: Array fields of :class:`LevelTensors`, in manifest layout order.
LEVEL_ARRAY_FIELDS: Tuple[str, ...] = (
    "num_pins",
    "weights",
    "wire_rise",
    "wire_fall",
    "tt_offsets",
    "delay_offsets",
    "num_columns",
    "input_net_ids",
    "output_net_ids",
)

_ALIGNMENT = 16

# Live-segment registry (unlink accounting).  A leaf lock: nothing else
# is ever acquired while it is held.
_registry_lock = threading.Lock()
_live_segments: Dict[str, "SharedDesign"] = {}
_segment_counter = itertools.count()


class ShmError(RuntimeError):
    """Raised on invalid shared-memory export/attach operations."""


@dataclass(frozen=True)
class ArraySpec:
    """Location of one tensor inside the shared segment."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class LevelManifest:
    """One level's metadata: name tuples inline, arrays by reference."""

    gate_names: Tuple[str, ...]
    output_nets: Tuple[str, ...]
    input_nets: Tuple[Tuple[str, ...], ...]
    arrays: Dict[str, ArraySpec] = field(default_factory=dict)


@dataclass(frozen=True)
class DesignManifest:
    """Everything a worker needs to rebuild the packed design.

    Fully picklable and small: array payloads stay in the shared segment;
    only names, offsets, and the net index travel by pickle.
    """

    segment_name: str
    total_bytes: int
    tt_flat: ArraySpec
    delay_flat: ArraySpec
    levels: Tuple[LevelManifest, ...]
    net_index: Dict[str, int]


def active_segment_names() -> Tuple[str, ...]:
    """Names of shared segments exported and not yet closed (accounting)."""
    with _registry_lock:
        return tuple(_live_segments)


class SharedDesign:
    """Owner-side handle of one exported packed design.

    ``close()`` (idempotent) unlinks the segment; until then workers may
    attach via the :attr:`manifest`.  The handle also closes cleanly from
    a ``weakref.finalize`` when the owning session is garbage collected.
    """

    def __init__(
        self, manifest: DesignManifest, shm: shared_memory.SharedMemory
    ):
        self.manifest = manifest
        self._shm: shared_memory.SharedMemory = shm
        self._closed = False
        with _registry_lock:
            _live_segments[manifest.segment_name] = self

    @property
    def name(self) -> str:
        return self.manifest.segment_name

    def close(self) -> None:
        """Unlink and unmap the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with _registry_lock:
            _live_segments.pop(self.manifest.segment_name, None)
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedDesign":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AttachedDesign:
    """Worker-side attachment: the rebuilt design plus the mapping.

    The :attr:`packed` tensors are zero-copy views into the mapping, so
    the attachment must stay alive as long as the tensors are used —
    workers keep it for their process lifetime.  ``detach()`` drops the
    mapping without unlinking (the exporting owner unlinks).
    """

    def __init__(
        self, packed: PackedDesign, shm: shared_memory.SharedMemory
    ):
        self.packed = packed
        self._shm = shm
        self._detached = False

    def detach(self) -> None:
        """Release the mapping (the views become invalid); never unlinks."""
        if self._detached:
            return
        self._detached = True
        # Dropping the packed reference first lets the export buffers die
        # before the mmap closes (a live view would raise BufferError).
        self.packed = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller still holds views
            pass


def _require_host_array(name: str, value: object) -> np.ndarray:
    array = np.asarray(value)
    if not isinstance(value, np.ndarray):
        raise ShmError(
            f"packed tensor {name!r} is not a host numpy array; "
            f"process shards require the numpy device"
        )
    return np.ascontiguousarray(array)


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def export_packed_design(packed: PackedDesign) -> SharedDesign:
    """Copy a packed design's tensors into one shared-memory segment.

    The design must be host-resident (``device="numpy"``): device tensors
    have no shared-memory representation.  Returns the owning
    :class:`SharedDesign`; pass its ``manifest`` to worker processes and
    rebuild with :func:`attach_packed_design`.
    """
    if packed.device != "numpy":
        raise ShmError(
            f"cannot export a packed design materialized on "
            f"{packed.device!r}; process shards require the numpy device"
        )

    plan: List[Tuple[str, np.ndarray]] = [
        ("tt_flat", _require_host_array("tt_flat", packed.tt_flat)),
        ("delay_flat", _require_host_array("delay_flat", packed.delay_flat)),
    ]
    for index, level in enumerate(packed.levels):
        for field_name in LEVEL_ARRAY_FIELDS:
            plan.append(
                (
                    f"L{index}.{field_name}",
                    _require_host_array(
                        f"levels[{index}].{field_name}",
                        getattr(level, field_name),
                    ),
                )
            )

    specs: Dict[str, ArraySpec] = {}
    cursor = 0
    for name, array in plan:
        cursor = _aligned(cursor)
        specs[name] = ArraySpec(
            offset=cursor, shape=tuple(array.shape), dtype=array.dtype.str
        )
        cursor += array.nbytes
    total_bytes = max(cursor, 1)

    segment_name = f"repro-shm-{os.getpid()}-{next(_segment_counter)}"
    shm = shared_memory.SharedMemory(
        create=True, size=total_bytes, name=segment_name
    )
    try:
        for name, array in plan:
            spec = specs[name]
            target: np.ndarray = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            target[...] = array
        levels = tuple(
            LevelManifest(
                gate_names=level.gate_names,
                output_nets=level.output_nets,
                input_nets=level.input_nets,
                arrays={
                    field_name: specs[f"L{index}.{field_name}"]
                    for field_name in LEVEL_ARRAY_FIELDS
                },
            )
            for index, level in enumerate(packed.levels)
        )
        manifest = DesignManifest(
            segment_name=segment_name,
            total_bytes=total_bytes,
            tt_flat=specs["tt_flat"],
            delay_flat=specs["delay_flat"],
            levels=levels,
            net_index=dict(packed.net_index),
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return SharedDesign(manifest, shm)


def _view(
    shm: shared_memory.SharedMemory, spec: ArraySpec
) -> np.ndarray:
    array: np.ndarray = np.ndarray(
        spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
    )
    array.setflags(write=False)
    return array


def attach_packed_design(manifest: DesignManifest) -> AttachedDesign:
    """Map an exported design and rebuild zero-copy read-only tensors.

    Callers must be ``multiprocessing`` children of the exporting process
    (they share its resource tracker — see the module docstring); the
    exporting owner is the only process that ever unlinks the segment.
    """
    shm = shared_memory.SharedMemory(name=manifest.segment_name)
    levels = tuple(
        LevelTensors(
            gate_names=level.gate_names,
            output_nets=level.output_nets,
            input_nets=level.input_nets,
            **{
                field_name: _view(shm, level.arrays[field_name])
                for field_name in LEVEL_ARRAY_FIELDS
            },
        )
        for level in manifest.levels
    )
    packed = PackedDesign(
        tt_flat=_view(shm, manifest.tt_flat),
        delay_flat=_view(shm, manifest.delay_flat),
        levels=levels,
        net_index=manifest.net_index,
        device="numpy",
    )
    return AttachedDesign(packed, shm)
