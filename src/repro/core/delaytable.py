"""Conditional gate-delay tables as array lookups (paper Fig. 4).

SDF ``IOPATH`` statements — including ``COND``-qualified ones — are compiled
into per-input-pin lookup arrays so the simulation kernel can determine the
gate delay for any observed transition with a plain array access, exactly like
logic evaluation.

For a cell with ``n`` input pins, each pin owns a ``(2, 2, 2**n)`` array::

    delay = table[input_edge][output_edge][column_index]

* ``input_edge``  — 0 for a rising input, 1 for a falling input.
* ``output_edge`` — 0 for a rising output, 1 for a falling output.
* ``column_index`` — the same weighted pin-value index used by the truth
  table (the paper's ``colInd``), evaluated *after* the transition.

Unconditional ``IOPATH`` entries fill every column; ``COND`` entries override
only the columns whose side-input values satisfy the condition.  Entries for
arcs that can never fire keep the sentinel :data:`NO_DELAY`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from .truthtable import pin_weights

#: Sentinel for a delay arc that is never exercised (the paper's "infinity").
NO_DELAY: float = float("inf")

RISE = 0
FALL = 1


@dataclass(frozen=True)
class DelayArc:
    """One SDF-style delay arc from an input pin to the cell output.

    ``input_edge`` may be ``None`` (applies to both edges).  ``condition``
    maps *other* pin names to required logic values; an empty mapping means
    the arc is unconditional.  ``rise``/``fall`` are the output rise/fall
    delays; ``None`` keeps the existing entry (SDF's empty ``()`` field).
    """

    pin: str
    rise: Optional[float] = None
    fall: Optional[float] = None
    input_edge: Optional[int] = None
    condition: Mapping[str, int] = field(default_factory=dict)


class GateDelayTable:
    """Per-gate conditional delay lookup tables for every input pin."""

    def __init__(self, pins: Sequence[str]):
        if not pins:
            raise ValueError("a gate delay table needs at least one input pin")
        self._pins: Tuple[str, ...] = tuple(pins)
        self._pin_index: Dict[str, int] = {
            name: index for index, name in enumerate(self._pins)
        }
        if len(self._pin_index) != len(self._pins):
            raise ValueError("duplicate pin names in delay table")
        columns = 2 ** len(self._pins)
        self._tables: Dict[str, np.ndarray] = {
            name: np.full((2, 2, columns), NO_DELAY, dtype=np.float64)
            for name in self._pins
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @property
    def pins(self) -> Tuple[str, ...]:
        return self._pins

    @property
    def num_columns(self) -> int:
        return 2 ** len(self._pins)

    def table_for(self, pin: str) -> np.ndarray:
        """Raw ``(2, 2, 2**n)`` array for one pin (read-only view)."""
        view = self._tables[pin].view()
        view.setflags(write=False)
        return view

    def _columns_matching(self, condition: Mapping[str, int]) -> np.ndarray:
        """Column indices whose pin values satisfy ``condition``."""
        weights = pin_weights(len(self._pins))
        columns = np.arange(self.num_columns)
        mask = np.ones(self.num_columns, dtype=bool)
        for name, required in condition.items():
            if name not in self._pin_index:
                raise KeyError(f"unknown pin {name!r} in delay condition")
            weight = weights[self._pin_index[name]]
            mask &= ((columns // weight) % 2) == int(required)
        return columns[mask]

    def add_arc(self, arc: DelayArc) -> None:
        """Install one delay arc, overriding any previously matching entries."""
        if arc.pin not in self._pin_index:
            raise KeyError(f"unknown input pin {arc.pin!r}")
        table = self._tables[arc.pin]
        columns = self._columns_matching(arc.condition)
        if arc.input_edge is None:
            input_edges: Tuple[int, ...] = (RISE, FALL)
        else:
            input_edges = (int(arc.input_edge),)
        for input_edge in input_edges:
            if arc.rise is not None:
                table[input_edge, RISE, columns] = float(arc.rise)
            if arc.fall is not None:
                table[input_edge, FALL, columns] = float(arc.fall)

    def add_arcs(self, arcs: Iterable[DelayArc]) -> None:
        for arc in arcs:
            self.add_arc(arc)

    @classmethod
    def uniform(
        cls, pins: Sequence[str], rise: float, fall: float
    ) -> "GateDelayTable":
        """All arcs from every pin use the same output rise/fall delay."""
        table = cls(pins)
        for pin in pins:
            table.add_arc(DelayArc(pin=pin, rise=rise, fall=fall))
        return table

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, pin: str, input_edge: int, output_edge: int, column_index: int
    ) -> float:
        """Delay for an observed transition; :data:`NO_DELAY` if undefined."""
        return float(self._tables[pin][input_edge, output_edge, column_index])

    def lookup_by_index(
        self, pin_index: int, input_edge: int, output_edge: int, column_index: int
    ) -> float:
        return self.lookup(
            self._pins[pin_index], input_edge, output_edge, column_index
        )

    def min_delay(
        self,
        switching_pins: Sequence[int],
        input_edges: Sequence[int],
        output_edge: int,
        column_index: int,
    ) -> float:
        """Resolve a multiple-simultaneous-input (MSI) transition.

        When several inputs switch at the same timestamp, the output change is
        assumed to propagate through the fastest valid arc, so the minimum
        defined delay across the switching pins is used.
        """
        best = NO_DELAY
        for pin_index, input_edge in zip(switching_pins, input_edges):
            value = self._tables[self._pins[pin_index]][
                input_edge, output_edge, column_index
            ]
            if value < best:
                best = float(value)
        return best

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def copy(self) -> "GateDelayTable":
        """Deep copy (fresh per-pin arrays; safe to mutate independently)."""
        result = GateDelayTable(self._pins)
        for pin in self._pins:
            result._tables[pin][...] = self._tables[pin]
        return result

    def with_pin_delay(
        self, pin: str, rise: float, fall: float
    ) -> "GateDelayTable":
        """Copy-on-write variant with one pin's arcs replaced.

        Returns a *new* table whose ``pin`` entries are uniformly
        ``rise``/``fall`` (both edges, every column) and whose other pins
        are copied unchanged.  The original table — which may be shared by
        several gates — is never mutated; this is the sanctioned way for
        the edit API (:mod:`repro.core.edits`) to resize a delay arc.
        """
        if pin not in self._pin_index:
            raise KeyError(f"unknown input pin {pin!r}")
        result = self.copy()
        result.add_arc(DelayArc(pin=pin, rise=float(rise), fall=float(fall)))
        return result

    def averaged(self) -> "GateDelayTable":
        """Collapse conditional delays to per-pin averages.

        This reproduces the paper's "partial SDF" ablation (Table 7): the
        average rise/fall delay of each input-pin arc across all conditional
        arcs replaces the full 2-D table.
        """
        result = GateDelayTable(self._pins)
        for pin in self._pins:
            table = self._tables[pin]
            for output_edge in (RISE, FALL):
                values = table[:, output_edge, :]
                finite = values[np.isfinite(values)]
                if finite.size == 0:
                    continue
                average = float(finite.mean())
                result._tables[pin][:, output_edge, :] = average
        return result

    def packed(self) -> Dict[str, np.ndarray]:
        """Per-pin delay arrays in the flat layout of the vector kernel."""
        return {pin: flatten_delay_array(self._tables[pin]) for pin in self._pins}

    def max_finite_delay(self) -> float:
        """Largest defined delay in the table (useful for pulse-width checks)."""
        best = 0.0
        for table in self._tables.values():
            finite = table[np.isfinite(table)]
            if finite.size:
                best = max(best, float(finite.max()))
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GateDelayTable(pins={self._pins!r})"


def flatten_delay_array(table: np.ndarray) -> np.ndarray:
    """Ravel one per-pin ``(2, 2, 2**n)`` delay array for the packed design.

    The flat index convention, shared with the vector kernel, is::

        index = (input_edge * 2 + output_edge) * 2**n + column_index

    which is exactly C-order raveling of the ``(2, 2, 2**n)`` array.
    """
    arr = np.ascontiguousarray(table, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[0] != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected a (2, 2, 2**n) delay array, got {arr.shape}")
    return arr.reshape(-1)


@dataclass(frozen=True)
class InterconnectDelay:
    """Rise/fall wire delay from a driver output to one gate input pin."""

    rise: float = 0.0
    fall: float = 0.0

    def for_edge(self, new_value: int) -> float:
        """Delay applied to a transition whose *new* value is ``new_value``."""
        return self.rise if new_value == 1 else self.fall

    def is_zero(self) -> bool:
        return self.rise == 0.0 and self.fall == 0.0
