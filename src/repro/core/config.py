"""Simulation configuration ("hyperparameters") for the GATSPI engine.

The paper tunes three GPU launch parameters — cycle parallelism,
threads/block, and registers/thread — and fixes the simulation constraint
``PATHPULSEPERCENT=100``.  The same knobs are exposed here; the two launch
parameters do not change functional results (they only feed the GPU
performance model), while cycle parallelism controls how the testbench is
split into independent windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .xp import available_array_backends, default_device


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one GATSPI simulation run.

    Parameters
    ----------
    cycle_parallelism:
        Number of independent stimulus windows simulated "in parallel"
        (paper default 32 — one window per thread in a warp).
    threads_per_block, registers_per_thread:
        CUDA launch configuration; functionally inert, consumed by the GPU
        performance model (paper default ``{32, 512, 64}``).
    pathpulse_percent:
        Minimum output pulse width as a percentage of the gate delay
        (``100`` = classic inertial rejection, the paper's constraint).
    window_overlap:
        Settle margin (in time units) prepended to every cycle-parallel
        window during waveform restructuring so that events still
        propagating across a window boundary are reproduced exactly.
        ``None`` (default) derives the margin from the design's critical
        path; ``0`` disables the overlap.
    enable_net_delay_filtering:
        When false, interconnect inertial filtering (Algorithm 1 lines 11-12)
        is skipped — the paper's "No Net Delay" ablation in Table 7.
    full_sdf:
        When false, conditional SDF delays collapse to per-pin averages — the
        paper's "No Full SDF" ablation in Table 7.
    two_pass:
        Run the kernel twice per level (count pass then store pass) exactly
        as the paper does.  ``False`` fuses the passes: the count pass's
        outputs are kept and stored directly after allocation, halving
        kernel invocations per level.  Both settings are bit-identical and
        covered by the differential suite; ``two_pass=True`` remains the
        default because it mirrors the paper's GPU memory protocol.
    kernel:
        Which kernel implementation executes Algorithm 1.  ``"vector"``
        (default) runs the level-batched struct-of-arrays kernel
        (:mod:`repro.core.vector_kernel`) — all gates of a level across all
        windows in lock-step numpy operations, the software analogue of the
        paper's one-thread-per-(gate, window) GPU grid.  ``"scalar"`` runs
        the per-gate Python reference kernel (:mod:`repro.core.kernel`);
        both produce bit-identical waveforms.
    restructure:
        Which implementation runs the non-kernel phases (testbench
        restructuring, pool loading, readback/stitching).  ``"vector"``
        (default) is the bulk-array pipeline (:mod:`repro.core.restructure`):
        the stimulus is lowered once into flat event tensors, slice bounds
        come from ``searchsorted`` prefix sums, windows are bulk-loaded via
        :meth:`~repro.core.memory.WaveformPool.load_windows`, and output
        stitching is array ops.  ``"python"`` is the per-``(net, window)``
        :class:`Waveform`-object reference path; both produce bit-identical
        waveforms, mirroring the ``kernel`` oracle pattern.
    device:
        Which array backend (:mod:`repro.core.xp`) executes the data plane:
        ``"numpy"`` (always available, bit-identical reference), ``"torch"``
        or ``"cupy"`` when installed.  Defaults to the ``REPRO_DEVICE``
        environment variable, falling back to ``"numpy"``.  The scalar
        kernel and python restructure *oracle* executors always run on the
        numpy backend regardless of this field (they are per-object Python
        reference paths); see :meth:`effective_device`.
    compile_cache:
        When true (default), ``compile()`` results — levelized graph,
        truth/delay lookup arrays, packed design tensors — are memoized
        process-wide, keyed by (netlist fingerprint, annotation
        fingerprint, ``full_sdf``, ``device``), so repeated sessions on
        the same design reuse the compiled tensors instead of re-packing
        them (:mod:`repro.core.compile_cache`).
    analysis:
        Design-rule analysis mode applied at ``prepare()`` time
        (:mod:`repro.analysis`).  ``"warn"`` (default) evaluates every
        rule, attaches the report to the session
        (:attr:`~repro.api.session.Session.analysis_report`), and emits a
        Python warning when error-severity findings exist; ``"strict"``
        raises :class:`~repro.analysis.DesignAnalysisError` before any
        compilation happens; ``"off"`` skips analysis entirely.  Reports
        are cached process-wide by content fingerprint, so repeated
        prepares of one design analyze it once.
    device_memory_gb / waveform_pool_fraction:
        Model of the pre-allocated device memory chunk: of ``device_memory_gb``
        total, ``waveform_pool_fraction`` is reserved for waveform storage
        (the paper reserves 24 GB of a 32 GB V100).
    """

    cycle_parallelism: int = 32
    threads_per_block: int = 512
    registers_per_thread: int = 64
    pathpulse_percent: float = 100.0
    enable_net_delay_filtering: bool = True
    full_sdf: bool = True
    two_pass: bool = True
    kernel: str = "vector"
    restructure: str = "vector"
    device: str = field(default_factory=default_device)
    compile_cache: bool = True
    analysis: str = "warn"
    store_waveforms: bool = True
    device_memory_gb: float = 32.0
    waveform_pool_fraction: float = 0.75
    clock_period: int = 1000
    max_segment_retries: int = 8
    window_overlap: Optional[int] = None
    #: Cycles simulated per streaming chunk by :meth:`Session.run_stream`.
    #: Each chunk is split into ``cycle_parallelism`` windows, simulated,
    #: read back, and its pool columns recycled before the next chunk is
    #: lowered — so peak memory is O(chunk), not O(run).  ``None`` (default)
    #: uses ``32 * cycle_parallelism`` cycles per chunk.  Ignored by the
    #: whole-run ``Session.run`` path.
    stream_chunk_cycles: Optional[int] = None
    #: Clock net driven by :meth:`Session.run_cycles` (sequential runs).
    #: ``None`` (default) infers the clock from the design's register clock
    #: pins, which must agree on a single primary-input net.
    clock: Optional[str] = None
    #: Expected reset net of sequential runs.  Purely an assertion: when
    #: set, ``run_cycles`` rejects designs whose resettable registers use a
    #: different net.  ``None`` (default) accepts whatever the design uses.
    reset: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cycle_parallelism < 1:
            raise ValueError("cycle_parallelism must be at least 1")
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be at least 1")
        if not 0.0 <= self.pathpulse_percent <= 100.0:
            raise ValueError("pathpulse_percent must be within [0, 100]")
        if not 0.0 < self.waveform_pool_fraction <= 1.0:
            raise ValueError("waveform_pool_fraction must be within (0, 1]")
        if self.device_memory_gb <= 0:
            raise ValueError("device_memory_gb must be positive")
        if self.clock_period <= 0:
            raise ValueError("clock_period must be positive")
        if self.window_overlap is not None and self.window_overlap < 0:
            raise ValueError("window_overlap must be non-negative")
        if self.stream_chunk_cycles is not None and self.stream_chunk_cycles < 1:
            raise ValueError("stream_chunk_cycles must be at least 1")
        if self.kernel not in ("vector", "scalar"):
            raise ValueError(
                f"kernel must be 'vector' or 'scalar', got {self.kernel!r}"
            )
        if self.restructure not in ("vector", "python"):
            raise ValueError(
                f"restructure must be 'vector' or 'python', got "
                f"{self.restructure!r}"
            )
        if self.analysis not in ("strict", "warn", "off"):
            raise ValueError(
                f"analysis must be 'strict', 'warn' or 'off', got "
                f"{self.analysis!r}"
            )
        if self.device not in available_array_backends():
            raise ValueError(
                f"device must name a registered array backend "
                f"({', '.join(available_array_backends())}), got "
                f"{self.device!r}; torch/cupy are only available when the "
                f"package is installed, and an unset device defaults to the "
                f"REPRO_DEVICE environment variable"
            )

    def effective_device(self) -> str:
        """The array backend the data plane will actually run on.

        The scalar kernel and the python restructure pipeline are
        per-object Python oracles with no device representation, so
        selecting either pins the run to the numpy backend; the
        configured ``device`` applies to the all-vector pipeline.
        """
        if self.kernel == "scalar" or self.restructure == "python":
            return "numpy"
        return self.device

    @property
    def pathpulse_fraction(self) -> float:
        """Minimum pulse width as a fraction of the gate delay."""
        return self.pathpulse_percent / 100.0

    @property
    def waveform_pool_words(self) -> int:
        """Capacity of the waveform memory pool in 4-byte words.

        The paper stores waveform entries as 32-bit integers, so a 24 GB pool
        holds 6G entries.  Scaled-down runs can pass a smaller
        ``device_memory_gb`` to exercise the segmentation path.
        """
        pool_bytes = self.device_memory_gb * self.waveform_pool_fraction * 1e9
        return int(pool_bytes // 4)

    def with_updates(self, **kwargs) -> "SimConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: The configuration used throughout the paper's single-GPU experiments.
#: Pinned to the numpy device so importing the package never depends on the
#: REPRO_DEVICE environment variable being valid — a bad env value surfaces
#: at first use-time ``SimConfig()`` construction, not at import.
PAPER_DEFAULT_CONFIG = SimConfig(device="numpy")
