"""Clocked (sequential) simulation: the shared frame-loop driver.

GATSPI simulates the combinational logic between register boundaries; this
module closes the loop around it.  A clocked run of ``n`` cycles executes
``n`` *frames* — frame ``k`` covers ``[k*P, (k+1)*P)`` for clock period
``P`` — through any combinational executor, committing the register file at
each frame boundary:

* **Capture edges sit at multiples of the period** (``P, 2P, ... nP``).
  The capture closing frame ``k`` samples every register's D/EN/sync-reset
  level as the value settled at the end of the frame, commits the packed
  state vector in one vectorized step
  (:func:`repro.core.vector_kernel.register_next_state`), and schedules the
  Q transition at ``edge + clk_to_q`` — which lands *inside* the next
  frame, where it propagates as an ordinary source event.
* **The clock is generated analytically per frame** (low through frame 0,
  then high for the first half of every frame), never materialized over
  the whole horizon — million-cycle replays stay O(frame).
* **A pending-event ledger carries Q transitions across frame
  boundaries**: capture and async-reset events are stored at absolute
  times and consumed by whichever frame contains them, so clk-to-q spill
  is exact.
* **Async resets** must be primary-input nets (their in-frame activity has
  to be known before the frame runs); an assertion at time ``t`` forces Q
  to the reset value at ``t + clk_to_q`` and dominates the next captures
  for as long as it is held.

The driver is deliberately executor-agnostic: ``run_frame`` is any callable
running one combinational frame (the vector/scalar GATSPI engine, the
sharded session, the event-driven or zero-delay references), which is what
keeps clocked runs bit-identical across every backend — the register
semantics live here, once.  The one assumption inherited from the paper's
re-simulation model is that combinational activity settles within each
cycle: events still in flight at a frame boundary are not carried into the
next frame.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
    TYPE_CHECKING,
)

from ..netlist.netlist import Netlist
from .contract import StimulusError
from .register_file import RegisterFile, build_register_file
from .restructure import StreamingSourceEvents
from .results import PhaseTimings, SimulationResult, SimulationStats
from .vector_kernel import register_next_state
from .waveform import Waveform, concatenate_windows
from .xp import HOST

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..power.activity import StreamResult

#: One combinational frame: ``run_frame(stimulus, duration)`` simulates the
#: frame-local stimulus (every source net, times rebased to 0) for
#: ``duration`` time units and returns a result with per-net waveforms.
FrameRunner = Callable[[Mapping[str, Waveform], int], SimulationResult]

#: Stimulus accepted by the clocked entry points: in-memory waveforms per
#: primary input, or a span producer for out-of-core runs.
ClockedStimulus = Union[Mapping[str, Waveform], StreamingSourceEvents]


class ClockedSimulationError(ValueError):
    """Raised when a design or request cannot be clock-stepped."""


@dataclass(frozen=True)
class ClockedPlan:
    """Pre-validated geometry of a clocked run over one design."""

    register_file: RegisterFile
    clock_net: str
    clock_period: int
    #: Primary inputs the caller must provide waveforms for (every PI
    #: except the generated clock).
    pi_nets: Tuple[str, ...]


def plan_clocked_run(
    netlist: Netlist,
    clock_period: int,
    clock: Optional[str] = None,
    reset: Optional[str] = None,
) -> ClockedPlan:
    """Validate a design for clock-stepping and pack its register file.

    ``clock`` (e.g. ``SimConfig.clock``) pins the clock net; when omitted
    it is inferred from the register clock pins, which must agree on a
    single net.  ``reset`` optionally asserts that every resettable
    register uses that net.  Raises :class:`ClockedSimulationError` for
    designs the frame loop cannot step: no registers, latches, multiple
    clock domains, gated (non-primary-input) clocks, non-primary-input
    async resets, or clk-to-q delays reaching the clock period.
    """
    register_file = build_register_file(netlist)
    if len(register_file) == 0:
        raise ClockedSimulationError(
            f"design {netlist.name!r} has no sequential elements; use the "
            f"combinational run() entry point instead of run_cycles()"
        )
    if clock_period < 2:
        raise ClockedSimulationError(
            f"clock_period must be at least 2 to fit a half-period clock "
            f"waveform, got {clock_period}"
        )
    clock_nets = sorted(set(register_file.clock_nets))
    if clock is None:
        if len(clock_nets) > 1:
            raise ClockedSimulationError(
                f"design {netlist.name!r} has registers on multiple clock "
                f"nets {clock_nets}; run_cycles supports a single clock "
                f"domain (pass SimConfig(clock=...) to pick one explicitly "
                f"only when the others are tied)"
            )
        clock = clock_nets[0]
    else:
        rogue = [c for c in clock_nets if c != clock]
        if rogue:
            raise ClockedSimulationError(
                f"registers are clocked by {rogue} but the configured clock "
                f"is {clock!r}"
            )
    if clock not in netlist.inputs:
        raise ClockedSimulationError(
            f"clock net {clock!r} is not a primary input; gated or "
            f"internally generated clocks cannot be stepped by run_cycles"
        )
    if reset is not None:
        mismatched = sorted(
            {
                net
                for net, has in zip(
                    register_file.reset_nets, register_file.has_reset
                )
                if bool(has) and net != reset
            }
        )
        if mismatched:
            raise ClockedSimulationError(
                f"registers reset by {mismatched} but the configured reset "
                f"is {reset!r}"
            )
    hnp = HOST
    async_mask = register_file.reset_async & register_file.has_reset
    for index in range(len(register_file)):
        if bool(async_mask[index]):
            net = register_file.reset_nets[index]
            if net not in netlist.inputs:
                raise ClockedSimulationError(
                    f"async reset net {net!r} of register "
                    f"{register_file.names[index]!r} is not a primary "
                    f"input; mid-cycle async activity must be known before "
                    f"the frame runs"
                )
    max_clk2q = int(
        max(
            int(hnp.to_host(hnp.asarray(register_file.clk_to_q_rise)).max()),
            int(hnp.to_host(hnp.asarray(register_file.clk_to_q_fall)).max()),
        )
    )
    if max_clk2q >= clock_period:
        raise ClockedSimulationError(
            f"clk-to-q delay {max_clk2q} reaches the clock period "
            f"{clock_period}; Q transitions must land within the next cycle"
        )
    pi_nets = tuple(n for n in netlist.inputs if n != clock)
    return ClockedPlan(
        register_file=register_file,
        clock_net=clock,
        clock_period=clock_period,
        pi_nets=pi_nets,
    )


def validate_clocked_stimulus(
    plan: ClockedPlan, stimulus: ClockedStimulus
) -> None:
    """Check a clocked stimulus covers the PIs and nothing driver-owned."""
    if isinstance(stimulus, StreamingSourceEvents):
        provided = set(stimulus.nets)
    else:
        provided = set(stimulus)
    missing = sorted(set(plan.pi_nets) - provided)
    if missing:
        raise StimulusError(
            f"clocked stimulus is missing waveforms for primary inputs "
            f"{missing[:10]}"
        )
    if plan.clock_net in provided:
        raise StimulusError(
            f"clock net {plan.clock_net!r} is generated by run_cycles "
            f"(rising edges at every clock period); do not supply it"
        )
    owned = sorted(provided & set(plan.register_file.q_nets))
    if owned:
        raise StimulusError(
            f"register output nets {owned[:10]} are simulated state under "
            f"run_cycles; do not supply waveforms for them"
        )


def _clock_frame(frame_index: int, period: int) -> Waveform:
    """The clock's window for one frame: low through frame 0, then high
    for the first half-period of every frame (the rising edge is the
    frame-boundary establish change; the capture itself is driver-level)."""
    if frame_index == 0:
        return Waveform.constant(0)
    return Waveform.from_initial_and_toggles(1, [period // 2])


class _ClockedRun:
    """State of one in-progress clocked run (shared by both entry points)."""

    def __init__(
        self,
        plan: ClockedPlan,
        stimulus: ClockedStimulus,
        cycles: int,
        run_frame: FrameRunner,
    ) -> None:
        if cycles < 1:
            raise ClockedSimulationError("cycles must be at least 1")
        validate_clocked_stimulus(plan, stimulus)
        self.plan = plan
        self.cycles = cycles
        self.run_frame = run_frame
        self._stimulus = stimulus
        rf = plan.register_file
        self._state = rf.initial_state()
        self._scheduled: List[int] = [int(v) for v in HOST.to_host(self._state)]
        self._pending: List[List[Tuple[int, int]]] = [[] for _ in rf.names]
        self._async_indices: List[int] = [
            i
            for i in range(len(rf))
            if bool(rf.has_reset[i]) and bool(rf.reset_async[i])
        ]
        # Reset level at the end of the previous frame, for detecting
        # assertions that land exactly on a frame boundary (they fold into
        # the window's establish value).  Starting "inactive" makes a
        # reset held active from t=0 scan as an assertion at t=0.
        self._reset_prev: Dict[int, int] = {
            i: (1 if bool(rf.reset_active_low[i]) else 0)
            for i in self._async_indices
        }
        self.register_state: Dict[str, int] = {
            name: int(v)
            for name, v in zip(rf.names, HOST.to_host(self._state))
        }
        self.timings = PhaseTimings()
        self.stats = SimulationStats()
        self._frames_folded = 0

    # ------------------------------------------------------------------
    # Per-frame stimulus
    # ------------------------------------------------------------------
    def _pi_frame(self, start: int, end: int) -> Dict[str, Waveform]:
        stimulus = self._stimulus
        if isinstance(stimulus, StreamingSourceEvents):
            span = stimulus.span_events(start, end, retire_before=start)
            waves: Dict[str, Waveform] = {}
            pi_set = set(self.plan.pi_nets)
            times = HOST.to_host(span.times)
            offsets = HOST.to_host(span.offsets)
            initial = HOST.to_host(span.initial_values)
            for index, net in enumerate(span.nets):
                if net not in pi_set:
                    continue
                toggles = [
                    int(t) - start
                    for t in times[offsets[index]:offsets[index + 1]]
                ]
                waves[net] = Waveform.from_initial_and_toggles(
                    int(initial[index]), toggles
                )
            return waves
        return {
            net: stimulus[net].window(start, end, rebase=True)
            for net in self.plan.pi_nets
        }

    def _scan_async_resets(
        self, start: int, end: int, pi_waves: Mapping[str, Waveform]
    ) -> None:
        rf = self.plan.register_file
        for index in self._async_indices:
            wave = pi_waves[rf.reset_nets[index]]
            active = 0 if bool(rf.reset_active_low[index]) else 1
            assert_times: List[int] = []
            previous = self._reset_prev[index]
            for time, value in wave.changes():
                if value == active and previous != active:
                    assert_times.append(time)
                previous = value
            self._reset_prev[index] = previous
            if not assert_times:
                continue
            value = int(rf.reset_values[index])
            delay = int(
                rf.clk_to_q_rise[index] if value else rf.clk_to_q_fall[index]
            )
            for time in assert_times:
                if self._scheduled[index] != value:
                    self._pending[index].append((start + time + delay, value))
                    self._scheduled[index] = value

    def _q_frame(self, start: int, end: int) -> Dict[str, Waveform]:
        rf = self.plan.register_file
        waves: Dict[str, Waveform] = {}
        for index, q_net in enumerate(rf.q_nets):
            events = self._pending[index]
            if events:
                consumed = [e for e in events if e[0] < end]
                self._pending[index] = [e for e in events if e[0] >= end]
            else:
                consumed = []
            current = int(self._state[index])
            establish = current
            toggles: List[int] = []
            if consumed:
                # Stable sort + last-wins on equal timestamps: an async
                # force emitted after a capture event at the same instant
                # deliberately overrides it.
                consumed.sort(key=lambda e: e[0])
                merged: Dict[int, int] = {}
                for time, value in consumed:
                    merged[time] = value
                for time, value in merged.items():
                    if time <= start:
                        current = value
                        establish = value
                    elif value != current:
                        toggles.append(time - start)
                        current = value
            waves[q_net] = Waveform.from_initial_and_toggles(establish, toggles)
            self._state[index] = current
        return waves

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def _sample(
        self,
        net: str,
        frame_waves: Mapping[str, Waveform],
        result: SimulationResult,
    ) -> int:
        wave = frame_waves.get(net)
        if wave is None:
            wave = result.waveforms.get(net)
        if wave is None:
            raise ClockedSimulationError(
                f"cannot sample net {net!r} at the capture edge: the frame "
                f"result carries no waveform for it (run_cycles requires "
                f"SimConfig(store_waveforms=True))"
            )
        return wave.final_value

    def _capture(
        self,
        end: int,
        frame_waves: Mapping[str, Waveform],
        result: SimulationResult,
    ) -> None:
        rf = self.plan.register_file
        hnp = HOST
        count = len(rf)
        d_vals = hnp.zeros(count, dtype=hnp.int8)
        en_vals = hnp.zeros(count, dtype=hnp.int8)
        rst_vals = hnp.zeros(count, dtype=hnp.int8)
        for index in range(count):
            d_vals[index] = self._sample(rf.d_nets[index], frame_waves, result)
            if bool(rf.has_enable[index]):
                en_vals[index] = self._sample(
                    rf.enable_nets[index], frame_waves, result
                )
            if bool(rf.has_reset[index]):
                rst_vals[index] = self._sample(
                    rf.reset_nets[index], frame_waves, result
                )
        next_vals = register_next_state(
            self._state,
            d_vals,
            en_vals,
            rst_vals,
            has_enable=rf.has_enable,
            has_reset=rf.has_reset,
            reset_active_low=rf.reset_active_low,
            reset_values=rf.reset_values,
        )
        for index in range(count):
            value = int(next_vals[index])
            if value != self._scheduled[index]:
                delay = int(
                    rf.clk_to_q_rise[index]
                    if value
                    else rf.clk_to_q_fall[index]
                )
                self._pending[index].append((end + delay, value))
                self._scheduled[index] = value
        self.register_state = {
            name: int(v) for name, v in zip(rf.names, HOST.to_host(next_vals))
        }

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _fold(self, result: SimulationResult) -> None:
        for spec in dataclass_fields(PhaseTimings):
            setattr(
                self.timings,
                spec.name,
                getattr(self.timings, spec.name)
                + getattr(result.timings, spec.name),
            )
        stats = self.stats
        frame = result.stats
        if self._frames_folded == 0:
            stats.gate_count = frame.gate_count
            stats.levels = frame.levels
            stats.widest_level = frame.widest_level
            stats.kernel_mode = frame.kernel_mode
            stats.restructure_mode = frame.restructure_mode
            stats.device = frame.device
            stats.shards = frame.shards
            stats.segments = 0
        stats.windows += frame.windows
        stats.segments += frame.segments
        stats.input_events += frame.input_events
        stats.output_transitions += frame.output_transitions
        stats.kernel_invocations += frame.kernel_invocations
        stats.level_batches += frame.level_batches
        stats.max_batch_tasks = max(stats.max_batch_tasks, frame.max_batch_tasks)
        stats.pool_words_used = max(stats.pool_words_used, frame.pool_words_used)
        self._frames_folded += 1

    # ------------------------------------------------------------------
    # The frame loop
    # ------------------------------------------------------------------
    def frames(self) -> Iterator[Tuple[int, Dict[str, Waveform], SimulationResult]]:
        period = self.plan.clock_period
        for frame_index in range(self.cycles):
            start = frame_index * period
            end = start + period
            frame_waves = self._pi_frame(start, end)
            self._scan_async_resets(start, end, frame_waves)
            frame_waves.update(self._q_frame(start, end))
            frame_waves[self.plan.clock_net] = _clock_frame(frame_index, period)
            result = self.run_frame(frame_waves, period)
            self._capture(end, frame_waves, result)
            self._fold(result)
            yield frame_index, frame_waves, result


def run_clocked(
    plan: ClockedPlan,
    stimulus: ClockedStimulus,
    cycles: int,
    run_frame: FrameRunner,
) -> SimulationResult:
    """Run ``cycles`` clocked frames and stitch full-horizon waveforms.

    The whole-run clocked entry point: every net's per-frame windows are
    concatenated (frame-boundary value changes become boundary toggles,
    exactly as :func:`~repro.core.waveform.concatenate_windows` defines),
    toggle counts are derived from the stitched waveforms, and the final
    committed register state is attached as ``result.register_state``.
    """
    run = _ClockedRun(plan, stimulus, cycles, run_frame)
    windows: Dict[str, List[Waveform]] = {}
    for _, frame_waves, result in run.frames():
        merged = dict(frame_waves)
        merged.update(result.waveforms)
        for net, wave in merged.items():
            windows.setdefault(net, []).append(wave)
    period = plan.clock_period
    waveforms: Dict[str, Waveform] = {}
    toggle_counts: Dict[str, int] = {}
    for net, waves in windows.items():
        if len(waves) != cycles:
            raise ClockedSimulationError(
                f"net {net!r} produced {len(waves)} frame waveforms for "
                f"{cycles} cycles; frame results are inconsistent"
            )
        stitched = concatenate_windows(waves, period)
        waveforms[net] = stitched
        toggle_counts[net] = stitched.toggle_count()
    return SimulationResult(
        toggle_counts=toggle_counts,
        waveforms=waveforms,
        duration=cycles * period,
        timings=run.timings,
        stats=run.stats,
        register_state=dict(run.register_state),
    )


def run_clocked_stream(
    plan: ClockedPlan,
    stimulus: ClockedStimulus,
    cycles: int,
    run_frame: FrameRunner,
) -> "StreamResult":
    """Run ``cycles`` clocked frames at constant memory.

    The streaming counterpart of :func:`run_clocked`: each frame's
    waveforms are folded into running toggle counts and SAIF T0/T1 totals
    and then discarded, so million-cycle sequential replays retain nothing
    proportional to the run (pair it with a
    :class:`~repro.core.restructure.StreamingSourceEvents` stimulus to keep
    the input side O(frame) too).  Toggle counts and SAIF activity are
    bit-identical to a whole-run :func:`run_clocked`.
    """
    from ..power.activity import StreamResult
    from ..waveforms.saif import NetActivity

    run = _ClockedRun(plan, stimulus, cycles, run_frame)
    period = plan.clock_period
    counts: Dict[str, int] = {}
    high: Dict[str, int] = {}
    prev_final: Dict[str, int] = {}
    for _, frame_waves, result in run.frames():
        merged = dict(frame_waves)
        merged.update(result.waveforms)
        for net, wave in merged.items():
            boundary = int(
                net in prev_final and wave.initial_value != prev_final[net]
            )
            counts[net] = counts.get(net, 0) + wave.toggle_count() + boundary
            high[net] = high.get(net, 0) + wave.duration_at(1, 0, period)
            prev_final[net] = wave.final_value
    duration = cycles * period
    activities = {
        net: NetActivity(t0=duration - high[net], t1=high[net], tc=counts[net])
        for net in counts
    }
    run.stats.streamed = True
    run.stats.chunks = cycles
    return StreamResult(
        duration=duration,
        toggle_counts=counts,
        activities=activities,
        timings=run.timings,
        stats=run.stats,
        register_state=dict(run.register_state),
    )
