"""The GATSPI re-simulation engine.

This is the paper's simulation flow (Fig. 5) end to end:

1. *Compile* the netlist: levelize the combinational logic, translate every
   cell's logic function into a truth-table array and every SDF delay into a
   conditional delay-lookup array (Fig. 4).
2. *Restructure* the testbench: slice every source waveform (primary inputs
   and sequential-element outputs) into ``cycle_parallelism`` independent
   windows.
3. *Load* the windows into the pre-allocated device-memory waveform pool.
4. For every logic level, launch the per-gate/per-window kernel twice: the
   count pass sizes the output waveforms so their start addresses can be laid
   out in the pool, the store pass writes them (Algorithm 1).
5. *Read back* toggle counts and waveforms for SAIF generation.

If the waveform pool cannot hold a full run, the windows are split into
sequential segments and the engine is invoked once per segment, exactly as
the paper describes for testbenches that exceed device memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist import CompiledGraph, Netlist, compile_netlist, levelize
from ..sdf.annotate import DelayAnnotation, default_annotation
from .config import SimConfig
from .contract import (
    StimulusError,
    fanin_weighted_toggles,
    normalize_horizon,
    validate_stimulus,
)
from .kernel import GateKernelInputs, GateKernelResult, simulate_gate_window
from .memory import DeviceMemoryError, WaveformPool
from .results import PhaseTimings, SimulationResult, SimulationStats
from .waveform import EOW, Waveform


@dataclass
class _WindowRange:
    index: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


class GatspiEngine:
    """GPU-style levelized two-pass gate re-simulator.

    Registered as the ``"gatspi"`` backend in :mod:`repro.api`; new code
    should reach it via ``get_backend("gatspi").prepare(...)`` rather than
    instantiating this class directly.
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
    ):
        self.netlist = netlist
        self.annotation = annotation or default_annotation(netlist)
        self.config = config or SimConfig()
        self._compiled: Optional[CompiledGraph] = None
        self._gate_inputs: Dict[str, GateKernelInputs] = {}
        self._compile_time = 0.0
        self._estimated_path_delay = 0

    # ------------------------------------------------------------------
    # Compilation (netlist + SDF -> arrays)
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledGraph:
        if self._compiled is None:
            self.compile()
        return self._compiled

    def compile(self) -> CompiledGraph:
        """Levelize the netlist and build all lookup arrays."""
        start = time.perf_counter()
        # Recompiling must not keep lookup arrays from a previous compile
        # (stale gates would survive annotation/config changes).
        self._gate_inputs.clear()
        levelization = levelize(self.netlist)
        compiled = compile_netlist(self.netlist, levelization)
        annotation = self.annotation
        if not self.config.full_sdf:
            annotation = annotation.with_averaged_sdf()
        library = self.netlist.library
        for gate in compiled.gates.values():
            cell = self.netlist.instances[gate.name].cell
            truth_table = library.truth_table(gate.cell_name).table
            if cell.num_inputs == 0:
                self._gate_inputs[gate.name] = GateKernelInputs(
                    truth_table=truth_table,
                    delay_arrays=(),
                    wire_rise=(),
                    wire_fall=(),
                )
                continue
            table = annotation.table_for(gate.name)
            delay_arrays = tuple(table.table_for(pin) for pin in cell.inputs)
            wire_rise = []
            wire_fall = []
            for pin in cell.inputs:
                wire = annotation.wire_delay(gate.name, pin)
                wire_rise.append(float(wire.rise))
                wire_fall.append(float(wire.fall))
            self._gate_inputs[gate.name] = GateKernelInputs(
                truth_table=truth_table,
                delay_arrays=delay_arrays,
                wire_rise=tuple(wire_rise),
                wire_fall=tuple(wire_fall),
            )
        # Estimate the critical path delay; it bounds how far an event can
        # still propagate past a cycle-parallel window boundary and therefore
        # sizes the default settle margin (window overlap).
        max_wire = 0.0
        for wire in annotation.interconnect.values():
            max_wire = max(max_wire, wire.rise, wire.fall)
        self._estimated_path_delay = int(
            compiled.depth * (annotation.max_gate_delay() + max_wire)
        )
        self._compiled = compiled
        self._compile_time = time.perf_counter() - start
        return compiled

    @property
    def window_overlap(self) -> int:
        """Settle margin prepended to every cycle-parallel window."""
        if self.config.window_overlap is not None:
            return self.config.window_overlap
        return self._estimated_path_delay

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Re-simulate the combinational logic for the given testbench.

        ``stimulus`` must provide a waveform for every source net (primary
        input or sequential-element output).  ``duration`` defaults to
        ``cycles * clock_period``; one of the two must be given.
        """
        compiled = self.compiled
        config = self.config
        cycles, duration = normalize_horizon(cycles, duration, config.clock_period)
        validate_stimulus(self.netlist, stimulus)

        windows = self._window_ranges(duration)
        timings = PhaseTimings()
        stats = SimulationStats(
            gate_count=compiled.gate_count,
            levels=compiled.depth,
            widest_level=compiled.levelization.widest_level,
            windows=len(windows),
            cycles=cycles,
        )

        window_outputs: Dict[str, Dict[int, Waveform]] = {}
        segments = self._segment_windows(
            stimulus, windows, duration, timings, stats, window_outputs
        )
        stats.segments = segments

        result = self._assemble_result(
            stimulus, windows, window_outputs, duration, timings, stats
        )
        return result

    # ------------------------------------------------------------------
    # Window / segment management
    # ------------------------------------------------------------------
    def _window_ranges(self, duration: int) -> List[_WindowRange]:
        parallelism = self.config.cycle_parallelism
        window_length = max(1, -(-duration // parallelism))  # ceil division
        ranges: List[_WindowRange] = []
        start = 0
        index = 0
        while start < duration:
            end = min(start + window_length, duration)
            ranges.append(_WindowRange(index=index, start=start, end=end))
            start = end
            index += 1
        if not ranges:
            ranges.append(_WindowRange(index=0, start=0, end=max(1, duration)))
        return ranges

    def _segment_windows(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
        window_outputs: Dict[str, Dict[int, Waveform]],
    ) -> int:
        """Simulate windows, splitting into segments if the pool overflows."""
        pending: List[Sequence[_WindowRange]] = [list(windows)]
        segments = 0
        retries = 0
        while pending:
            batch = pending.pop(0)
            try:
                self._simulate_batch(
                    stimulus, batch, duration, timings, stats, window_outputs
                )
                segments += 1
            except DeviceMemoryError:
                retries += 1
                if len(batch) <= 1 or retries > self.config.max_segment_retries:
                    raise
                middle = len(batch) // 2
                pending.insert(0, batch[middle:])
                pending.insert(0, batch[:middle])
        return segments

    def _simulate_batch(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
        window_outputs: Dict[str, Dict[int, Waveform]],
    ) -> None:
        config = self.config
        compiled = self.compiled
        pool = WaveformPool(config.waveform_pool_words)
        overlap = self.window_overlap

        # Restructure source waveforms into windows (cycle parallelism).  Each
        # window is extended backwards by the settle margin so events still
        # propagating across the window boundary are reproduced exactly; the
        # margin region is trimmed from the outputs below.
        start = time.perf_counter()
        sliced: Dict[Tuple[str, int], Waveform] = {}
        extended_starts: Dict[int, int] = {}
        for window in windows:
            extended_starts[window.index] = max(0, window.start - overlap)
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            for window in windows:
                sliced[(net, window.index)] = wave.window(
                    extended_starts[window.index], window.end, rebase=True
                )
        timings.restructure += time.perf_counter() - start

        # Load the windows into the device memory pool.
        start = time.perf_counter()
        for (net, window_index), wave in sliced.items():
            pool.store_waveform(net, window_index, wave)
        timings.host_to_device += time.perf_counter() - start

        # Level-by-level two-pass simulation.
        for level in compiled.gates_by_level:
            schedule_start = time.perf_counter()
            tasks = [
                (gate, window)
                for gate in level
                for window in windows
            ]
            timings.scheduling += time.perf_counter() - schedule_start

            kernel_start = time.perf_counter()
            first_pass: Dict[Tuple[str, int], GateKernelResult] = {}
            for gate, window in tasks:
                pointers = [
                    pool.pointer(net, window.index) for net in gate.input_nets
                ]
                result = simulate_gate_window(
                    pool.data,
                    pointers,
                    self._gate_inputs[gate.name],
                    pathpulse_fraction=config.pathpulse_fraction,
                    net_delay_filtering=config.enable_net_delay_filtering,
                )
                first_pass[(gate.name, window.index)] = result
                stats.kernel_invocations += 1
            timings.kernel += time.perf_counter() - kernel_start

            # Lay out output waveform addresses from the count pass.
            schedule_start = time.perf_counter()
            addresses: Dict[Tuple[str, int], int] = {}
            for gate, window in tasks:
                size = first_pass[(gate.name, window.index)].storage_words
                addresses[(gate.output_net, window.index)] = pool.allocate(size)
            timings.scheduling += time.perf_counter() - schedule_start

            # Store pass: re-run the kernel (as the paper does) and write the
            # output waveforms at their assigned addresses.
            kernel_start = time.perf_counter()
            for gate, window in tasks:
                key = (gate.name, window.index)
                if config.two_pass:
                    result = simulate_gate_window(
                        pool.data,
                        [pool.pointer(net, window.index) for net in gate.input_nets],
                        self._gate_inputs[gate.name],
                        pathpulse_fraction=config.pathpulse_fraction,
                        net_delay_filtering=config.enable_net_delay_filtering,
                    )
                    stats.kernel_invocations += 1
                else:
                    result = first_pass[key]
                pool.store_kernel_output(
                    gate.output_net,
                    window.index,
                    addresses[(gate.output_net, window.index)],
                    result.initial_value,
                    result.toggle_times,
                )
            timings.kernel += time.perf_counter() - kernel_start

        # Read back gate output waveforms for this batch of windows, trimming
        # each one to exactly [start, end): the settle margin on the left is
        # discarded, and so is any propagation tail past the right edge (the
        # next window reproduces it with full knowledge of its stimulus).
        # Only the final window keeps its tail, since nothing follows it.
        start = time.perf_counter()
        for gate in compiled.gates.values():
            per_net = window_outputs.setdefault(gate.output_net, {})
            for window in windows:
                wave = pool.read_waveform(gate.output_net, window.index)
                margin = window.start - extended_starts[window.index]
                if overlap > 0 and window.end < duration:
                    right_edge = window.end - extended_starts[window.index]
                else:
                    right_edge = EOW - 1
                if margin > 0 or right_edge != EOW - 1:
                    wave = wave.window(margin, right_edge, rebase=True)
                per_net[window.index] = wave
        stats.pool_words_used = max(stats.pool_words_used, pool.used_words)
        timings.readback += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _assemble_result(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        window_outputs: Dict[str, Dict[int, Waveform]],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> SimulationResult:
        start = time.perf_counter()
        result = SimulationResult(
            duration=duration, timings=timings, stats=stats
        )

        # Source nets: toggle counts (and waveforms) from the original
        # stimulus, clipped to the simulated duration.
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            if self.config.store_waveforms:
                result.waveforms[net] = wave

        # Gate output nets: stitch per-window results back together.  When
        # full waveforms are kept, toggle counts come from the stitched
        # waveform so transitions landing exactly on a window seam are
        # counted once; otherwise the per-window counts are summed.
        total_output_transitions = 0
        for net, per_window in window_outputs.items():
            if self.config.store_waveforms:
                stitched = self._stitch(net, per_window, windows)
                result.waveforms[net] = stitched
                count = stitched.toggle_count()
            else:
                count = sum(w.toggle_count() for w in per_window.values())
            result.toggle_counts[net] = count
            total_output_transitions += count
        stats.output_transitions = total_output_transitions

        # Input events seen by gates = fanout-weighted net transitions.
        stats.input_events = fanin_weighted_toggles(self.netlist, result.toggle_counts)

        timings.readback += time.perf_counter() - start
        return result

    def _stitch(
        self,
        net: str,
        per_window: Dict[int, Waveform],
        windows: Sequence[_WindowRange],
    ) -> Waveform:
        changes: List[Tuple[int, int]] = []
        for window in windows:
            wave = per_window.get(window.index)
            if wave is None:
                continue
            for local_time, value in wave.changes():
                absolute = local_time + window.start
                if changes and changes[-1][1] == value:
                    continue
                if changes and absolute <= changes[-1][0]:
                    # A window-boundary artefact (a transition recorded right
                    # at the seam); keep the earlier one.
                    continue
                changes.append((absolute, value))
        if not changes:
            changes = [(0, 0)]
        return Waveform.from_changes(changes)


def simulate(
    netlist: Netlist,
    stimulus: Mapping[str, Waveform],
    cycles: Optional[int] = None,
    duration: Optional[int] = None,
    annotation: Optional[DelayAnnotation] = None,
    config: Optional[SimConfig] = None,
) -> SimulationResult:
    """One-call convenience wrapper (deprecated).

    Prefer the unified entry point::

        from repro.api import get_backend
        get_backend("gatspi").prepare(netlist, annotation, config).run(...)

    which supports every registered backend and reuses the compiled design
    across runs.
    """
    from ..api import get_backend

    session = get_backend("gatspi").prepare(
        netlist, annotation=annotation, config=config
    )
    return session.run(stimulus, cycles=cycles, duration=duration)
