"""The GATSPI re-simulation engine.

This is the paper's simulation flow (Fig. 5) end to end:

1. *Compile* the netlist: levelize the combinational logic, translate every
   cell's logic function into a truth-table array and every SDF delay into a
   conditional delay-lookup array (Fig. 4), pack everything into
   struct-of-arrays design tensors, and materialize them on the configured
   array backend (:mod:`repro.core.xp`).  Compiles are memoized process-wide
   (:mod:`repro.core.compile_cache`) so repeated sessions on the same design
   reuse the packed tensors.
2. *Restructure* the testbench: slice every source waveform (primary inputs
   and sequential-element outputs) into ``cycle_parallelism`` independent
   windows.
3. *Load* the windows into the pre-allocated device-memory waveform pool.
4. For every logic level, launch the per-gate/per-window kernel twice: the
   count pass sizes the output waveforms so their start addresses can be laid
   out in the pool, the store pass writes them (Algorithm 1).
5. *Read back* toggle counts and waveforms for SAIF generation.

On a non-numpy device the vector pipeline crosses the host/device boundary
exactly twice per run: the lowered stimulus event tensors move *in* once
(:meth:`~repro.core.restructure.SourceEvents.to_device`, step 2) and the
trimmed readback moves *out* once per segment batch
(:meth:`~repro.core.restructure.TrimmedReadback.to_host`, step 5).  Window
descriptors (a handful of scalars per batch) ride along with the kernel
launches, exactly like CUDA launch parameters.

If the waveform pool cannot hold a full run, the windows are split into
sequential segments and the engine is invoked once per segment, exactly as
the paper describes for testbenches that exceed device memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import CompiledGraph, Netlist, compile_netlist, levelize
from ..sdf.annotate import DelayAnnotation, default_annotation
from . import compile_cache
from .config import SimConfig
from .contract import (
    StimulusError,
    fanin_weighted_toggles,
    normalize_horizon,
    validate_stimulus,
)
from .kernel import GateKernelInputs, GateKernelResult, simulate_gate_window
from .memory import DeviceMemoryError, WaveformPool
from .restructure import (
    SourceEvents,
    TrimmedReadback,
    gather_segments,
    lower_stimulus,
    slice_windows,
    stitch_windows,
    trim_readback,
)
from .results import PhaseTimings, SimulationResult, SimulationStats
from .vector_kernel import PackedDesign, pack_design, simulate_level, tile_level
from .waveform import EOW, INITIAL_ONE_MARKER, Waveform
from .xp import HOST, ArrayBackend, get_array_backend


@dataclass
class _WindowRange:
    index: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


class _ReadbackAccumulator:
    """Trimmed per-window outputs accumulated across segment batches.

    Batches arrive in window order (the segment queue preserves it), so
    concatenating a net's per-batch arrays yields its windows in run
    order — the shape :func:`~repro.core.restructure.stitch_windows`
    consumes.  Holding arrays instead of :class:`Waveform` objects is what
    lets result assembly stay vectorized end to end.  Batches land here
    *after* the device→host readback transfer, so accumulation is always
    host-side.
    """

    def __init__(self, nets: Tuple[str, ...]):
        self.nets = nets
        self._batches: List[TrimmedReadback] = []
        self._net_offsets: List = []

    def append(self, batch: TrimmedReadback) -> None:
        hnp = HOST
        offsets = hnp.zeros(len(self.nets) + 1, dtype=hnp.int64)
        offsets[1:] = hnp.cumsum(batch.counts.sum(axis=1))
        self._batches.append(batch)
        self._net_offsets.append(offsets)

    def net_series(self, index: int):
        """(establish_values, toggle_counts, times) of one net, all windows."""
        hnp = HOST
        establish = hnp.concatenate(
            [batch.establish_values[index] for batch in self._batches]
        )
        counts = hnp.concatenate([batch.counts[index] for batch in self._batches])
        times = hnp.concatenate(
            [
                batch.times[offsets[index] : offsets[index + 1]]
                for batch, offsets in zip(self._batches, self._net_offsets)
            ]
        )
        return establish, counts, times


class GatspiEngine:
    """GPU-style levelized two-pass gate re-simulator.

    Registered as the ``"gatspi"`` backend in :mod:`repro.api`; new code
    should reach it via ``get_backend("gatspi").prepare(...)`` rather than
    instantiating this class directly.
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
    ):
        self.netlist = netlist
        self.annotation = annotation or default_annotation(netlist)
        self.config = config or SimConfig()
        self._compiled: Optional[CompiledGraph] = None
        self._gate_inputs: Dict[str, GateKernelInputs] = {}
        self._packed: Optional[PackedDesign] = None
        self._xp: ArrayBackend = get_array_backend(self.config.effective_device())
        self._readback_net_ids = None
        self._source_net_ids = None
        self._compile_time = 0.0
        self._compile_cache_hit = False
        self._estimated_path_delay = 0

    # ------------------------------------------------------------------
    # Compilation (netlist + SDF -> arrays)
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledGraph:
        if self._compiled is None:
            self.compile()
        return self._compiled

    @property
    def packed_design(self) -> PackedDesign:
        """The compile-time struct-of-arrays design tensors (vector kernel).

        Built once per compile, materialized on the configured array
        backend, and reused by every run — including every device share of
        :func:`~repro.core.multi_gpu.simulate_multi_gpu`.
        """
        if self._packed is None:
            self.compile()
        return self._packed

    @property
    def xp(self) -> ArrayBackend:
        """The array backend the data plane runs on (see
        :meth:`SimConfig.effective_device`)."""
        return self._xp

    @property
    def compile_cache_hit(self) -> bool:
        """Whether the most recent :meth:`compile` reused cached artifacts."""
        return self._compile_cache_hit

    def compile(self) -> CompiledGraph:
        """Levelize the netlist and build all lookup arrays.

        Produces two equivalent views of the design: the per-gate
        :class:`GateKernelInputs` the scalar reference kernel consumes, and
        the packed :class:`PackedDesign` tensors the level-batched vector
        kernel executes (built from the very same truth/delay arrays, so the
        two kernels cannot diverge on compiled data).  Results are memoized
        process-wide by content fingerprint unless
        ``SimConfig(compile_cache=False)``.
        """
        start = time.perf_counter()
        self._xp = get_array_backend(self.config.effective_device())
        artifacts = None
        key = None
        netlist_fp = None
        if self.config.compile_cache:
            # prepare() seeds the fingerprint its analysis pass already
            # computed; outside prepare the handoff is empty and we hash.
            netlist_fp = compile_cache.consume_netlist_fingerprint(self.netlist)
            if netlist_fp is None:
                netlist_fp = compile_cache.fingerprint_netlist(self.netlist)
            key = compile_cache.compile_key(
                self.netlist,
                self.annotation,
                self.config,
                netlist_fingerprint=netlist_fp,
            )
            artifacts = compile_cache.lookup(key)
        self._compile_cache_hit = artifacts is not None
        if artifacts is None:
            artifacts = self._build_artifacts(netlist_fingerprint=netlist_fp)
            if key is not None:
                compile_cache.store(key, artifacts)
        # Cached artifacts are shared between engines and treated as
        # immutable; the one mapping the engine exposes for mutation-style
        # access (tests patch per-gate inputs) is copied per compile, which
        # also guarantees recompiles drop stale entries.
        self._compiled = artifacts.compiled
        self._gate_inputs = dict(artifacts.gate_inputs)
        self._packed = artifacts.packed
        self._readback_net_ids = artifacts.readback_net_ids
        self._source_net_ids = artifacts.source_net_ids
        self._estimated_path_delay = artifacts.estimated_path_delay
        self._compile_time = time.perf_counter() - start
        return self._compiled

    def _build_artifacts(
        self, netlist_fingerprint: Optional[str] = None
    ) -> compile_cache.CompiledArtifacts:
        """One full (uncached) compile: levelize, build lookup arrays, pack,
        and materialize the packed tensors on the configured backend."""
        gate_inputs: Dict[str, GateKernelInputs] = {}
        if netlist_fingerprint is not None:
            # prepare() analyzes before compiling; the analysis engine
            # levelizes through the same fingerprint-keyed memo, so this is
            # typically a hit and the design is walked once per prepare.
            levelization = compile_cache.levelize_cached(
                self.netlist, fingerprint=netlist_fingerprint
            )
        else:
            levelization = levelize(self.netlist)
        compiled = compile_netlist(self.netlist, levelization)
        annotation = self.annotation
        if not self.config.full_sdf:
            annotation = annotation.with_averaged_sdf()
        library = self.netlist.library
        for gate in compiled.gates.values():
            cell = self.netlist.instances[gate.name].cell
            truth_table = library.truth_table(gate.cell_name).table
            if cell.num_inputs == 0:
                gate_inputs[gate.name] = GateKernelInputs(
                    truth_table=truth_table,
                    delay_arrays=(),
                    wire_rise=(),
                    wire_fall=(),
                )
                continue
            table = annotation.table_for(gate.name)
            delay_arrays = tuple(table.table_for(pin) for pin in cell.inputs)
            wire_rise = []
            wire_fall = []
            for pin in cell.inputs:
                wire = annotation.wire_delay(gate.name, pin)
                wire_rise.append(float(wire.rise))
                wire_fall.append(float(wire.fall))
            gate_inputs[gate.name] = GateKernelInputs(
                truth_table=truth_table,
                delay_arrays=delay_arrays,
                wire_rise=tuple(wire_rise),
                wire_fall=tuple(wire_fall),
            )
        packed = pack_design(
            compiled.gates_by_level,
            gate_inputs,
            extra_nets=tuple(self.netlist.source_nets()),
        ).to_device(self._xp)
        # Net-id tensors of the two bulk registration paths — gate outputs
        # in readback order and stimulus sources in lowering order — cached
        # alongside the packed tensors so a cache hit skips the O(design)
        # rebuild and device upload.
        readback_net_ids = self._xp.asarray(
            [packed.net_index[gate.output_net] for gate in compiled.gates.values()],
            dtype=self._xp.int64,
        )
        source_net_ids = self._xp.asarray(
            [packed.net_index[net] for net in self.netlist.source_nets()],
            dtype=self._xp.int64,
        )
        # Estimate the critical path delay; it bounds how far an event can
        # still propagate past a cycle-parallel window boundary and therefore
        # sizes the default settle margin (window overlap).
        max_wire = 0.0
        for wire in annotation.interconnect.values():
            max_wire = max(max_wire, wire.rise, wire.fall)
        estimated_path_delay = int(
            compiled.depth * (annotation.max_gate_delay() + max_wire)
        )
        return compile_cache.CompiledArtifacts(
            compiled=compiled,
            gate_inputs=gate_inputs,
            packed=packed,
            readback_net_ids=readback_net_ids,
            source_net_ids=source_net_ids,
            estimated_path_delay=estimated_path_delay,
        )

    @property
    def window_overlap(self) -> int:
        """Settle margin prepended to every cycle-parallel window."""
        if self.config.window_overlap is not None:
            return self.config.window_overlap
        return self._estimated_path_delay

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Re-simulate the combinational logic for the given testbench.

        ``stimulus`` must provide a waveform for every source net (primary
        input or sequential-element output).  ``duration`` defaults to
        ``cycles * clock_period``; one of the two must be given.
        """
        compiled = self.compiled
        config = self.config
        cycles, duration = normalize_horizon(cycles, duration, config.clock_period)
        validate_stimulus(self.netlist, stimulus)

        windows = self._window_ranges(duration)
        self._check_sentinel_headroom(stimulus, windows)
        timings = PhaseTimings()
        stats = SimulationStats(
            gate_count=compiled.gate_count,
            levels=compiled.depth,
            widest_level=compiled.levelization.widest_level,
            windows=len(windows),
            cycles=cycles,
            kernel_mode=config.kernel,
            restructure_mode=config.restructure,
            device=self._xp.name,
        )

        if config.restructure == "vector":
            # Lower the stimulus once into flat event tensors; every
            # segment batch slices the same tensors.
            start = time.perf_counter()
            events = lower_stimulus(tuple(self.netlist.source_nets()), stimulus)
            timings.restructure += time.perf_counter() - start
            # Host→device transfer point (the only one of the stimulus
            # path): the lowered event tensors move to the device once.
            start = time.perf_counter()
            events = events.to_device(self._xp)
            timings.host_to_device += time.perf_counter() - start
            readback = _ReadbackAccumulator(
                tuple(gate.output_net for gate in compiled.gates.values())
            )
            stats.segments = self._segment_windows(
                windows,
                lambda batch: self._simulate_batch_vector(
                    events, batch, duration, timings, stats, readback
                ),
            )
            return self._assemble_result_vector(
                stimulus, windows, readback, duration, timings, stats
            )

        window_outputs: Dict[str, Dict[int, Waveform]] = {}
        stats.segments = self._segment_windows(
            windows,
            lambda batch: self._simulate_batch(
                stimulus, batch, duration, timings, stats, window_outputs
            ),
        )
        result = self._assemble_result(
            stimulus, windows, window_outputs, duration, timings, stats
        )
        return result

    def _check_sentinel_headroom(
        self, stimulus: Mapping[str, Waveform], windows: Sequence["_WindowRange"]
    ) -> None:
        """Refuse runs whose timestamps could reach the ``EOW`` sentinel.

        A toggle written at or beyond ``EOW`` (INT32_MAX) terminates its
        waveform early on readback — a silent wrong answer.  Window-local
        input times are bounded by both the longest extended window and the
        largest stimulus timestamp; adding the estimated critical-path delay
        bounds every output time the kernel can produce.
        """
        max_timestamp = 0
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            # data[-1] is EOW, data[-2] the final timestamp.
            max_timestamp = max(max_timestamp, int(wave.data[-2]))
        if max_timestamp >= EOW:
            raise StimulusError(
                f"stimulus contains a timestamp ({max_timestamp}) at or "
                f"beyond the EOW sentinel ({EOW}); such waveforms cannot be "
                f"represented in the array waveform format"
            )
        longest = max(window.length for window in windows) + self.window_overlap
        headroom = min(longest, max_timestamp) + self._estimated_path_delay
        if headroom >= EOW:
            raise StimulusError(
                f"stimulus timestamps approach the EOW sentinel ({EOW}): "
                f"window-local times up to {headroom} could be produced, "
                f"which would silently truncate output waveforms; shorten "
                f"the run or raise cycle_parallelism"
            )

    # ------------------------------------------------------------------
    # Window / segment management
    # ------------------------------------------------------------------
    def _window_ranges(self, duration: int) -> List[_WindowRange]:
        parallelism = self.config.cycle_parallelism
        window_length = max(1, -(-duration // parallelism))  # ceil division
        ranges: List[_WindowRange] = []
        start = 0
        index = 0
        while start < duration:
            end = min(start + window_length, duration)
            ranges.append(_WindowRange(index=index, start=start, end=end))
            start = end
            index += 1
        if not ranges:
            ranges.append(_WindowRange(index=0, start=0, end=max(1, duration)))
        return ranges

    def _make_pool(self, windows: Sequence[_WindowRange]) -> WaveformPool:
        """A per-batch waveform pool on the engine's array backend.

        Registration rows come from the design-wide net index built at
        pack time, so every bulk store/gather resolves ``(net, window)``
        pairs through flat index tables.
        """
        return WaveformPool(
            self.config.waveform_pool_words,
            xp=self._xp,
            net_index=self.packed_design.net_index,
            window_indices=[window.index for window in windows],
        )

    def _segment_windows(
        self,
        windows: Sequence[_WindowRange],
        simulate_batch,
    ) -> int:
        """Run ``simulate_batch`` over windows, splitting on pool overflow.

        The queue preserves window order across splits, so batches always
        cover the run front to back — the invariant result assembly (of
        either restructure pipeline) relies on.
        """
        pending: List[Sequence[_WindowRange]] = [list(windows)]
        segments = 0
        retries = 0
        while pending:
            batch = pending.pop(0)
            try:
                simulate_batch(batch)
                segments += 1
            except DeviceMemoryError:
                retries += 1
                if len(batch) <= 1 or retries > self.config.max_segment_retries:
                    raise
                middle = len(batch) // 2
                pending.insert(0, batch[middle:])
                pending.insert(0, batch[:middle])
        return segments

    def _simulate_batch(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
        window_outputs: Dict[str, Dict[int, Waveform]],
    ) -> None:
        config = self.config
        compiled = self.compiled
        pool = self._make_pool(windows)
        overlap = self.window_overlap

        # Restructure source waveforms into windows (cycle parallelism).  Each
        # window is extended backwards by the settle margin so events still
        # propagating across the window boundary are reproduced exactly; the
        # margin region is trimmed from the outputs below.
        start = time.perf_counter()
        sliced: Dict[Tuple[str, int], Waveform] = {}
        extended_starts: Dict[int, int] = {}
        for window in windows:
            extended_starts[window.index] = max(0, window.start - overlap)
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            for window in windows:
                sliced[(net, window.index)] = wave.window(
                    extended_starts[window.index], window.end, rebase=True
                )
        timings.restructure += time.perf_counter() - start

        # Load the windows into the device memory pool.
        start = time.perf_counter()
        for (net, window_index), wave in sliced.items():
            pool.store_waveform(net, window_index, wave)
        timings.host_to_device += time.perf_counter() - start

        # Level-by-level two-pass simulation through the configured kernel.
        if config.kernel == "vector":
            self._run_levels_vector(pool, windows, timings, stats)
        else:
            self._run_levels_scalar(pool, windows, timings, stats)

        # Read back gate output waveforms for this batch of windows, trimming
        # each one to exactly [start, end): the settle margin on the left is
        # discarded, and so is any propagation tail past the right edge (the
        # next window reproduces it with full knowledge of its stimulus).
        # Only the final window keeps its tail, since nothing follows it.
        start = time.perf_counter()
        for gate in compiled.gates.values():
            per_net = window_outputs.setdefault(gate.output_net, {})
            for window in windows:
                wave = pool.read_waveform(gate.output_net, window.index)
                margin = window.start - extended_starts[window.index]
                if overlap > 0 and window.end < duration:
                    right_edge = window.end - extended_starts[window.index]
                else:
                    right_edge = EOW - 1
                if margin > 0 or right_edge != EOW - 1:
                    wave = wave.window(margin, right_edge, rebase=True)
                per_net[window.index] = wave
        stats.pool_words_used = max(stats.pool_words_used, pool.used_words)
        timings.readback += time.perf_counter() - start

    def _simulate_batch_vector(
        self,
        events: SourceEvents,
        windows: Sequence[_WindowRange],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
        readback: _ReadbackAccumulator,
    ) -> None:
        """One segment batch through the bulk-array pipeline.

        Same phases as :meth:`_simulate_batch` — restructure, load, level
        execution, readback — but the boundary phases never touch
        per-window :class:`Waveform` objects: slice bounds come from
        ``searchsorted`` over the lowered event tensors, the pool is
        filled by one :meth:`WaveformPool.load_windows` call, and trimmed
        outputs land in the accumulator as flat host arrays after the one
        device→host transfer of the batch.
        """
        config = self.config
        xp = self._xp
        pool = self._make_pool(windows)
        overlap = self.window_overlap
        B = len(windows)
        window_indices = [window.index for window in windows]
        extended_starts = xp.asarray(
            [max(0, window.start - overlap) for window in windows], dtype=xp.int64
        )
        ends = xp.asarray([window.end for window in windows], dtype=xp.int64)

        # Restructure: per-(net, window) slice bounds over the flat event
        # tensor — the cycle-parallelism step without any waveform copies.
        start = time.perf_counter()
        slices = slice_windows(events, extended_starts, ends, xp=xp)
        timings.restructure += time.perf_counter() - start

        # Load: one batched scatter writes every window into the pool.
        start = time.perf_counter()
        pool.load_windows(
            events.nets,
            window_indices,
            slices.initial_values,
            events.times,
            slices.starts,
            slices.counts,
            extended_starts,
            net_ids=self._source_net_ids,
        )
        timings.host_to_device += time.perf_counter() - start

        if config.kernel == "vector":
            self._run_levels_vector(pool, windows, timings, stats)
        else:
            self._run_levels_scalar(pool, windows, timings, stats)

        # Readback: trim every output window to [start, end) — settle
        # margin and propagation tail dropped exactly as the reference
        # path does — and lift the survivors to absolute time.
        start = time.perf_counter()
        nets = readback.nets
        addresses, toggle_counts = pool.window_table(
            nets, window_indices, net_ids=self._readback_net_ids
        )
        markers = xp.astype(pool.data[addresses] == INITIAL_ONE_MARKER, xp.int64)
        task_offsets = xp.zeros(xp.size(toggle_counts) + 1, dtype=xp.int64)
        task_offsets[1:] = xp.cumsum(toggle_counts)
        local_times = gather_segments(
            pool.data, addresses + markers + 1, toggle_counts, xp=xp
        )
        margins = (
            xp.asarray([window.start for window in windows], dtype=xp.int64)
            - extended_starts
        )
        if overlap > 0:
            right_edges = xp.where(
                ends < duration, ends - extended_starts, EOW - 1
            )
        else:
            right_edges = xp.full(B, EOW - 1, dtype=xp.int64)
        apply_trim = (margins > 0) | (right_edges != EOW - 1)
        N = len(nets)
        trimmed = trim_readback(
            local_times,
            task_offsets,
            markers,
            xp.tile(margins, N),
            xp.tile(right_edges, N),
            xp.tile(apply_trim, N),
            extended_starts,
            N,
            B,
            xp=xp,
        )
        # Device→host transfer point (the only one of the readback path):
        # the trimmed batch moves to the host in one step.
        readback.append(trimmed.to_host(xp))
        stats.pool_words_used = max(stats.pool_words_used, pool.used_words)
        timings.readback += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Level execution: scalar reference kernel
    # ------------------------------------------------------------------
    def _run_levels_scalar(
        self,
        pool: WaveformPool,
        windows: Sequence[_WindowRange],
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> None:
        """Per-(gate, window) Python kernel loop — the reference oracle."""
        config = self.config
        compiled = self.compiled
        for level in compiled.gates_by_level:
            schedule_start = time.perf_counter()
            tasks = [
                (gate, window)
                for gate in level
                for window in windows
            ]
            timings.scheduling += time.perf_counter() - schedule_start

            kernel_start = time.perf_counter()
            first_pass: Dict[Tuple[str, int], GateKernelResult] = {}
            for gate, window in tasks:
                pointers = [
                    pool.pointer(net, window.index) for net in gate.input_nets
                ]
                result = simulate_gate_window(
                    pool.data,
                    pointers,
                    self._gate_inputs[gate.name],
                    pathpulse_fraction=config.pathpulse_fraction,
                    net_delay_filtering=config.enable_net_delay_filtering,
                )
                first_pass[(gate.name, window.index)] = result
                stats.kernel_invocations += 1
            timings.kernel += time.perf_counter() - kernel_start

            # Lay out output waveform addresses from the count pass.
            schedule_start = time.perf_counter()
            addresses: Dict[Tuple[str, int], int] = {}
            for gate, window in tasks:
                size = first_pass[(gate.name, window.index)].storage_words
                addresses[(gate.output_net, window.index)] = pool.allocate(size)
            timings.scheduling += time.perf_counter() - schedule_start

            # Store pass: re-run the kernel (as the paper does) and write the
            # output waveforms at their assigned addresses.
            kernel_start = time.perf_counter()
            for gate, window in tasks:
                key = (gate.name, window.index)
                if config.two_pass:
                    result = simulate_gate_window(
                        pool.data,
                        [pool.pointer(net, window.index) for net in gate.input_nets],
                        self._gate_inputs[gate.name],
                        pathpulse_fraction=config.pathpulse_fraction,
                        net_delay_filtering=config.enable_net_delay_filtering,
                    )
                    stats.kernel_invocations += 1
                else:
                    result = first_pass[key]
                pool.store_kernel_output(
                    gate.output_net,
                    window.index,
                    addresses[(gate.output_net, window.index)],
                    result.initial_value,
                    result.toggle_times,
                )
            timings.kernel += time.perf_counter() - kernel_start

    # ------------------------------------------------------------------
    # Level execution: level-batched vector kernel
    # ------------------------------------------------------------------
    def _run_levels_vector(
        self,
        pool: WaveformPool,
        windows: Sequence[_WindowRange],
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> None:
        """Struct-of-arrays execution: one batched launch per level per pass.

        For each level the count pass sizes every output waveform, the
        addresses come from one prefix-sum allocation, and the store pass
        writes all outputs with vectorized scatters — the software analogue
        of the paper's per-level GPU grid launches.  Input pointers and
        toggle capacities come from the level's compile-time gather index
        tensors resolved against the pool's registration tables
        (:meth:`WaveformPool.gather_level_inputs`) — no per-batch Python
        pointer lookups.
        """
        config = self.config
        xp = self._xp
        packed = self.packed_design
        W = len(windows)
        window_indices = [window.index for window in windows]

        schedule_start = time.perf_counter()
        pool.store_padding_waveform()
        timings.scheduling += time.perf_counter() - schedule_start

        for level in packed.levels:
            G = level.gate_count
            T = G * W

            # Gather input pointers and toggle capacities per task from the
            # registration tables via the precomputed net-id tensors; each
            # net's row is read once per referencing pin (fanout reuse is
            # the shared table row).
            schedule_start = time.perf_counter()
            pointers, capacities = pool.gather_level_inputs(level.input_net_ids)
            timings.scheduling += time.perf_counter() - schedule_start

            # Count pass: one batched launch sizes every output waveform.
            # The tiled per-task tensors are shared with the store pass.
            kernel_start = time.perf_counter()
            tiled = tile_level(level, W, xp)
            first_pass = simulate_level(
                pool.data,
                pointers,
                packed,
                level,
                W,
                capacities,
                pathpulse_fraction=config.pathpulse_fraction,
                net_delay_filtering=config.enable_net_delay_filtering,
                tiled=tiled,
                xp=xp,
            )
            stats.kernel_invocations += T
            stats.level_batches += 1
            stats.max_batch_tasks = max(stats.max_batch_tasks, T)
            timings.kernel += time.perf_counter() - kernel_start

            # Prefix-sum layout of all output addresses of the level.
            schedule_start = time.perf_counter()
            addresses = pool.allocate_batch(first_pass.storage_words)
            timings.scheduling += time.perf_counter() - schedule_start

            # Store pass: re-run the batched kernel (as the paper does) and
            # scatter the output waveforms to their assigned addresses.
            kernel_start = time.perf_counter()
            if config.two_pass:
                result = simulate_level(
                    pool.data,
                    pointers,
                    packed,
                    level,
                    W,
                    capacities,
                    pathpulse_fraction=config.pathpulse_fraction,
                    net_delay_filtering=config.enable_net_delay_filtering,
                    tiled=tiled,
                    xp=xp,
                )
                stats.kernel_invocations += T
                stats.level_batches += 1
            else:
                result = first_pass
            timings.kernel += time.perf_counter() - kernel_start

            schedule_start = time.perf_counter()
            pool.store_level_outputs(
                level.output_nets,
                window_indices,
                addresses,
                result.initial_values,
                result.toggle_buffer,
                result.toggle_starts,
                result.toggle_counts,
                net_ids=level.output_net_ids,
            )
            timings.scheduling += time.perf_counter() - schedule_start

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _assemble_result(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        window_outputs: Dict[str, Dict[int, Waveform]],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> SimulationResult:
        start = time.perf_counter()
        result = SimulationResult(
            duration=duration, timings=timings, stats=stats
        )

        # Source nets: toggle counts (and waveforms) from the original
        # stimulus, clipped to the simulated duration.
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            if self.config.store_waveforms:
                result.waveforms[net] = wave

        # Gate output nets: stitch per-window results back together.  When
        # full waveforms are kept, toggle counts come from the stitched
        # waveform so transitions landing exactly on a window seam are
        # counted once; otherwise the per-window counts are summed.
        total_output_transitions = 0
        for net, per_window in window_outputs.items():
            if self.config.store_waveforms:
                stitched = self._stitch(net, per_window, windows)
                result.waveforms[net] = stitched
                count = stitched.toggle_count()
            else:
                count = sum(w.toggle_count() for w in per_window.values())
            result.toggle_counts[net] = count
            total_output_transitions += count
        stats.output_transitions = total_output_transitions

        # Input events seen by gates = fanout-weighted net transitions.
        stats.input_events = fanin_weighted_toggles(self.netlist, result.toggle_counts)

        timings.readback += time.perf_counter() - start
        return result

    def _assemble_result_vector(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        readback: _ReadbackAccumulator,
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> SimulationResult:
        """Vectorized counterpart of :meth:`_assemble_result`.

        Stitching runs over the accumulated per-window host arrays
        (:func:`~repro.core.restructure.stitch_windows`), reproducing the
        reference :meth:`_stitch` seam rules bit-exactly; without stored
        waveforms, per-net counts are sums over the trimmed window counts,
        exactly as the reference path sums per-window toggle counts.
        """
        hnp = HOST
        start = time.perf_counter()
        result = SimulationResult(duration=duration, timings=timings, stats=stats)

        for net in self.netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            if self.config.store_waveforms:
                result.waveforms[net] = wave

        window_starts = hnp.asarray(
            [window.start for window in windows], dtype=hnp.int64
        )
        total_output_transitions = 0
        for index, net in enumerate(readback.nets):
            establish, counts, times = readback.net_series(index)
            if self.config.store_waveforms:
                stitched = stitch_windows(window_starts, establish, counts, times)
                result.waveforms[net] = stitched
                count = stitched.toggle_count()
            else:
                count = int(counts.sum())
            result.toggle_counts[net] = count
            total_output_transitions += count
        stats.output_transitions = total_output_transitions

        stats.input_events = fanin_weighted_toggles(self.netlist, result.toggle_counts)
        timings.readback += time.perf_counter() - start
        return result

    def _stitch(
        self,
        net: str,
        per_window: Dict[int, Waveform],
        windows: Sequence[_WindowRange],
    ) -> Waveform:
        changes: List[Tuple[int, int]] = []
        for window in windows:
            wave = per_window.get(window.index)
            if wave is None:
                continue
            for local_time, value in wave.changes():
                absolute = local_time + window.start
                if changes and changes[-1][1] == value:
                    continue
                if changes and absolute <= changes[-1][0]:
                    # A window-boundary artefact (a transition recorded right
                    # at the seam); keep the earlier one.
                    continue
                changes.append((absolute, value))
        if not changes:
            changes = [(0, 0)]
        return Waveform.from_changes(changes)


def simulate(
    netlist: Netlist,
    stimulus: Mapping[str, Waveform],
    cycles: Optional[int] = None,
    duration: Optional[int] = None,
    annotation: Optional[DelayAnnotation] = None,
    config: Optional[SimConfig] = None,
) -> SimulationResult:
    """One-call convenience wrapper (deprecated).

    Prefer the unified entry point::

        from repro.api import get_backend
        get_backend("gatspi").prepare(netlist, annotation, config).run(...)

    which supports every registered backend and reuses the compiled design
    across runs.
    """
    from ..api import get_backend

    session = get_backend("gatspi").prepare(
        netlist, annotation=annotation, config=config
    )
    return session.run(stimulus, cycles=cycles, duration=duration)
