"""The GATSPI re-simulation engine.

This is the paper's simulation flow (Fig. 5) end to end:

1. *Compile* the netlist: levelize the combinational logic, translate every
   cell's logic function into a truth-table array and every SDF delay into a
   conditional delay-lookup array (Fig. 4), pack everything into
   struct-of-arrays design tensors, and materialize them on the configured
   array backend (:mod:`repro.core.xp`).  Compiles are memoized process-wide
   (:mod:`repro.core.compile_cache`) so repeated sessions on the same design
   reuse the packed tensors.
2. *Restructure* the testbench: slice every source waveform (primary inputs
   and sequential-element outputs) into ``cycle_parallelism`` independent
   windows.
3. *Load* the windows into the pre-allocated device-memory waveform pool.
4. For every logic level, launch the per-gate/per-window kernel twice: the
   count pass sizes the output waveforms so their start addresses can be laid
   out in the pool, the store pass writes them (Algorithm 1).
5. *Read back* toggle counts and waveforms for SAIF generation.

On a non-numpy device the vector pipeline crosses the host/device boundary
exactly twice per run: the lowered stimulus event tensors move *in* once
(:meth:`~repro.core.restructure.SourceEvents.to_device`, step 2) and the
trimmed readback moves *out* once per segment batch
(:meth:`~repro.core.restructure.TrimmedReadback.to_host`, step 5).  Window
descriptors (a handful of scalars per batch) ride along with the kernel
launches, exactly like CUDA launch parameters.

If the waveform pool cannot hold a full run, the windows are split into
sequential segments and the engine is invoked once per segment, exactly as
the paper describes for testbenches that exceed device memory.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..netlist import CompiledGraph, Netlist, compile_netlist, levelize
from ..sdf.annotate import DelayAnnotation, default_annotation
from . import compile_cache
from .config import SimConfig
from .contract import (
    StimulusError,
    fanin_weighted_toggles,
    normalize_horizon,
    validate_stimulus,
)
from .edits import AppliedEdit, Edit, EditJournal, EditReceipt
from .incremental import (
    ExecutionPlan,
    build_dirty_plan,
    derive_compile_key,
    full_plan,
    rebuild_artifacts,
)
from .kernel import GateKernelInputs, GateKernelResult, simulate_gate_window
from .memory import DeviceMemoryError, WaveformPool
from .restructure import (
    SourceEvents,
    StreamingSourceEvents,
    TrimmedReadback,
    gather_segments,
    lower_stimulus,
    slice_windows,
    stitch_windows,
    trim_readback,
)
from .results import PhaseTimings, SimulationResult, SimulationStats, StreamBatch
from .vector_kernel import PackedDesign, pack_design, simulate_level, tile_level
from .waveform import EOW, INITIAL_ONE_MARKER, Waveform
from .xp import HOST, ArrayBackend, get_array_backend

#: Previous-run results kept per engine for incremental re-simulation,
#: keyed by edit-journal fingerprint (the state of the design they ran on).
RETAINED_RUN_CAPACITY = 4


@dataclass
class _RetainedRun:
    """One completed run retained as the base for incremental reruns."""

    stimulus: Dict[str, Waveform] = field(default_factory=dict)
    duration: int = 0
    result: Optional[SimulationResult] = None


@dataclass
class _WindowRange:
    index: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


class _ReadbackAccumulator:
    """Trimmed per-window outputs accumulated across segment batches.

    Batches arrive in window order (the segment queue preserves it), so
    concatenating a net's per-batch arrays yields its windows in run
    order — the shape :func:`~repro.core.restructure.stitch_windows`
    consumes.  Holding arrays instead of :class:`Waveform` objects is what
    lets result assembly stay vectorized end to end.  Batches land here
    *after* the device→host readback transfer, so accumulation is always
    host-side.
    """

    def __init__(self, nets: Tuple[str, ...]):
        self.nets = nets
        self._batches: List[TrimmedReadback] = []
        self._net_offsets: List = []

    def append(self, batch: TrimmedReadback) -> None:
        hnp = HOST
        offsets = hnp.zeros(len(self.nets) + 1, dtype=hnp.int64)
        offsets[1:] = hnp.cumsum(batch.counts.sum(axis=1))
        self._batches.append(batch)
        self._net_offsets.append(offsets)

    def net_series(self, index: int):
        """(establish_values, toggle_counts, times) of one net, all windows."""
        hnp = HOST
        establish = hnp.concatenate(
            [batch.establish_values[index] for batch in self._batches]
        )
        counts = hnp.concatenate([batch.counts[index] for batch in self._batches])
        times = hnp.concatenate(
            [
                batch.times[offsets[index] : offsets[index + 1]]
                for batch, offsets in zip(self._batches, self._net_offsets)
            ]
        )
        return establish, counts, times

    def merged(self):
        """All appended batches as one net-major ``(establish, counts, times)``.

        ``establish``/``counts`` are ``(N, total windows)``; ``times`` is
        flat net-major across every window.  The streaming driver uses this
        to hand a whole chunk (usually a single batch — the zero-copy fast
        path) to the online accumulator.
        """
        if len(self._batches) == 1:
            batch = self._batches[0]
            return batch.establish_values, batch.counts, batch.times
        hnp = HOST
        series = [self.net_series(index) for index in range(len(self.nets))]
        establish = hnp.concatenate([s[0] for s in series]).reshape(
            len(self.nets), -1
        )
        counts = hnp.concatenate([s[1] for s in series]).reshape(
            len(self.nets), -1
        )
        times = hnp.concatenate([s[2] for s in series])
        return establish, counts, times


class GatspiEngine:
    """GPU-style levelized two-pass gate re-simulator.

    Registered as the ``"gatspi"`` backend in :mod:`repro.api`; new code
    should reach it via ``get_backend("gatspi").prepare(...)`` rather than
    instantiating this class directly.
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
    ):
        self.netlist = netlist
        self.annotation = annotation or default_annotation(netlist)
        self.config = config or SimConfig()
        self._compiled: Optional[CompiledGraph] = None
        self._gate_inputs: Dict[str, GateKernelInputs] = {}
        self._packed: Optional[PackedDesign] = None
        self._xp: ArrayBackend = get_array_backend(self.config.effective_device())
        self._readback_net_ids = None
        self._source_net_ids = None
        self._compile_time = 0.0
        self._compile_cache_hit = False
        self._estimated_path_delay = 0
        self._artifacts: Optional[compile_cache.CompiledArtifacts] = None
        self._base_compile_key: Optional[str] = None
        self._journal = EditJournal()
        self._plan: Optional[ExecutionPlan] = None
        #: Completed runs kept as incremental-rerun bases (LRU, see
        #: :data:`RETAINED_RUN_CAPACITY`).  Sharded inner engines disable
        #: retention — their runs cover window sub-ranges, not the full
        #: horizon an incremental rerun stitches from.
        self.retain_results = True
        self._retained: "OrderedDict[str, _RetainedRun]" = OrderedDict()
        #: Recycled pool for :meth:`run_stream_chunk` (sharded streaming
        #: workers); dropped whenever compiled artifacts change.
        self._stream_pool: Optional[WaveformPool] = None

    # ------------------------------------------------------------------
    # Compilation (netlist + SDF -> arrays)
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledGraph:
        if self._compiled is None:
            self.compile()
        return self._compiled

    @property
    def packed_design(self) -> PackedDesign:
        """The compile-time struct-of-arrays design tensors (vector kernel).

        Built once per compile, materialized on the configured array
        backend, and reused by every run — including every device share of
        :func:`~repro.core.multi_gpu.simulate_multi_gpu`.
        """
        if self._packed is None:
            self.compile()
        return self._packed

    @property
    def xp(self) -> ArrayBackend:
        """The array backend the data plane runs on (see
        :meth:`SimConfig.effective_device`)."""
        return self._xp

    @property
    def compile_cache_hit(self) -> bool:
        """Whether the most recent :meth:`compile` reused cached artifacts."""
        return self._compile_cache_hit

    def compile(self, packed: Optional[PackedDesign] = None) -> CompiledGraph:
        """Levelize the netlist and build all lookup arrays.

        Produces two equivalent views of the design: the per-gate
        :class:`GateKernelInputs` the scalar reference kernel consumes, and
        the packed :class:`PackedDesign` tensors the level-batched vector
        kernel executes (built from the very same truth/delay arrays, so the
        two kernels cannot diverge on compiled data).  Results are memoized
        process-wide by content fingerprint unless
        ``SimConfig(compile_cache=False)``.

        ``packed`` injects pre-built design tensors (shared-memory views in
        a process-shard worker) in place of re-packing; see
        :meth:`_build_artifacts`.
        """
        start = time.perf_counter()
        self._xp = get_array_backend(self.config.effective_device())
        artifacts = None
        key = None
        netlist_fp = None
        if self.config.compile_cache:
            # prepare() seeds the fingerprint its analysis pass already
            # computed; outside prepare the handoff is empty and we hash.
            netlist_fp = compile_cache.consume_netlist_fingerprint(self.netlist)
            if netlist_fp is None:
                netlist_fp = compile_cache.fingerprint_netlist(self.netlist)
            key = compile_cache.compile_key(
                self.netlist,
                self.annotation,
                self.config,
                netlist_fingerprint=netlist_fp,
            )
            artifacts = compile_cache.lookup(key)
        cache_hit = artifacts is not None
        if artifacts is None:
            artifacts = self._build_artifacts(
                netlist_fingerprint=netlist_fp, packed=packed
            )
            if key is not None:
                compile_cache.store(key, artifacts)
        self._base_compile_key = key
        self._install_artifacts(artifacts, cache_hit=cache_hit)
        self._compile_time = time.perf_counter() - start
        return self._compiled

    def _install_artifacts(
        self,
        artifacts: compile_cache.CompiledArtifacts,
        cache_hit: bool = False,
    ) -> None:
        """Swap the engine onto a set of compiled artifacts.

        Cached artifacts are shared between engines and treated as
        immutable; the one mapping the engine exposes for mutation-style
        access (tests patch per-gate inputs) is copied per install, which
        also guarantees recompiles drop stale entries.
        """
        self._artifacts = artifacts
        self._compiled = artifacts.compiled
        self._gate_inputs = dict(artifacts.gate_inputs)
        self._packed = artifacts.packed
        self._readback_net_ids = artifacts.readback_net_ids
        self._source_net_ids = artifacts.source_net_ids
        self._estimated_path_delay = artifacts.estimated_path_delay
        self._compile_cache_hit = cache_hit
        self._plan = None
        self._stream_pool = None

    def _build_artifacts(
        self,
        netlist_fingerprint: Optional[str] = None,
        packed: Optional[PackedDesign] = None,
    ) -> compile_cache.CompiledArtifacts:
        """One full (uncached) compile: levelize, build lookup arrays, pack,
        and materialize the packed tensors on the configured backend.

        ``packed`` injects pre-built design tensors (e.g. shared-memory
        views attached by a process-shard worker, :mod:`repro.core.shm`)
        instead of re-packing — the rest of the compile is unchanged, so
        the artifacts flow through the normal compile cache and backends.
        """
        gate_inputs: Dict[str, GateKernelInputs] = {}
        if netlist_fingerprint is not None:
            # prepare() analyzes before compiling; the analysis engine
            # levelizes through the same fingerprint-keyed memo, so this is
            # typically a hit and the design is walked once per prepare.
            levelization = compile_cache.levelize_cached(
                self.netlist, fingerprint=netlist_fingerprint
            )
        else:
            levelization = levelize(self.netlist)
        compiled = compile_netlist(self.netlist, levelization)
        annotation = self.annotation
        if not self.config.full_sdf:
            annotation = annotation.with_averaged_sdf()
        library = self.netlist.library
        for gate in compiled.gates.values():
            cell = self.netlist.instances[gate.name].cell
            truth_table = library.truth_table(gate.cell_name).table
            if cell.num_inputs == 0:
                gate_inputs[gate.name] = GateKernelInputs(
                    truth_table=truth_table,
                    delay_arrays=(),
                    wire_rise=(),
                    wire_fall=(),
                )
                continue
            table = annotation.table_for(gate.name)
            delay_arrays = tuple(table.table_for(pin) for pin in cell.inputs)
            wire_rise = []
            wire_fall = []
            for pin in cell.inputs:
                wire = annotation.wire_delay(gate.name, pin)
                wire_rise.append(float(wire.rise))
                wire_fall.append(float(wire.fall))
            gate_inputs[gate.name] = GateKernelInputs(
                truth_table=truth_table,
                delay_arrays=delay_arrays,
                wire_rise=tuple(wire_rise),
                wire_fall=tuple(wire_fall),
            )
        if packed is None:
            packed = pack_design(
                compiled.gates_by_level,
                gate_inputs,
                extra_nets=tuple(self.netlist.source_nets()),
            ).to_device(self._xp)
        # Net-id tensors of the two bulk registration paths — gate outputs
        # in readback order and stimulus sources in lowering order — cached
        # alongside the packed tensors so a cache hit skips the O(design)
        # rebuild and device upload.
        readback_net_ids = self._xp.asarray(
            [packed.net_index[gate.output_net] for gate in compiled.gates.values()],
            dtype=self._xp.int64,
        )
        source_net_ids = self._xp.asarray(
            [packed.net_index[net] for net in self.netlist.source_nets()],
            dtype=self._xp.int64,
        )
        # Estimate the critical path delay; it bounds how far an event can
        # still propagate past a cycle-parallel window boundary and therefore
        # sizes the default settle margin (window overlap).
        max_wire = 0.0
        for wire in annotation.interconnect.values():
            max_wire = max(max_wire, wire.rise, wire.fall)
        estimated_path_delay = int(
            compiled.depth * (annotation.max_gate_delay() + max_wire)
        )
        return compile_cache.CompiledArtifacts(
            compiled=compiled,
            gate_inputs=gate_inputs,
            packed=packed,
            readback_net_ids=readback_net_ids,
            source_net_ids=source_net_ids,
            estimated_path_delay=estimated_path_delay,
        )

    @property
    def window_overlap(self) -> int:
        """Settle margin prepended to every cycle-parallel window."""
        if self.config.window_overlap is not None:
            return self.config.window_overlap
        return self._estimated_path_delay

    # ------------------------------------------------------------------
    # Incremental recompilation (edit API)
    # ------------------------------------------------------------------
    @property
    def journal(self) -> EditJournal:
        """The edit journal chaining this engine's state to its base compile."""
        return self._journal

    def apply_edits(self, edits: Sequence[Edit]) -> EditReceipt:
        """Apply an edit batch in place and incrementally recompile.

        The batch is transactional: if any edit fails to apply, or the
        incremental recompile fails, every already-applied edit is undone
        (and its journal entry cancelled) before the exception propagates —
        the engine's design and artifacts are left exactly as before.

        Returns an :class:`~repro.core.edits.EditReceipt` whose
        ``undo_edits`` reverse the batch (via another ``apply_edits`` call)
        and whose seeds drive :meth:`resimulate`.
        """
        if self._compiled is None:
            self.compile()
        parent = self._journal.fingerprint()
        applied: List[AppliedEdit] = []
        try:
            for edit in edits:
                applied.append(edit.apply(self.netlist, self.annotation))
        except Exception:
            for done in reversed(applied):
                done.inverse.apply(self.netlist, self.annotation)
            raise
        seeds: List[str] = []
        structural = False
        delay_only = True
        for done in applied:
            self._journal.record(done.edit, done.inverse)
            seeds.extend(done.seeds)
            structural = structural or done.edit.structural
            delay_only = delay_only and done.edit.delay_only
        seed_names = tuple(dict.fromkeys(seeds))
        try:
            self._refresh_artifacts(seed_names, structural)
        except Exception:
            for done in reversed(applied):
                undone = done.inverse.apply(self.netlist, self.annotation)
                self._journal.record(done.inverse, undone.inverse)
            raise
        return EditReceipt(
            edits=tuple(done.edit for done in applied),
            inverses=tuple(done.inverse for done in applied),
            seeds=seed_names,
            structural=structural,
            delay_only=delay_only and bool(applied),
            parent_journal=parent,
            journal=self._journal.fingerprint(),
        )

    def _refresh_artifacts(
        self, seeds: Tuple[str, ...], structural: bool
    ) -> None:
        """Re-derive compiled artifacts after an edit batch.

        Journal-chained cache keys make ECO iteration warm: the derived
        key is the base compile key plus the journal fingerprint, so
        re-applying a previously seen batch (or undoing one) adopts the
        cached artifacts instead of rebuilding; otherwise only the dirty
        slices are rebuilt (:func:`~repro.core.incremental.rebuild_artifacts`).
        """
        if not seeds:
            return
        previous = self._artifacts
        if previous is None:  # pragma: no cover - compile() precedes edits
            self.compile()
            return
        key = None
        if self._base_compile_key is not None and self.config.compile_cache:
            key = derive_compile_key(self._base_compile_key, self._journal)
            cached = compile_cache.lookup(key)
            if cached is not None:
                self._install_artifacts(cached, cache_hit=True)
                return
        artifacts = rebuild_artifacts(
            previous,
            self.netlist,
            self.annotation,
            self.config,
            seeds,
            structural,
            self._xp,
        )
        if key is not None:
            compile_cache.store(key, artifacts)
        self._install_artifacts(artifacts, cache_hit=False)

    def adopt(self, other: "GatspiEngine") -> None:
        """Adopt another engine's design state and compiled artifacts.

        Used by the sharded backend to keep its inner engines coherent
        after edits are applied through the first one: artifacts do not
        depend on ``cycle_parallelism``, so sharing them across engines
        whose configs differ only in window partitioning is exact.
        """
        self.netlist = other.netlist
        self.annotation = other.annotation
        self._journal = other._journal
        self._base_compile_key = other._base_compile_key
        if other._artifacts is not None:
            self._install_artifacts(other._artifacts, cache_hit=True)

    def resimulate(
        self,
        receipt: EditReceipt,
        stimulus: Optional[Mapping[str, Waveform]] = None,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
        previous: Optional[SimulationResult] = None,
    ) -> SimulationResult:
        """Re-simulate only the cone of influence of an applied edit batch.

        ``previous`` (default: the retained run of the receipt's parent
        state) supplies the clean nets' waveforms; dirty gates re-simulate
        from the exact boundary waveforms, and the merged result is
        bit-identical to a cold full run of the edited design.  Falls back
        to :meth:`simulate` whenever partial execution cannot be exact:
        no usable previous run, a user-pinned ``window_overlap``, disabled
        waveform storage, or a changed stimulus/horizon.
        """
        retained = self._retained.get(receipt.parent_journal)
        if previous is None and retained is not None:
            previous = retained.result
        if stimulus is None and retained is not None:
            stimulus = retained.stimulus
        if duration is None and cycles is None and retained is not None:
            duration = retained.duration
        if stimulus is None:
            raise ValueError(
                "resimulate() needs a stimulus: none was given and no "
                "previous run is retained for the receipt's parent state"
            )
        cycles, duration = normalize_horizon(
            cycles, duration, self.config.clock_period
        )
        if not receipt.seeds:
            # Empty dirty set: the design is unchanged, so the previous
            # result (when reusable) already is the answer.
            if (
                previous is not None
                and previous.duration == duration
                and self._same_stimulus(stimulus, previous)
            ):
                stats = replace(
                    previous.stats,
                    incremental=True, dirty_gates=0, dirty_fraction=0.0,
                )
                return replace(previous, stats=stats)
            return self.simulate(stimulus, duration=duration)
        plan = None
        if previous is not None and self._partial_ok(previous, stimulus, duration):
            plan = build_dirty_plan(
                self.compiled,
                self._gate_inputs,
                self.netlist,
                receipt.seeds,
                self._xp,
            )
            if plan is not None and any(
                net not in previous.waveforms and net not in stimulus
                for net in plan.source_nets
            ):
                plan = None
        if plan is None or previous is None:
            return self.simulate(stimulus, duration=duration)
        validate_stimulus(self.netlist, stimulus)
        # True stimulus sources are clipped at the horizon — the extended
        # window slices of a partial run reach past window ends, but a cold
        # run never feeds stimulus events at or beyond ``duration``.
        sources = {}
        for net in plan.source_nets:
            if net in stimulus:
                wave = stimulus[net]
                if int(wave.data[-2]) >= duration:
                    wave = wave.window(0, duration, rebase=True)
                sources[net] = wave
            else:
                sources[net] = previous.waveforms[net]
        compiled = self.compiled
        config = self.config
        timings = PhaseTimings()
        stats = SimulationStats(
            gate_count=compiled.gate_count,
            levels=compiled.depth,
            widest_level=compiled.levelization.widest_level,
            cycles=cycles,
            kernel_mode=config.kernel,
            restructure_mode=config.restructure,
            device=self._xp.name,
            incremental=True,
            dirty_gates=plan.dirty_gates,
            dirty_fraction=plan.dirty_fraction,
        )
        outputs = self._execute_partial(plan, sources, duration, timings, stats)

        start = time.perf_counter()
        result = SimulationResult(duration=duration, timings=timings, stats=stats)
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            result.waveforms[net] = wave
        total_output_transitions = 0
        dirty_nets = set(plan.readback_nets)
        for gate in compiled.gates.values():
            net = gate.output_net
            if net in dirty_nets:
                count, wave = outputs[net]
            else:
                count = previous.toggle_counts[net]
                wave = previous.waveforms[net]
            result.toggle_counts[net] = count
            result.waveforms[net] = wave
            total_output_transitions += count
        stats.output_transitions = total_output_transitions
        stats.input_events = fanin_weighted_toggles(
            self.netlist, result.toggle_counts
        )
        timings.readback += time.perf_counter() - start
        self._retain(stimulus, duration, result)
        return result

    def _partial_ok(
        self,
        previous: Optional[SimulationResult],
        stimulus: Mapping[str, Waveform],
        duration: int,
    ) -> bool:
        """Whether partial execution is provably exact for this rerun."""
        if previous is None or not previous.waveforms:
            return False
        if not self.config.store_waveforms:
            return False
        if self.config.window_overlap is not None:
            # Partial execution relies on the settle-margin invariance
            # argument, which needs the margin to cover the (post-edit)
            # critical path; a user-pinned overlap voids that guarantee.
            return False
        if previous.duration != duration:
            return False
        return self._same_stimulus(stimulus, previous)

    def _same_stimulus(
        self, stimulus: Mapping[str, Waveform], previous: SimulationResult
    ) -> bool:
        for net in self.netlist.source_nets():
            wave = stimulus.get(net)
            prior = previous.waveforms.get(net)
            if wave is None or prior is None:
                return False
            if wave is not prior and wave != prior:
                return False
        return True

    def _retain(
        self,
        stimulus: Mapping[str, Waveform],
        duration: int,
        result: SimulationResult,
    ) -> None:
        if not (self.retain_results and self.config.store_waveforms):
            return
        key = self._journal.fingerprint()
        self._retained[key] = _RetainedRun(
            stimulus=dict(stimulus), duration=duration, result=result
        )
        self._retained.move_to_end(key)
        while len(self._retained) > RETAINED_RUN_CAPACITY:
            self._retained.popitem(last=False)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Re-simulate the combinational logic for the given testbench.

        ``stimulus`` must provide a waveform for every source net (primary
        input or sequential-element output).  ``duration`` defaults to
        ``cycles * clock_period``; one of the two must be given.
        """
        compiled = self.compiled
        config = self.config
        cycles, duration = normalize_horizon(cycles, duration, config.clock_period)
        validate_stimulus(self.netlist, stimulus)
        plan = self._full_plan()

        windows = self._window_ranges(duration)
        self._check_sentinel_headroom(stimulus, windows, plan.source_nets)
        timings = PhaseTimings()
        stats = SimulationStats(
            gate_count=compiled.gate_count,
            levels=compiled.depth,
            widest_level=compiled.levelization.widest_level,
            windows=len(windows),
            cycles=cycles,
            kernel_mode=config.kernel,
            restructure_mode=config.restructure,
            device=self._xp.name,
        )

        if config.restructure == "vector":
            # Lower the stimulus once into flat event tensors; every
            # segment batch slices the same tensors.
            start = time.perf_counter()
            events = lower_stimulus(plan.source_nets, stimulus)
            timings.restructure += time.perf_counter() - start
            # Host→device transfer point (the only one of the stimulus
            # path): the lowered event tensors move to the device once.
            start = time.perf_counter()
            events = events.to_device(self._xp)
            timings.host_to_device += time.perf_counter() - start
            readback = _ReadbackAccumulator(plan.readback_nets)
            stats.segments = self._segment_windows(
                windows,
                lambda batch: self._simulate_batch_vector(
                    events, batch, duration, timings, stats, readback, plan
                ),
            )
            result = self._assemble_result_vector(
                stimulus, windows, readback, duration, timings, stats
            )
            self._retain(stimulus, duration, result)
            return result

        window_outputs: Dict[str, Dict[int, Waveform]] = {}
        stats.segments = self._segment_windows(
            windows,
            lambda batch: self._simulate_batch(
                stimulus, batch, duration, timings, stats, window_outputs, plan
            ),
        )
        result = self._assemble_result(
            stimulus, windows, window_outputs, duration, timings, stats
        )
        self._retain(stimulus, duration, result)
        return result

    def run_cycles(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        *,
        clock: Optional[str] = None,
        reset: Optional[str] = None,
    ) -> SimulationResult:
        """Clock-step the design for ``cycles`` capture edges.

        Engine-level face of the shared clocked driver
        (:mod:`repro.core.clocked`): registers commit at every clock edge
        and each inter-edge frame runs through :meth:`simulate`.  Prefer
        :meth:`Session.run_cycles <repro.api.session.Session.run_cycles>`
        in new code; this exists so direct engine users (and the engine's
        own benchmarks) need no session wrapper.
        """
        from .clocked import plan_clocked_run, run_clocked

        plan = plan_clocked_run(
            self.netlist,
            self.config.clock_period,
            clock=clock if clock is not None else self.config.clock,
            reset=reset if reset is not None else self.config.reset,
        )
        return run_clocked(
            plan, stimulus, cycles, lambda s, d: self.simulate(s, duration=d)
        )

    # ------------------------------------------------------------------
    # Streaming (out-of-core) execution
    # ------------------------------------------------------------------
    def stream(
        self,
        source: StreamingSourceEvents,
        duration: int,
        chunk_cycles: Optional[int] = None,
        timings: Optional[PhaseTimings] = None,
        stats: Optional[SimulationStats] = None,
    ) -> Iterator[StreamBatch]:
        """Simulate ``duration`` time units chunk by chunk, yielding batches.

        The out-of-core replay driver: each chunk's stimulus span is pulled
        from ``source`` (which may itself stream from disk), split into
        ``cycle_parallelism`` windows of fixed length, run through the
        level loop against one persistent pool whose window columns are
        recycled between chunks (:meth:`WaveformPool.release_windows`), and
        read back as one host-side :class:`StreamBatch`.  Nothing
        proportional to the whole run is ever materialized — peak memory is
        O(chunk), which is what keeps million-cycle replays at constant
        RSS.  Absolute times ride in int64 host arrays, so runs may even
        exceed the ``EOW`` sentinel that bounds whole-run waveforms.

        Bit-identity with :meth:`simulate` comes from the settle margin:
        every window is extended backwards across the chunk boundary by the
        derived critical-path margin, making the partition invisible in the
        results.  That argument needs the margin to cover the critical
        path, which is why a pinned ``config.window_overlap`` is refused
        here rather than silently risking seam-visible answers.
        """
        plan = self._full_plan()
        self._check_streamable()
        perm = self._source_permutation(source, plan)
        if timings is None:
            timings = PhaseTimings()
        if stats is None:
            stats = SimulationStats()
        stats.streamed = True
        stats.segments = 0
        overlap = self.window_overlap
        chunk_duration, window_length = self._stream_geometry(chunk_cycles)
        if duration < 1:
            raise ValueError("duration must be positive")

        chunk_start = 0
        chunk_index = 0
        window_index = 0
        while chunk_start < duration:
            chunk_end = min(chunk_start + chunk_duration, duration)
            windows: List[_WindowRange] = []
            cursor = chunk_start
            while cursor < chunk_end:
                end = min(cursor + window_length, chunk_end)
                windows.append(
                    _WindowRange(index=window_index, start=cursor, end=end)
                )
                window_index += 1
                cursor = end
            # Lookback of at least 1: the settle margin can derive to 0 on
            # trivial designs, but a chunk must still see the previous time
            # unit so toggles landing exactly on its boundary (which it
            # owns, see _source_span_fields) are present in the span.
            extended_lo = max(0, chunk_start - max(overlap, 1))
            start = time.perf_counter()
            span = source.span_events(
                extended_lo, chunk_end, retire_before=extended_lo
            )
            if perm is not None:
                span = _reorder_span(span, perm)
            timings.restructure += time.perf_counter() - start
            # One engine-cached pool serves every chunk of every streamed
            # run (run_stream_chunk shares it): each batch releases the
            # previous chunk's window columns and reuses the same words.
            if self._stream_pool is None:
                self._stream_pool = self._make_pool(windows, plan)
            yield self._execute_stream_chunk(
                span,
                windows,
                chunk_index,
                chunk_start,
                chunk_end,
                duration,
                timings,
                stats,
                plan,
                self._stream_pool,
            )
            chunk_start = chunk_end
            chunk_index += 1

    def run_stream_chunk(
        self,
        span: SourceEvents,
        chunk_index: int,
        chunk_start: int,
        chunk_end: int,
        duration: int,
        timings: Optional[PhaseTimings] = None,
        stats: Optional[SimulationStats] = None,
    ) -> StreamBatch:
        """Execute one pre-pulled chunk span (sharded streaming workers).

        The sharded backend's parent session owns the stimulus stream —
        spans must be pulled sequentially — and ships each chunk's span to
        a shard worker, which calls this.  ``span`` must cover
        ``(max(0, chunk_start - max(window_overlap, 1)), chunk_end)`` with nets in
        the design's source order (the parent reuses the engine's span
        geometry, so this holds by construction).  Each engine keeps one
        private stream pool recycled across calls, so worker RSS stays
        flat no matter how many chunks it executes.
        """
        plan = self._full_plan()
        self._check_streamable()
        if tuple(span.nets) != tuple(plan.source_nets):
            raise StimulusError(
                "stream chunk span nets do not match the design's source "
                "nets in order"
            )
        if timings is None:
            timings = PhaseTimings()
        if stats is None:
            stats = SimulationStats()
        stats.streamed = True
        span_length = chunk_end - chunk_start
        if span_length < 1:
            raise ValueError("chunk span must be non-empty")
        parallelism = self.config.cycle_parallelism
        window_length = max(1, -(-span_length // parallelism))
        self._check_stream_headroom(window_length)
        windows: List[_WindowRange] = []
        cursor = chunk_start
        index = 0
        while cursor < chunk_end:
            end = min(cursor + window_length, chunk_end)
            windows.append(_WindowRange(index=index, start=cursor, end=end))
            index += 1
            cursor = end
        if self._stream_pool is None:
            self._stream_pool = self._make_pool(windows, plan)
        return self._execute_stream_chunk(
            span,
            windows,
            chunk_index,
            chunk_start,
            chunk_end,
            duration,
            timings,
            stats,
            plan,
            self._stream_pool,
        )

    def _check_streamable(self) -> None:
        config = self.config
        if config.restructure != "vector":
            raise ValueError(
                "streaming execution requires the vector restructure "
                "pipeline (SimConfig(restructure='vector')); the python "
                "reference path materializes per-window Waveform objects"
            )
        if config.window_overlap is not None:
            raise ValueError(
                "streaming execution derives its settle margin from the "
                "design's critical path; a pinned window_overlap below it "
                "would make chunk boundaries visible in the results — "
                "leave SimConfig.window_overlap unset for run_stream"
            )

    def _stream_geometry(
        self, chunk_cycles: Optional[int]
    ) -> Tuple[int, int]:
        """(chunk duration, window length) in time units for streaming."""
        config = self.config
        if chunk_cycles is None:
            chunk_cycles = config.stream_chunk_cycles
        if chunk_cycles is None:
            chunk_cycles = 32 * config.cycle_parallelism
        if chunk_cycles < 1:
            raise ValueError("chunk_cycles must be at least 1")
        chunk_duration = chunk_cycles * config.clock_period
        window_length = max(
            1, -(-chunk_duration // config.cycle_parallelism)
        )
        self._check_stream_headroom(window_length)
        return chunk_duration, window_length

    def _check_stream_headroom(self, window_length: int) -> None:
        """Streaming counterpart of :meth:`_check_sentinel_headroom`.

        Streamed runs never materialize absolute-time waveforms, so only
        *window-local* times must stay below the ``EOW`` sentinel: they are
        bounded by the extended window length plus the critical-path delay,
        independent of run length.
        """
        headroom = (
            window_length + self.window_overlap + self._estimated_path_delay
        )
        if headroom >= EOW:
            raise StimulusError(
                f"stream chunk windows are too long: window-local times up "
                f"to {headroom} could reach the EOW sentinel ({EOW}) and "
                f"silently truncate output waveforms; lower "
                f"stream_chunk_cycles or raise cycle_parallelism"
            )

    def _source_permutation(
        self, source: StreamingSourceEvents, plan: ExecutionPlan
    ) -> Optional[List[int]]:
        """Map a stream's net order onto the plan's source-net order.

        Returns ``None`` when the orders already agree (the fast path —
        session-built streams are constructed in plan order); otherwise the
        permutation applied to every span, or :class:`StimulusError` when
        the net *sets* differ.
        """
        source_nets = tuple(source.nets)
        expected = tuple(plan.source_nets)
        if source_nets == expected:
            return None
        index = {net: i for i, net in enumerate(source_nets)}
        missing = [net for net in expected if net not in index]
        extra = [net for net in source_nets if net not in set(expected)]
        if missing or extra:
            raise StimulusError(
                f"streaming source nets do not match the design's source "
                f"nets: {len(missing)} missing "
                f"(first: {missing[:3]}), {len(extra)} unexpected "
                f"(first: {extra[:3]})"
            )
        return [index[net] for net in expected]

    def _execute_stream_chunk(
        self,
        span: SourceEvents,
        windows: Sequence[_WindowRange],
        chunk_index: int,
        chunk_start: int,
        chunk_end: int,
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
        plan: ExecutionPlan,
        pool: WaveformPool,
    ) -> StreamBatch:
        """Run one chunk's windows and assemble its host StreamBatch."""
        hnp = HOST
        start = time.perf_counter()
        events = span.to_device(self._xp)
        timings.host_to_device += time.perf_counter() - start
        readback = _ReadbackAccumulator(plan.readback_nets)
        stats.segments += self._segment_windows(
            windows,
            lambda batch: self._simulate_batch_vector(
                events, batch, duration, timings, stats, readback, plan,
                pool=pool,
            ),
        )
        stats.windows += len(windows)
        stats.chunks += 1
        start = time.perf_counter()
        establish, counts, times = readback.merged()
        window_starts = hnp.asarray(
            [window.start for window in windows], dtype=hnp.int64
        )
        source_establish, source_counts, source_times = _source_span_fields(
            span, chunk_start
        )
        batch = StreamBatch(
            chunk_index=chunk_index,
            chunk_start=chunk_start,
            chunk_end=chunk_end,
            nets=plan.readback_nets,
            window_starts=window_starts,
            establish_values=establish,
            toggle_counts=counts,
            times=times,
            source_nets=span.nets,
            source_establish=source_establish,
            source_counts=source_counts,
            source_times=source_times,
        )
        timings.readback += time.perf_counter() - start
        return batch

    def _full_plan(self) -> ExecutionPlan:
        """The whole-design execution plan (cached until artifacts change)."""
        if self._plan is None:
            self._plan = full_plan(
                self.compiled,
                self.netlist,
                self.packed_design,
                self._source_net_ids,
                self._readback_net_ids,
            )
        return self._plan

    def _execute_partial(
        self,
        plan: ExecutionPlan,
        sources: Mapping[str, Waveform],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> Dict[str, Tuple[int, Waveform]]:
        """Run the level loop over a dirty sub-plan only.

        ``sources`` maps every plan source net (true stimulus sources plus
        clean boundary nets) to its exact absolute waveform.  Returns the
        stitched ``(toggle_count, waveform)`` of every dirty gate output;
        waveforms are always stitched here (partial execution requires
        ``store_waveforms`` anyway — the merged result feeds later reruns).
        """
        config = self.config
        windows = self._window_ranges(duration)
        self._check_sentinel_headroom(sources, windows, plan.source_nets)
        stats.windows = len(windows)
        outputs: Dict[str, Tuple[int, Waveform]] = {}

        if config.restructure == "vector":
            start = time.perf_counter()
            events = lower_stimulus(plan.source_nets, sources)
            timings.restructure += time.perf_counter() - start
            start = time.perf_counter()
            events = events.to_device(self._xp)
            timings.host_to_device += time.perf_counter() - start
            readback = _ReadbackAccumulator(plan.readback_nets)
            stats.segments = self._segment_windows(
                windows,
                lambda batch: self._simulate_batch_vector(
                    events, batch, duration, timings, stats, readback, plan
                ),
            )
            hnp = HOST
            start = time.perf_counter()
            window_starts = hnp.asarray(
                [window.start for window in windows], dtype=hnp.int64
            )
            for index, net in enumerate(plan.readback_nets):
                establish, counts, times = readback.net_series(index)
                stitched = stitch_windows(window_starts, establish, counts, times)
                outputs[net] = (stitched.toggle_count(), stitched)
            timings.readback += time.perf_counter() - start
            return outputs

        window_outputs: Dict[str, Dict[int, Waveform]] = {}
        stats.segments = self._segment_windows(
            windows,
            lambda batch: self._simulate_batch(
                sources, batch, duration, timings, stats, window_outputs, plan
            ),
        )
        start = time.perf_counter()
        for net, per_window in window_outputs.items():
            stitched = self._stitch(net, per_window, windows)
            outputs[net] = (stitched.toggle_count(), stitched)
        timings.readback += time.perf_counter() - start
        return outputs

    def _check_sentinel_headroom(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence["_WindowRange"],
        nets: Optional[Sequence[str]] = None,
    ) -> None:
        """Refuse runs whose timestamps could reach the ``EOW`` sentinel.

        A toggle written at or beyond ``EOW`` (INT32_MAX) terminates its
        waveform early on readback — a silent wrong answer.  Window-local
        input times are bounded by both the longest extended window and the
        largest stimulus timestamp; adding the estimated critical-path delay
        bounds every output time the kernel can produce.  ``nets`` narrows
        the check to a plan's source nets (partial execution feeds boundary
        waveforms, not just the design's stimulus sources).
        """
        if nets is None:
            nets = tuple(self.netlist.source_nets())
        max_timestamp = 0
        for net in nets:
            wave = stimulus[net]
            # data[-1] is EOW, data[-2] the final timestamp.
            max_timestamp = max(max_timestamp, int(wave.data[-2]))
        if max_timestamp >= EOW:
            raise StimulusError(
                f"stimulus contains a timestamp ({max_timestamp}) at or "
                f"beyond the EOW sentinel ({EOW}); such waveforms cannot be "
                f"represented in the array waveform format"
            )
        longest = max(window.length for window in windows) + self.window_overlap
        headroom = min(longest, max_timestamp) + self._estimated_path_delay
        if headroom >= EOW:
            raise StimulusError(
                f"stimulus timestamps approach the EOW sentinel ({EOW}): "
                f"window-local times up to {headroom} could be produced, "
                f"which would silently truncate output waveforms; shorten "
                f"the run or raise cycle_parallelism"
            )

    # ------------------------------------------------------------------
    # Window / segment management
    # ------------------------------------------------------------------
    def _window_ranges(self, duration: int) -> List[_WindowRange]:
        parallelism = self.config.cycle_parallelism
        window_length = max(1, -(-duration // parallelism))  # ceil division
        ranges: List[_WindowRange] = []
        start = 0
        index = 0
        while start < duration:
            end = min(start + window_length, duration)
            ranges.append(_WindowRange(index=index, start=start, end=end))
            start = end
            index += 1
        if not ranges:
            ranges.append(_WindowRange(index=0, start=0, end=max(1, duration)))
        return ranges

    def _make_pool(
        self, windows: Sequence[_WindowRange], plan: ExecutionPlan
    ) -> WaveformPool:
        """A per-batch waveform pool on the engine's array backend.

        Registration rows come from the plan's net index built at pack
        time (the design-wide index for full runs, the dirty sub-design's
        for partial ones), so every bulk store/gather resolves
        ``(net, window)`` pairs through flat index tables.
        """
        return WaveformPool(
            self.config.waveform_pool_words,
            xp=self._xp,
            net_index=plan.packed.net_index,
            window_indices=[window.index for window in windows],
        )

    def _segment_windows(
        self,
        windows: Sequence[_WindowRange],
        simulate_batch,
    ) -> int:
        """Run ``simulate_batch`` over windows, splitting on pool overflow.

        The queue preserves window order across splits, so batches always
        cover the run front to back — the invariant result assembly (of
        either restructure pipeline) relies on.
        """
        pending: List[Sequence[_WindowRange]] = [list(windows)]
        segments = 0
        retries = 0
        while pending:
            batch = pending.pop(0)
            try:
                simulate_batch(batch)
                segments += 1
            except DeviceMemoryError:
                retries += 1
                if len(batch) <= 1 or retries > self.config.max_segment_retries:
                    raise
                middle = len(batch) // 2
                pending.insert(0, batch[middle:])
                pending.insert(0, batch[:middle])
        return segments

    def _simulate_batch(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
        window_outputs: Dict[str, Dict[int, Waveform]],
        plan: ExecutionPlan,
    ) -> None:
        config = self.config
        pool = self._make_pool(windows, plan)
        overlap = self.window_overlap

        # Restructure source waveforms into windows (cycle parallelism).  Each
        # window is extended backwards by the settle margin so events still
        # propagating across the window boundary are reproduced exactly; the
        # margin region is trimmed from the outputs below.
        # Partial plans keep the settle margin on the right too: boundary
        # waveforms are previous-run absolute waveforms, and the window
        # must see the propagation tail past its edge exactly as a cold
        # run's in-pool fanin waveforms would provide it.
        slice_tail = overlap if plan.partial else 0
        start = time.perf_counter()
        sliced: Dict[Tuple[str, int], Waveform] = {}
        extended_starts: Dict[int, int] = {}
        for window in windows:
            extended_starts[window.index] = max(0, window.start - overlap)
        for net in plan.source_nets:
            wave = stimulus[net]
            for window in windows:
                sliced[(net, window.index)] = wave.window(
                    extended_starts[window.index],
                    window.end + slice_tail,
                    rebase=True,
                )
        timings.restructure += time.perf_counter() - start

        # Load the windows into the device memory pool.
        start = time.perf_counter()
        for (net, window_index), wave in sliced.items():
            pool.store_waveform(net, window_index, wave)
        timings.host_to_device += time.perf_counter() - start

        # Level-by-level two-pass simulation through the configured kernel.
        if config.kernel == "vector":
            self._run_levels_vector(pool, windows, timings, stats, plan)
        else:
            self._run_levels_scalar(pool, windows, timings, stats, plan)

        # Read back gate output waveforms for this batch of windows, trimming
        # each one to exactly [start, end): the settle margin on the left is
        # discarded, and so is any propagation tail past the right edge (the
        # next window reproduces it with full knowledge of its stimulus).
        # Only the final window keeps its tail, since nothing follows it.
        start = time.perf_counter()
        for net in plan.readback_nets:
            per_net = window_outputs.setdefault(net, {})
            for window in windows:
                wave = pool.read_waveform(net, window.index)
                margin = window.start - extended_starts[window.index]
                if overlap > 0 and window.end < duration:
                    right_edge = window.end - extended_starts[window.index]
                else:
                    right_edge = EOW - 1
                if margin > 0 or right_edge != EOW - 1:
                    wave = wave.window(margin, right_edge, rebase=True)
                per_net[window.index] = wave
        stats.pool_words_used = max(stats.pool_words_used, pool.used_words)
        timings.readback += time.perf_counter() - start

    def _simulate_batch_vector(
        self,
        events: SourceEvents,
        windows: Sequence[_WindowRange],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
        readback: _ReadbackAccumulator,
        plan: ExecutionPlan,
        pool: Optional[WaveformPool] = None,
    ) -> None:
        """One segment batch through the bulk-array pipeline.

        Same phases as :meth:`_simulate_batch` — restructure, load, level
        execution, readback — but the boundary phases never touch
        per-window :class:`Waveform` objects: slice bounds come from
        ``searchsorted`` over the lowered event tensors, the pool is
        filled by one :meth:`WaveformPool.load_windows` call, and trimmed
        outputs land in the accumulator as flat host arrays after the one
        device→host transfer of the batch.

        ``pool`` recycles a persistent pool instead of building one per
        batch (the streaming driver's constant-RSS path): every previously
        registered window is released first, which also rewinds the bump
        allocator to the retained floor, so repeated batches reuse the
        same storage.
        """
        config = self.config
        xp = self._xp
        if pool is None:
            pool = self._make_pool(windows, plan)
        else:
            pool.release_windows()
        overlap = self.window_overlap
        B = len(windows)
        window_indices = [window.index for window in windows]
        extended_starts = xp.asarray(
            [max(0, window.start - overlap) for window in windows], dtype=xp.int64
        )
        ends = xp.asarray([window.end for window in windows], dtype=xp.int64)
        # See _simulate_batch: partial plans keep the right-hand settle
        # margin so boundary waveforms reproduce a cold run's in-pool tails.
        slice_ends = ends + overlap if plan.partial else ends

        # Restructure: per-(net, window) slice bounds over the flat event
        # tensor — the cycle-parallelism step without any waveform copies.
        start = time.perf_counter()
        slices = slice_windows(events, extended_starts, slice_ends, xp=xp)
        timings.restructure += time.perf_counter() - start

        # Load: one batched scatter writes every window into the pool.
        start = time.perf_counter()
        pool.load_windows(
            events.nets,
            window_indices,
            slices.initial_values,
            events.times,
            slices.starts,
            slices.counts,
            extended_starts,
            net_ids=plan.source_net_ids,
        )
        timings.host_to_device += time.perf_counter() - start

        if config.kernel == "vector":
            self._run_levels_vector(pool, windows, timings, stats, plan)
        else:
            self._run_levels_scalar(pool, windows, timings, stats, plan)

        # Readback: trim every output window to [start, end) — settle
        # margin and propagation tail dropped exactly as the reference
        # path does — and lift the survivors to absolute time.
        start = time.perf_counter()
        nets = readback.nets
        addresses, toggle_counts = pool.window_table(
            nets, window_indices, net_ids=plan.readback_net_ids
        )
        markers = xp.astype(pool.data[addresses] == INITIAL_ONE_MARKER, xp.int64)
        task_offsets = xp.zeros(xp.size(toggle_counts) + 1, dtype=xp.int64)
        task_offsets[1:] = xp.cumsum(toggle_counts)
        local_times = gather_segments(
            pool.data, addresses + markers + 1, toggle_counts, xp=xp
        )
        margins = (
            xp.asarray([window.start for window in windows], dtype=xp.int64)
            - extended_starts
        )
        if overlap > 0:
            right_edges = xp.where(
                ends < duration, ends - extended_starts, EOW - 1
            )
        else:
            right_edges = xp.full(B, EOW - 1, dtype=xp.int64)
        apply_trim = (margins > 0) | (right_edges != EOW - 1)
        N = len(nets)
        trimmed = trim_readback(
            local_times,
            task_offsets,
            markers,
            xp.tile(margins, N),
            xp.tile(right_edges, N),
            xp.tile(apply_trim, N),
            extended_starts,
            N,
            B,
            xp=xp,
        )
        # Device→host transfer point (the only one of the readback path):
        # the trimmed batch moves to the host in one step.
        readback.append(trimmed.to_host(xp))
        stats.pool_words_used = max(stats.pool_words_used, pool.used_words)
        timings.readback += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Level execution: scalar reference kernel
    # ------------------------------------------------------------------
    def _run_levels_scalar(
        self,
        pool: WaveformPool,
        windows: Sequence[_WindowRange],
        timings: PhaseTimings,
        stats: SimulationStats,
        plan: ExecutionPlan,
    ) -> None:
        """Per-(gate, window) Python kernel loop — the reference oracle."""
        config = self.config
        for level in plan.gates_by_level:
            schedule_start = time.perf_counter()
            tasks = [
                (gate, window)
                for gate in level
                for window in windows
            ]
            timings.scheduling += time.perf_counter() - schedule_start

            kernel_start = time.perf_counter()
            first_pass: Dict[Tuple[str, int], GateKernelResult] = {}
            for gate, window in tasks:
                pointers = [
                    pool.pointer(net, window.index) for net in gate.input_nets
                ]
                result = simulate_gate_window(
                    pool.data,
                    pointers,
                    self._gate_inputs[gate.name],
                    pathpulse_fraction=config.pathpulse_fraction,
                    net_delay_filtering=config.enable_net_delay_filtering,
                )
                first_pass[(gate.name, window.index)] = result
                stats.kernel_invocations += 1
            timings.kernel += time.perf_counter() - kernel_start

            # Lay out output waveform addresses from the count pass.
            schedule_start = time.perf_counter()
            addresses: Dict[Tuple[str, int], int] = {}
            for gate, window in tasks:
                size = first_pass[(gate.name, window.index)].storage_words
                addresses[(gate.output_net, window.index)] = pool.allocate(size)
            timings.scheduling += time.perf_counter() - schedule_start

            # Store pass: re-run the kernel (as the paper does) and write the
            # output waveforms at their assigned addresses.
            kernel_start = time.perf_counter()
            for gate, window in tasks:
                key = (gate.name, window.index)
                if config.two_pass:
                    result = simulate_gate_window(
                        pool.data,
                        [pool.pointer(net, window.index) for net in gate.input_nets],
                        self._gate_inputs[gate.name],
                        pathpulse_fraction=config.pathpulse_fraction,
                        net_delay_filtering=config.enable_net_delay_filtering,
                    )
                    stats.kernel_invocations += 1
                else:
                    result = first_pass[key]
                pool.store_kernel_output(
                    gate.output_net,
                    window.index,
                    addresses[(gate.output_net, window.index)],
                    result.initial_value,
                    result.toggle_times,
                )
            timings.kernel += time.perf_counter() - kernel_start

    # ------------------------------------------------------------------
    # Level execution: level-batched vector kernel
    # ------------------------------------------------------------------
    def _run_levels_vector(
        self,
        pool: WaveformPool,
        windows: Sequence[_WindowRange],
        timings: PhaseTimings,
        stats: SimulationStats,
        plan: ExecutionPlan,
    ) -> None:
        """Struct-of-arrays execution: one batched launch per level per pass.

        For each level the count pass sizes every output waveform, the
        addresses come from one prefix-sum allocation, and the store pass
        writes all outputs with vectorized scatters — the software analogue
        of the paper's per-level GPU grid launches.  Input pointers and
        toggle capacities come from the level's compile-time gather index
        tensors resolved against the pool's registration tables
        (:meth:`WaveformPool.gather_level_inputs`) — no per-batch Python
        pointer lookups.
        """
        config = self.config
        xp = self._xp
        packed = plan.packed
        W = len(windows)
        window_indices = [window.index for window in windows]

        schedule_start = time.perf_counter()
        pool.store_padding_waveform()
        timings.scheduling += time.perf_counter() - schedule_start

        for level in packed.levels:
            G = level.gate_count
            T = G * W

            # Gather input pointers and toggle capacities per task from the
            # registration tables via the precomputed net-id tensors; each
            # net's row is read once per referencing pin (fanout reuse is
            # the shared table row).
            schedule_start = time.perf_counter()
            pointers, capacities = pool.gather_level_inputs(level.input_net_ids)
            timings.scheduling += time.perf_counter() - schedule_start

            # Count pass: one batched launch sizes every output waveform.
            # The tiled per-task tensors are shared with the store pass.
            kernel_start = time.perf_counter()
            tiled = tile_level(level, W, xp)
            first_pass = simulate_level(
                pool.data,
                pointers,
                packed,
                level,
                W,
                capacities,
                pathpulse_fraction=config.pathpulse_fraction,
                net_delay_filtering=config.enable_net_delay_filtering,
                tiled=tiled,
                xp=xp,
            )
            stats.kernel_invocations += T
            stats.level_batches += 1
            stats.max_batch_tasks = max(stats.max_batch_tasks, T)
            timings.kernel += time.perf_counter() - kernel_start

            # Prefix-sum layout of all output addresses of the level.
            schedule_start = time.perf_counter()
            addresses = pool.allocate_batch(first_pass.storage_words)
            timings.scheduling += time.perf_counter() - schedule_start

            # Store pass: re-run the batched kernel (as the paper does) and
            # scatter the output waveforms to their assigned addresses.
            kernel_start = time.perf_counter()
            if config.two_pass:
                result = simulate_level(
                    pool.data,
                    pointers,
                    packed,
                    level,
                    W,
                    capacities,
                    pathpulse_fraction=config.pathpulse_fraction,
                    net_delay_filtering=config.enable_net_delay_filtering,
                    tiled=tiled,
                    xp=xp,
                )
                stats.kernel_invocations += T
                stats.level_batches += 1
            else:
                result = first_pass
            timings.kernel += time.perf_counter() - kernel_start

            schedule_start = time.perf_counter()
            pool.store_level_outputs(
                level.output_nets,
                window_indices,
                addresses,
                result.initial_values,
                result.toggle_buffer,
                result.toggle_starts,
                result.toggle_counts,
                net_ids=level.output_net_ids,
            )
            timings.scheduling += time.perf_counter() - schedule_start

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _assemble_result(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        window_outputs: Dict[str, Dict[int, Waveform]],
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> SimulationResult:
        start = time.perf_counter()
        result = SimulationResult(
            duration=duration, timings=timings, stats=stats
        )

        # Source nets: toggle counts (and waveforms) from the original
        # stimulus, clipped to the simulated duration.
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            if self.config.store_waveforms:
                result.waveforms[net] = wave

        # Gate output nets: stitch per-window results back together.  When
        # full waveforms are kept, toggle counts come from the stitched
        # waveform so transitions landing exactly on a window seam are
        # counted once; otherwise the per-window counts are summed.
        total_output_transitions = 0
        for net, per_window in window_outputs.items():
            if self.config.store_waveforms:
                stitched = self._stitch(net, per_window, windows)
                result.waveforms[net] = stitched
                count = stitched.toggle_count()
            else:
                count = sum(w.toggle_count() for w in per_window.values())
            result.toggle_counts[net] = count
            total_output_transitions += count
        stats.output_transitions = total_output_transitions

        # Input events seen by gates = fanout-weighted net transitions.
        stats.input_events = fanin_weighted_toggles(self.netlist, result.toggle_counts)

        timings.readback += time.perf_counter() - start
        return result

    def _assemble_result_vector(
        self,
        stimulus: Mapping[str, Waveform],
        windows: Sequence[_WindowRange],
        readback: _ReadbackAccumulator,
        duration: int,
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> SimulationResult:
        """Vectorized counterpart of :meth:`_assemble_result`.

        Stitching runs over the accumulated per-window host arrays
        (:func:`~repro.core.restructure.stitch_windows`), reproducing the
        reference :meth:`_stitch` seam rules bit-exactly; without stored
        waveforms, per-net counts are sums over the trimmed window counts,
        exactly as the reference path sums per-window toggle counts.
        """
        hnp = HOST
        start = time.perf_counter()
        result = SimulationResult(duration=duration, timings=timings, stats=stats)

        for net in self.netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            if self.config.store_waveforms:
                result.waveforms[net] = wave

        window_starts = hnp.asarray(
            [window.start for window in windows], dtype=hnp.int64
        )
        total_output_transitions = 0
        for index, net in enumerate(readback.nets):
            establish, counts, times = readback.net_series(index)
            if self.config.store_waveforms:
                stitched = stitch_windows(window_starts, establish, counts, times)
                result.waveforms[net] = stitched
                count = stitched.toggle_count()
            else:
                count = int(counts.sum())
            result.toggle_counts[net] = count
            total_output_transitions += count
        stats.output_transitions = total_output_transitions

        stats.input_events = fanin_weighted_toggles(self.netlist, result.toggle_counts)
        timings.readback += time.perf_counter() - start
        return result

    def _stitch(
        self,
        net: str,
        per_window: Dict[int, Waveform],
        windows: Sequence[_WindowRange],
    ) -> Waveform:
        changes: List[Tuple[int, int]] = []
        for window in windows:
            wave = per_window.get(window.index)
            if wave is None:
                continue
            for local_time, value in wave.changes():
                absolute = local_time + window.start
                if changes and changes[-1][1] == value:
                    continue
                if changes and absolute <= changes[-1][0]:
                    # A window-boundary artefact (a transition recorded right
                    # at the seam); keep the earlier one.
                    continue
                changes.append((absolute, value))
        if not changes:
            changes = [(0, 0)]
        return Waveform.from_changes(changes)


def _reorder_span(span: SourceEvents, perm: List[int]) -> SourceEvents:
    """Permute a span's nets into ``perm`` order (host-side, per chunk)."""
    hnp = HOST
    order = hnp.asarray(perm, dtype=hnp.int64)
    counts = hnp.diff(span.offsets)[order]
    times = gather_segments(span.times, span.offsets[:-1][order], counts)
    offsets = hnp.zeros(len(perm) + 1, dtype=hnp.int64)
    offsets[1:] = hnp.cumsum(counts)
    return SourceEvents(
        nets=tuple(span.nets[i] for i in perm),
        times=times,
        offsets=offsets,
        initial_values=span.initial_values[order],
    )


def _source_span_fields(span: SourceEvents, chunk_start: int):
    """A chunk's *owned* source activity from its (extended) span.

    Chunks own the half-open interval ``[chunk_start, chunk_end)``: a
    toggle landing exactly on a chunk boundary belongs to the chunk it
    opens (the span lookback of at least one time unit guarantees it is
    present).  Returns ``(establish, counts, times)`` with ``establish``
    the value each source holds *entering* the chunk — after every toggle
    ``t < chunk_start`` — and ``times`` the owned toggles, net-major.
    Span toggles before ``chunk_start`` were already owned and reported by
    the previous chunk.  The per-net ``searchsorted`` loop is deliberate:
    span times are absolute and may exceed ``EOW`` on very long runs,
    where the shift-trick batched counting would not be safe.
    """
    hnp = HOST
    S = span.net_count
    lo = hnp.zeros(S, dtype=hnp.int64)
    for i in range(S):
        segment = span.times[int(span.offsets[i]) : int(span.offsets[i + 1])]
        lo[i] = hnp.searchsorted(segment, chunk_start, side="left")
    counts = hnp.diff(span.offsets) - lo
    establish = span.initial_values ^ (lo & 1)
    times = gather_segments(span.times, span.offsets[:-1] + lo, counts)
    return establish, counts, times


def simulate(
    netlist: Netlist,
    stimulus: Mapping[str, Waveform],
    cycles: Optional[int] = None,
    duration: Optional[int] = None,
    annotation: Optional[DelayAnnotation] = None,
    config: Optional[SimConfig] = None,
) -> SimulationResult:
    """One-call convenience wrapper (deprecated).

    Prefer the unified entry point::

        from repro.api import get_backend
        get_backend("gatspi").prepare(netlist, annotation, config).run(...)

    which supports every registered backend and reuses the compiled design
    across runs.
    """
    from ..api import get_backend

    session = get_backend("gatspi").prepare(
        netlist, annotation=annotation, config=config
    )
    return session.run(stimulus, cycles=cycles, duration=duration)
