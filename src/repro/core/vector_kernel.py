"""Level-batched struct-of-arrays execution of Algorithm 1.

The scalar kernel (:mod:`repro.core.kernel`) runs one Python loop per
``(gate, window)`` task, which makes the interpreter itself the hot path.
This module is the GPU-faithful alternative: ``compile()`` lowers the
levelized netlist into *packed design tensors* — flat truth-table and
delay-table arrays plus per-level gate/pin attribute matrices — and
:func:`simulate_level` then executes Algorithm 1 for **every task of a level
at once**, exactly the way a CUDA grid would: all tasks advance through the
same lock-step event loop with numpy boolean masks playing the role of the
SIMT active mask.  Tasks that exhaust their input waveforms retire from the
batch; the loop ends when the batch is empty.

Bit-exactness with the scalar kernel is a hard contract (the scalar path
stays registered as the reference oracle): every arithmetic step below
mirrors the scalar statement it replaces, including the float64 arrival-time
arithmetic, the MSI equality comparison, and the truncating ``int()``
conversion of output timestamps.

Task layout
-----------

A level with ``G`` gates simulated over ``W`` cycle-parallel windows forms
``T = G * W`` tasks ordered gate-major (``task = gate * W + window``).  Gates
of different arity share one batch: pin axes are padded to the level's widest
gate, and padded pins point at a canonical null waveform (``[0, EOW]``) so
they never produce events, carry weight 0, and cannot perturb the column
index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .delaytable import flatten_delay_array
from .kernel import GateKernelInputs
from .truthtable import pack_truth_tables
from .waveform import EOW, INITIAL_ONE_MARKER


@dataclass(frozen=True)
class LevelTensors:
    """Packed design tensors for one logic level (one row per gate).

    ``weights``/``wire_rise``/``wire_fall``/``delay_offsets`` are padded to
    the widest gate of the level; ``num_pins`` records each gate's real
    arity.  ``tt_offsets`` and ``delay_offsets`` index the design-level flat
    tensors on :class:`PackedDesign`.
    """

    gate_names: Tuple[str, ...]
    output_nets: Tuple[str, ...]
    input_nets: Tuple[Tuple[str, ...], ...]
    num_pins: np.ndarray  # (G,)    int64
    weights: np.ndarray  # (G, P)  int64, 0 on padded pins
    wire_rise: np.ndarray  # (G, P)  float64
    wire_fall: np.ndarray  # (G, P)  float64
    tt_offsets: np.ndarray  # (G,)    int64 into PackedDesign.tt_flat
    delay_offsets: np.ndarray  # (G, P)  int64 into PackedDesign.delay_flat
    num_columns: np.ndarray  # (G,)    int64, 2**num_pins

    @property
    def gate_count(self) -> int:
        return len(self.gate_names)

    @property
    def max_pins(self) -> int:
        return int(self.weights.shape[1]) if self.weights.ndim == 2 else 0


@dataclass(frozen=True)
class PackedDesign:
    """The whole design lowered to flat tensors, one :class:`LevelTensors`
    per logic level.  Built once at compile time and shared by every
    simulation run (and every multi-device share) of the session."""

    tt_flat: np.ndarray  # int8: concatenated truth tables
    delay_flat: np.ndarray  # float64: concatenated per-pin delay arrays
    levels: Tuple[LevelTensors, ...]

    @property
    def gate_count(self) -> int:
        return sum(level.gate_count for level in self.levels)

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level_task_counts(self, windows: int) -> List[int]:
        """Batch size (tasks) of each level for a given window count."""
        return [level.gate_count * windows for level in self.levels]


def pack_design(
    gates_by_level: Sequence[Sequence],
    gate_inputs: Mapping[str, GateKernelInputs],
) -> PackedDesign:
    """Lower compiled per-gate kernel inputs into packed design tensors.

    ``gates_by_level`` is ``CompiledGraph.gates_by_level``; ``gate_inputs``
    is the per-gate :class:`GateKernelInputs` mapping the scalar path
    consumes, so both kernels are guaranteed to read the *same* truth and
    delay tables.
    """
    tt_tables: List[np.ndarray] = []
    delay_blocks: List[np.ndarray] = []
    delay_offset_by_id: Dict[int, int] = {}
    delay_chunks: List[np.ndarray] = []
    delay_cursor = 0

    def delay_offset(arr: np.ndarray) -> int:
        nonlocal delay_cursor
        key = id(arr)
        if key not in delay_offset_by_id:
            chunk = flatten_delay_array(arr)
            delay_chunks.append(chunk)
            delay_offset_by_id[key] = delay_cursor
            delay_cursor += chunk.size
        return delay_offset_by_id[key]

    levels: List[LevelTensors] = []
    for level_gates in gates_by_level:
        names: List[str] = []
        outputs: List[str] = []
        inputs: List[Tuple[str, ...]] = []
        pins: List[int] = []
        for gate in level_gates:
            names.append(gate.name)
            outputs.append(gate.output_net)
            inputs.append(tuple(gate.input_nets))
            pins.append(len(gate.input_nets))
        G = len(names)
        P = max(pins) if pins else 0
        num_pins = np.asarray(pins, dtype=np.int64)
        weights = np.zeros((G, P), dtype=np.int64)
        wire_rise = np.zeros((G, P), dtype=np.float64)
        wire_fall = np.zeros((G, P), dtype=np.float64)
        tt_offsets = np.zeros(G, dtype=np.int64)
        delay_offsets = np.zeros((G, P), dtype=np.int64)
        num_columns = np.zeros(G, dtype=np.int64)
        for g, gate in enumerate(level_gates):
            inp = gate_inputs[gate.name]
            n = inp.num_pins
            num_columns[g] = 1 << n
            tt_tables.append(inp.truth_table)
            for i in range(n):
                weights[g, i] = 1 << (n - 1 - i)
                wire_rise[g, i] = inp.wire_rise[i]
                wire_fall[g, i] = inp.wire_fall[i]
                delay_offsets[g, i] = delay_offset(inp.delay_arrays[i])
        levels.append(
            LevelTensors(
                gate_names=tuple(names),
                output_nets=tuple(outputs),
                input_nets=tuple(inputs),
                num_pins=num_pins,
                weights=weights,
                wire_rise=wire_rise,
                wire_fall=wire_fall,
                tt_offsets=tt_offsets,
                delay_offsets=delay_offsets,
                num_columns=num_columns,
            )
        )

    tt_flat, tt_offsets_all = pack_truth_tables(tt_tables)
    cursor = 0
    for level in levels:
        G = level.gate_count
        level.tt_offsets[:] = tt_offsets_all[cursor : cursor + G]
        cursor += G
    delay_flat = (
        np.concatenate(delay_chunks) if delay_chunks else np.zeros(0, dtype=np.float64)
    )
    return PackedDesign(
        tt_flat=tt_flat, delay_flat=delay_flat, levels=tuple(levels)
    )


@dataclass(frozen=True)
class TiledLevel:
    """Per-gate level tensors tiled across windows (one row per task).

    Built once per (level, window-count) and shared by the count and store
    passes — the tiling is pure repetition, so recomputing it per pass would
    double the batch set-up cost for identical results.
    """

    weights: np.ndarray  # (T, P) int64
    wire_rise: np.ndarray  # (T, P) float64
    wire_fall: np.ndarray  # (T, P) float64
    tt_offsets: np.ndarray  # (T,)   int64
    delay_offsets: np.ndarray  # (T, P) int64
    num_columns: np.ndarray  # (T,)   int64
    pin_mask: np.ndarray  # (T, P) bool


def tile_level(level: LevelTensors, windows: int) -> TiledLevel:
    """Tile the per-gate tensors of a level into per-task rows
    (``task = gate * windows + window``)."""
    return TiledLevel(
        weights=np.repeat(level.weights, windows, axis=0),
        wire_rise=np.repeat(level.wire_rise, windows, axis=0),
        wire_fall=np.repeat(level.wire_fall, windows, axis=0),
        tt_offsets=np.repeat(level.tt_offsets, windows),
        delay_offsets=np.repeat(level.delay_offsets, windows, axis=0),
        num_columns=np.repeat(level.num_columns, windows),
        pin_mask=(
            np.arange(level.max_pins, dtype=np.int64)[None, :]
            < np.repeat(level.num_pins, windows)[:, None]
        ),
    )


@dataclass
class LevelKernelResult:
    """Output of one level-batched kernel launch (all tasks of a level).

    Toggle times live in one flat buffer with per-task start offsets — the
    same struct-of-arrays shape the store pass writes to the waveform pool.
    """

    initial_values: np.ndarray  # (T,) int64
    toggle_buffer: np.ndarray  # flat int64
    toggle_starts: np.ndarray  # (T,) int64
    toggle_counts: np.ndarray  # (T,) int64

    @property
    def task_count(self) -> int:
        return int(self.initial_values.size)

    @property
    def storage_words(self) -> np.ndarray:
        """Pool words per task: establishing entry + toggles + EOW + marker."""
        return 2 + self.toggle_counts + (self.initial_values != 0)

    def toggles_for(self, task: int) -> np.ndarray:
        start = int(self.toggle_starts[task])
        return self.toggle_buffer[start : start + int(self.toggle_counts[task])]


def simulate_level(
    pool: np.ndarray,
    input_pointers: np.ndarray,
    design: PackedDesign,
    level: LevelTensors,
    windows: int,
    toggle_capacity: np.ndarray,
    pathpulse_fraction: float = 1.0,
    net_delay_filtering: bool = True,
    tiled: Optional[TiledLevel] = None,
) -> LevelKernelResult:
    """Run Algorithm 1 for every ``(gate, window)`` task of one level.

    ``input_pointers`` is ``(T, P)`` with padded pins pointing at a null
    waveform (``[0, EOW]``); ``toggle_capacity`` is a per-task upper bound on
    produced toggles (the task's total input-toggle count is always safe:
    every event-loop iteration consumes at least one input transition).
    ``tiled`` optionally supplies the :func:`tile_level` result so the count
    and store passes share one tiling.
    """
    G = level.gate_count
    T = G * windows
    P = level.max_pins
    if input_pointers.shape != (T, P):
        raise ValueError(
            f"input pointers must have shape {(T, P)}, got {input_pointers.shape}"
        )

    tt_flat = design.tt_flat
    delay_flat = design.delay_flat
    limit = pool.size - 1

    if tiled is None:
        tiled = tile_level(level, windows)
    weights = tiled.weights
    wire_rise = tiled.wire_rise
    wire_fall = tiled.wire_fall
    tt_off = tiled.tt_offsets
    delay_off = tiled.delay_offsets
    ncols = tiled.num_columns
    pin_mask = tiled.pin_mask

    # Lines 3-6: skip initial-one markers, resolve the initial column/output.
    ptr = np.ascontiguousarray(input_pointers, dtype=np.int64).copy()
    if P:
        ptr += pool[np.minimum(ptr, limit)] == INITIAL_ONE_MARKER
        col = (weights * (ptr & 1)).sum(axis=1)
    else:
        col = np.zeros(T, dtype=np.int64)
    out = tt_flat[tt_off + col].astype(np.int64)
    initial_values = out.copy()

    caps = np.ascontiguousarray(toggle_capacity, dtype=np.int64)
    if caps.shape != (T,):
        raise ValueError(f"toggle capacity must have shape {(T,)}, got {caps.shape}")
    toggle_starts = np.zeros(T, dtype=np.int64)
    np.cumsum(caps[:-1], out=toggle_starts[1:])
    toggle_buffer = np.zeros(int(caps.sum()), dtype=np.int64)
    toggle_counts = np.zeros(T, dtype=np.int64)
    last_time = np.zeros(T, dtype=np.int64)

    idx = np.arange(T, dtype=np.int64)
    if P == 0:
        idx = idx[:0]

    # Main lock-step event loop (Algorithm 1 lines 7-25, all tasks at once).
    while idx.size:
        p = ptr[idx]
        pm = pin_mask[idx]
        wr = wire_rise[idx]
        wf = wire_fall[idx]

        # Interconnect inertial filtering (lines 10-12): drop input pulses
        # narrower than the wire delay of their leading edge.
        if net_delay_filtering:
            while True:
                first = pool[np.minimum(p + 1, limit)]
                second = pool[np.minimum(p + 2, limit)]
                nd = np.where(p & 1, wf, wr)
                drop = (
                    pm
                    & (first != EOW)
                    & (second != EOW)
                    & (second - nd - first < 0)
                )
                if not drop.any():
                    break
                p = p + (drop << 1)
            ptr[idx] = p

        upcoming = pool[np.minimum(p + 1, limit)]
        nd = np.where(p & 1, wf, wr)
        arrival = np.where(pm & (upcoming != EOW), upcoming + nd, np.inf)
        next_time = arrival.min(axis=1)

        alive = next_time < EOW
        if not alive.all():
            idx = idx[alive]
            if not idx.size:
                break
            p = p[alive]
            arrival = arrival[alive]
            next_time = next_time[alive]

        # MSI resolution (lines 14-18): advance every pin arriving now.
        arriving = arrival == next_time[:, None]
        p = p + arriving
        ptr[idx] = p
        w = weights[idx]
        new_pin_value = p & 1
        col[idx] += np.where(
            arriving, np.where(new_pin_value == 1, w, -w), 0
        ).sum(axis=1)

        c = col[idx]
        new_out = tt_flat[tt_off[idx] + c].astype(np.int64)
        changed = new_out != out[idx]
        if not changed.any():
            continue

        # Output evaluation and inertial filtering (lines 19-25).
        ci = idx[changed]
        cc = c[changed]
        arr_c = arriving[changed]
        input_edge = 1 - (p[changed] & 1)  # RISE=0 for a pin that just rose
        output_edge = 1 - new_out[changed]  # RISE=0 when the output rises
        Cc = ncols[ci]
        doff = delay_off[ci]
        base = doff + (output_edge * Cc)[:, None] + cc[:, None]
        exact_idx = base + input_edge * (2 * Cc[:, None])
        d_exact = np.where(
            arr_c, delay_flat[np.where(arr_c, exact_idx, 0)], np.inf
        )
        best = d_exact.min(axis=1)
        opp_idx = base + (1 - input_edge) * (2 * Cc[:, None])
        d_opp = np.where(arr_c, delay_flat[np.where(arr_c, opp_idx, 0)], np.inf)
        best_opp = d_opp.min(axis=1)
        gate_delay = np.where(
            np.isfinite(best),
            best,
            np.where(np.isfinite(best_opp), best_opp, 0.0),
        )

        output_time = (next_time[changed] + gate_delay).astype(np.int64)
        min_pulse = gate_delay * pathpulse_fraction
        last_c = last_time[ci]
        reject = (toggle_counts[ci] > 0) & (
            (output_time - last_c < min_pulse) | (output_time <= last_c)
        )

        # Reject: cancel the previous output pulse, do not record this one.
        rej = ci[reject]
        toggle_counts[rej] -= 1
        prev = toggle_starts[rej] + toggle_counts[rej] - 1
        last_time[rej] = np.where(
            toggle_counts[rej] > 0, toggle_buffer[np.maximum(prev, 0)], 0
        )
        # Accept: record the transition.
        acc = ci[~reject]
        acc_times = output_time[~reject]
        toggle_buffer[toggle_starts[acc] + toggle_counts[acc]] = acc_times
        toggle_counts[acc] += 1
        last_time[acc] = acc_times
        out[ci] = new_out[changed]

    return LevelKernelResult(
        initial_values=initial_values,
        toggle_buffer=toggle_buffer,
        toggle_starts=toggle_starts,
        toggle_counts=toggle_counts,
    )
