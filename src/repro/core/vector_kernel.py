"""Level-batched struct-of-arrays execution of Algorithm 1.

The scalar kernel (:mod:`repro.core.kernel`) runs one Python loop per
``(gate, window)`` task, which makes the interpreter itself the hot path.
This module is the GPU-faithful alternative: ``compile()`` lowers the
levelized netlist into *packed design tensors* — flat truth-table and
delay-table arrays plus per-level gate/pin attribute matrices — and
:func:`simulate_level` then executes Algorithm 1 for **every task of a level
at once**, exactly the way a CUDA grid would: all tasks advance through the
same lock-step event loop with boolean masks playing the role of the SIMT
active mask.  Tasks that exhaust their input waveforms retire from the
batch; the loop ends when the batch is empty.

Every array operation routes through the pluggable array backend layer
(:mod:`repro.core.xp`): ``pack_design`` builds the tensors on the host, and
:meth:`PackedDesign.to_device` materializes them on the configured backend
at compile time — for the numpy backend this is the identity, so the
default path is bit- and cost-identical to a hard-wired numpy
implementation, while torch/cupy sessions run the same lock-step loop on
device tensors.

Bit-exactness with the scalar kernel is a hard contract (the scalar path
stays registered as the reference oracle): every arithmetic step below
mirrors the scalar statement it replaces, including the float64 arrival-time
arithmetic, the MSI equality comparison, and the truncating ``int()``
conversion of output timestamps.

Task layout
-----------

A level with ``G`` gates simulated over ``W`` cycle-parallel windows forms
``T = G * W`` tasks ordered gate-major (``task = gate * W + window``).  Gates
of different arity share one batch: pin axes are padded to the level's widest
gate, and padded pins point at a canonical null waveform (``[0, EOW]``) so
they never produce events, carry weight 0, and cannot perturb the column
index.

Fanout-aware input gathering
----------------------------

Each level also carries *gather index tensors* built at pack time:
``input_net_ids`` maps every ``(gate, pin)`` to a design-wide net index
(padded pins to the reserved null id), and ``output_net_ids`` maps every
gate to its output net.  The waveform pool registers stored waveforms in
flat tables keyed by those same indices, so per-level input-pointer
gathering is two fancy-indexing reads — no per-batch Python lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .delaytable import flatten_delay_array
from .kernel import GateKernelInputs
from .truthtable import pack_truth_tables
from .waveform import EOW, INITIAL_ONE_MARKER
from .xp import HOST, ArrayBackend, is_host


@dataclass(frozen=True)
class LevelTensors:
    """Packed design tensors for one logic level (one row per gate).

    ``weights``/``wire_rise``/``wire_fall``/``delay_offsets`` are padded to
    the widest gate of the level; ``num_pins`` records each gate's real
    arity.  ``tt_offsets`` and ``delay_offsets`` index the design-level flat
    tensors on :class:`PackedDesign`.  ``input_net_ids``/``output_net_ids``
    are the fanout-aware gather index tensors into the design's net index
    (padded pins carry :attr:`PackedDesign.null_net_id`).
    """

    gate_names: Tuple[str, ...]
    output_nets: Tuple[str, ...]
    input_nets: Tuple[Tuple[str, ...], ...]
    num_pins: "object"  # (G,)    int64
    weights: "object"  # (G, P)  int64, 0 on padded pins
    wire_rise: "object"  # (G, P)  float64
    wire_fall: "object"  # (G, P)  float64
    tt_offsets: "object"  # (G,)    int64 into PackedDesign.tt_flat
    delay_offsets: "object"  # (G, P)  int64 into PackedDesign.delay_flat
    num_columns: "object"  # (G,)    int64, 2**num_pins
    input_net_ids: "object"  # (G, P)  int64 net ids, null id on padded pins
    output_net_ids: "object"  # (G,)    int64 net ids

    @property
    def gate_count(self) -> int:
        return len(self.gate_names)

    @property
    def max_pins(self) -> int:
        return int(self.weights.shape[1]) if self.weights.ndim == 2 else 0


@dataclass(frozen=True)
class PackedDesign:
    """The whole design lowered to flat tensors, one :class:`LevelTensors`
    per logic level.  Built once at compile time and shared by every
    simulation run (and every multi-device share) of the session.

    ``net_index`` assigns every net of the design (stimulus sources first,
    then gate outputs in level order) a dense integer id; the id one past
    the last net (:attr:`null_net_id`) is reserved for padded pins and maps
    to the pool's null waveform.  ``device`` names the array backend the
    tensors are materialized on (``"numpy"`` straight out of
    :func:`pack_design`).
    """

    tt_flat: "object"  # int8: concatenated truth tables
    delay_flat: "object"  # float64: concatenated per-pin delay arrays
    levels: Tuple[LevelTensors, ...]
    net_index: Mapping[str, int]
    device: str = "numpy"

    @property
    def gate_count(self) -> int:
        return sum(level.gate_count for level in self.levels)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def null_net_id(self) -> int:
        """Reserved net id for padded pins (the pool's null-waveform row)."""
        return len(self.net_index)

    def level_task_counts(self, windows: int) -> List[int]:
        """Batch size (tasks) of each level for a given window count."""
        return [level.gate_count * windows for level in self.levels]

    def to_device(self, xp: ArrayBackend) -> "PackedDesign":
        """Materialize every tensor on ``xp`` (identity for numpy).

        This is the one compile-time host→device upload of a session; all
        simulation runs (and multi-device shares) reuse the materialized
        tensors.
        """
        if is_host(xp):
            return self
        levels = tuple(
            replace(
                level,
                num_pins=xp.asarray(level.num_pins, xp.int64),
                weights=xp.asarray(level.weights, xp.int64),
                wire_rise=xp.asarray(level.wire_rise, xp.float64),
                wire_fall=xp.asarray(level.wire_fall, xp.float64),
                tt_offsets=xp.asarray(level.tt_offsets, xp.int64),
                delay_offsets=xp.asarray(level.delay_offsets, xp.int64),
                num_columns=xp.asarray(level.num_columns, xp.int64),
                input_net_ids=xp.asarray(level.input_net_ids, xp.int64),
                output_net_ids=xp.asarray(level.output_net_ids, xp.int64),
            )
            for level in self.levels
        )
        return PackedDesign(
            tt_flat=xp.asarray(self.tt_flat, xp.int8),
            delay_flat=xp.asarray(self.delay_flat, xp.float64),
            levels=levels,
            net_index=self.net_index,
            device=xp.name,
        )


def pack_design(
    gates_by_level: Sequence[Sequence],
    gate_inputs: Mapping[str, GateKernelInputs],
    extra_nets: Sequence[str] = (),
) -> PackedDesign:
    """Lower compiled per-gate kernel inputs into packed design tensors.

    ``gates_by_level`` is ``CompiledGraph.gates_by_level``; ``gate_inputs``
    is the per-gate :class:`GateKernelInputs` mapping the scalar path
    consumes, so both kernels are guaranteed to read the *same* truth and
    delay tables.  ``extra_nets`` (the design's stimulus source nets) seed
    the net index so every net the testbench drives has an id even when no
    gate reads it.
    """
    hnp = HOST
    net_index: Dict[str, int] = {}
    for net in extra_nets:
        net_index.setdefault(net, len(net_index))

    tt_tables: List = []
    delay_offset_by_id: Dict[int, int] = {}
    delay_chunks: List = []
    delay_cursor = 0

    def delay_offset(arr) -> int:
        nonlocal delay_cursor
        key = id(arr)
        if key not in delay_offset_by_id:
            chunk = flatten_delay_array(arr)
            delay_chunks.append(chunk)
            delay_offset_by_id[key] = delay_cursor
            delay_cursor += chunk.size
        return delay_offset_by_id[key]

    def net_id(net: str) -> int:
        return net_index.setdefault(net, len(net_index))

    levels: List[LevelTensors] = []
    for level_gates in gates_by_level:
        names: List[str] = []
        outputs: List[str] = []
        inputs: List[Tuple[str, ...]] = []
        pins: List[int] = []
        for gate in level_gates:
            names.append(gate.name)
            outputs.append(gate.output_net)
            inputs.append(tuple(gate.input_nets))
            pins.append(len(gate.input_nets))
        G = len(names)
        P = max(pins) if pins else 0
        num_pins = hnp.asarray(pins, dtype=hnp.int64)
        weights = hnp.zeros((G, P), dtype=hnp.int64)
        wire_rise = hnp.zeros((G, P), dtype=hnp.float64)
        wire_fall = hnp.zeros((G, P), dtype=hnp.float64)
        tt_offsets = hnp.zeros(G, dtype=hnp.int64)
        delay_offsets = hnp.zeros((G, P), dtype=hnp.int64)
        num_columns = hnp.zeros(G, dtype=hnp.int64)
        input_net_ids = hnp.zeros((G, P), dtype=hnp.int64)
        output_net_ids = hnp.zeros(G, dtype=hnp.int64)
        for g, gate in enumerate(level_gates):
            inp = gate_inputs[gate.name]
            n = inp.num_pins
            num_columns[g] = 1 << n
            tt_tables.append(inp.truth_table)
            output_net_ids[g] = net_id(gate.output_net)
            for i in range(n):
                weights[g, i] = 1 << (n - 1 - i)
                wire_rise[g, i] = inp.wire_rise[i]
                wire_fall[g, i] = inp.wire_fall[i]
                delay_offsets[g, i] = delay_offset(inp.delay_arrays[i])
                input_net_ids[g, i] = net_id(gate.input_nets[i])
        levels.append(
            LevelTensors(
                gate_names=tuple(names),
                output_nets=tuple(outputs),
                input_nets=tuple(inputs),
                num_pins=num_pins,
                weights=weights,
                wire_rise=wire_rise,
                wire_fall=wire_fall,
                tt_offsets=tt_offsets,
                delay_offsets=delay_offsets,
                num_columns=num_columns,
                input_net_ids=input_net_ids,
                output_net_ids=output_net_ids,
            )
        )

    # Padded pins must point at the reserved null id, assigned only after
    # every real net has an index (it is len(net_index)).
    null_id = len(net_index)
    for level in levels:
        G = level.gate_count
        P = level.max_pins
        if P:
            pad = hnp.arange(P, dtype=hnp.int64)[None, :] >= level.num_pins[:, None]
            level.input_net_ids[pad] = null_id

    tt_flat, tt_offsets_all = pack_truth_tables(tt_tables)
    cursor = 0
    for level in levels:
        G = level.gate_count
        level.tt_offsets[:] = tt_offsets_all[cursor : cursor + G]
        cursor += G
    delay_flat = (
        hnp.concatenate(delay_chunks)
        if delay_chunks
        else hnp.zeros(0, dtype=hnp.float64)
    )
    return PackedDesign(
        tt_flat=tt_flat,
        delay_flat=delay_flat,
        levels=tuple(levels),
        net_index=net_index,
    )


@dataclass(frozen=True)
class TiledLevel:
    """Per-gate level tensors tiled across windows (one row per task).

    Built once per (level, window-count) and shared by the count and store
    passes — the tiling is pure repetition, so recomputing it per pass would
    double the batch set-up cost for identical results.
    """

    weights: "object"  # (T, P) int64
    wire_rise: "object"  # (T, P) float64
    wire_fall: "object"  # (T, P) float64
    tt_offsets: "object"  # (T,)   int64
    delay_offsets: "object"  # (T, P) int64
    num_columns: "object"  # (T,)   int64
    pin_mask: "object"  # (T, P) bool


def tile_level(
    level: LevelTensors, windows: int, xp: ArrayBackend = HOST
) -> TiledLevel:
    """Tile the per-gate tensors of a level into per-task rows
    (``task = gate * windows + window``)."""
    return TiledLevel(
        weights=xp.repeat(level.weights, windows, axis=0),
        wire_rise=xp.repeat(level.wire_rise, windows, axis=0),
        wire_fall=xp.repeat(level.wire_fall, windows, axis=0),
        tt_offsets=xp.repeat(level.tt_offsets, windows),
        delay_offsets=xp.repeat(level.delay_offsets, windows, axis=0),
        num_columns=xp.repeat(level.num_columns, windows),
        pin_mask=(
            xp.arange(level.max_pins, dtype=xp.int64)[None, :]
            < xp.repeat(level.num_pins, windows)[:, None]
        ),
    )


@dataclass
class LevelKernelResult:
    """Output of one level-batched kernel launch (all tasks of a level).

    Toggle times live in one flat buffer with per-task start offsets — the
    same struct-of-arrays shape the store pass writes to the waveform pool.
    All arrays live on the backend that executed the launch.
    """

    initial_values: "object"  # (T,) int64
    toggle_buffer: "object"  # flat int64
    toggle_starts: "object"  # (T,) int64
    toggle_counts: "object"  # (T,) int64

    @property
    def task_count(self) -> int:
        return int(self.initial_values.shape[0])

    @property
    def storage_words(self):
        """Pool words per task: establishing entry + toggles + EOW + marker."""
        return 2 + self.toggle_counts + (self.initial_values != 0)

    def toggles_for(self, task: int):
        start = int(self.toggle_starts[task])
        return self.toggle_buffer[start : start + int(self.toggle_counts[task])]


def simulate_level(
    pool,
    input_pointers,
    design: PackedDesign,
    level: LevelTensors,
    windows: int,
    toggle_capacity,
    pathpulse_fraction: float = 1.0,
    net_delay_filtering: bool = True,
    tiled: Optional[TiledLevel] = None,
    xp: ArrayBackend = HOST,
) -> LevelKernelResult:
    """Run Algorithm 1 for every ``(gate, window)`` task of one level.

    ``input_pointers`` is ``(T, P)`` with padded pins pointing at a null
    waveform (``[0, EOW]``); ``toggle_capacity`` is a per-task upper bound on
    produced toggles (the task's total input-toggle count is always safe:
    every event-loop iteration consumes at least one input transition).
    ``tiled`` optionally supplies the :func:`tile_level` result so the count
    and store passes share one tiling.  ``pool`` and both per-task tensors
    must live on ``xp``; the result stays on ``xp``.
    """
    G = level.gate_count
    T = G * windows
    P = level.max_pins
    if tuple(input_pointers.shape) != (T, P):
        raise ValueError(
            f"input pointers must have shape {(T, P)}, got "
            f"{tuple(input_pointers.shape)}"
        )

    tt_flat = design.tt_flat
    delay_flat = design.delay_flat
    limit = xp.size(pool) - 1

    if tiled is None:
        tiled = tile_level(level, windows, xp)
    weights = tiled.weights
    wire_rise = tiled.wire_rise
    wire_fall = tiled.wire_fall
    tt_off = tiled.tt_offsets
    delay_off = tiled.delay_offsets
    ncols = tiled.num_columns
    pin_mask = tiled.pin_mask

    # Lines 3-6: skip initial-one markers, resolve the initial column/output.
    ptr = xp.copy(xp.ascontiguousarray(input_pointers, xp.int64))
    if P:
        ptr += xp.astype(
            pool[xp.minimum(ptr, limit)] == INITIAL_ONE_MARKER, xp.int64
        )
        col = xp.sum(weights * (ptr & 1), axis=1)
    else:
        col = xp.zeros(T, dtype=xp.int64)
    out = xp.astype(tt_flat[tt_off + col], xp.int64)
    initial_values = xp.copy(out)

    caps = xp.ascontiguousarray(toggle_capacity, xp.int64)
    if tuple(caps.shape) != (T,):
        raise ValueError(
            f"toggle capacity must have shape {(T,)}, got {tuple(caps.shape)}"
        )
    toggle_starts = xp.zeros(T, dtype=xp.int64)
    toggle_starts[1:] = xp.cumsum(caps[:-1])
    toggle_buffer = xp.zeros(int(xp.sum(caps)), dtype=xp.int64)
    toggle_counts = xp.zeros(T, dtype=xp.int64)
    last_time = xp.zeros(T, dtype=xp.int64)

    idx = xp.arange(T, dtype=xp.int64)
    if P == 0:
        idx = idx[:0]

    # Main lock-step event loop (Algorithm 1 lines 7-25, all tasks at once).
    while xp.size(idx):
        p = ptr[idx]
        pm = pin_mask[idx]
        wr = wire_rise[idx]
        wf = wire_fall[idx]

        # Interconnect inertial filtering (lines 10-12): drop input pulses
        # narrower than the wire delay of their leading edge.
        if net_delay_filtering:
            while True:
                first = pool[xp.minimum(p + 1, limit)]
                second = pool[xp.minimum(p + 2, limit)]
                nd = xp.where(p & 1, wf, wr)
                drop = (
                    pm
                    & (first != EOW)
                    & (second != EOW)
                    & (second - nd - first < 0)
                )
                if not xp.any(drop):
                    break
                p = p + (xp.astype(drop, xp.int64) << 1)
            ptr[idx] = p

        upcoming = pool[xp.minimum(p + 1, limit)]
        nd = xp.where(p & 1, wf, wr)
        arrival = xp.where(pm & (upcoming != EOW), upcoming + nd, xp.inf)
        next_time = xp.min(arrival, axis=1)

        alive = next_time < EOW
        if not xp.all(alive):
            idx = idx[alive]
            if not xp.size(idx):
                break
            p = p[alive]
            arrival = arrival[alive]
            next_time = next_time[alive]

        # MSI resolution (lines 14-18): advance every pin arriving now.
        arriving = arrival == next_time[:, None]
        p = p + xp.astype(arriving, xp.int64)
        ptr[idx] = p
        w = weights[idx]
        new_pin_value = p & 1
        col[idx] += xp.sum(
            xp.where(arriving, xp.where(new_pin_value == 1, w, -w), 0), axis=1
        )

        c = col[idx]
        new_out = xp.astype(tt_flat[tt_off[idx] + c], xp.int64)
        changed = new_out != out[idx]
        if not xp.any(changed):
            continue

        # Output evaluation and inertial filtering (lines 19-25).
        ci = idx[changed]
        cc = c[changed]
        arr_c = arriving[changed]
        input_edge = 1 - (p[changed] & 1)  # RISE=0 for a pin that just rose
        output_edge = 1 - new_out[changed]  # RISE=0 when the output rises
        Cc = ncols[ci]
        doff = delay_off[ci]
        base = doff + (output_edge * Cc)[:, None] + cc[:, None]
        exact_idx = base + input_edge * (2 * Cc[:, None])
        d_exact = xp.where(
            arr_c, delay_flat[xp.where(arr_c, exact_idx, 0)], xp.inf
        )
        best = xp.min(d_exact, axis=1)
        opp_idx = base + (1 - input_edge) * (2 * Cc[:, None])
        d_opp = xp.where(arr_c, delay_flat[xp.where(arr_c, opp_idx, 0)], xp.inf)
        best_opp = xp.min(d_opp, axis=1)
        gate_delay = xp.where(
            xp.isfinite(best),
            best,
            xp.where(xp.isfinite(best_opp), best_opp, 0.0),
        )

        output_time = xp.astype(next_time[changed] + gate_delay, xp.int64)
        min_pulse = gate_delay * pathpulse_fraction
        last_c = last_time[ci]
        reject = (toggle_counts[ci] > 0) & (
            (output_time - last_c < min_pulse) | (output_time <= last_c)
        )

        # Reject: cancel the previous output pulse, do not record this one.
        rej = ci[reject]
        toggle_counts[rej] -= 1
        prev = toggle_starts[rej] + toggle_counts[rej] - 1
        last_time[rej] = xp.where(
            toggle_counts[rej] > 0, toggle_buffer[xp.maximum(prev, 0)], 0
        )
        # Accept: record the transition.
        acc = ci[~reject]
        acc_times = output_time[~reject]
        toggle_buffer[toggle_starts[acc] + toggle_counts[acc]] = acc_times
        toggle_counts[acc] += 1
        last_time[acc] = acc_times
        out[ci] = new_out[changed]

    return LevelKernelResult(
        initial_values=initial_values,
        toggle_buffer=toggle_buffer,
        toggle_starts=toggle_starts,
        toggle_counts=toggle_counts,
    )


# ----------------------------------------------------------------------
# Clocked update: vectorized register commit at a capture edge
# ----------------------------------------------------------------------
def register_next_state(
    state: "object",
    data: "object",
    enable: "object",
    reset: "object",
    *,
    has_enable: "object",
    has_reset: "object",
    reset_active_low: "object",
    reset_values: "object",
) -> "object":
    """Next state of every register at one capture edge, in lock step.

    All arguments are host arrays over the register file's register axis:
    ``data``/``enable``/``reset`` carry the pin levels sampled at the edge
    (don't-care where the corresponding ``has_*`` mask is false), and the
    precedence matches :meth:`repro.cells.Cell.next_state` bit for bit —
    reset dominates enable dominates data.  Registers whose reset is
    asserted at the edge commit ``reset_values`` whether the reset is async
    or sync: an async reset still held at the capture edge pins the state
    exactly like a sync one (mid-cycle async pulses are handled separately
    by the clocked driver's pending-event ledger).
    """
    hnp = HOST
    next_state = hnp.where(has_enable & (enable == 0), state, data)
    reset_level = hnp.where(reset_active_low, 1 - reset, reset)
    reset_active = has_reset & (reset_level == 1)
    return hnp.astype(
        hnp.where(reset_active, reset_values, next_state), state.dtype
    )
