"""Truth tables as 1-D lookup arrays (paper Fig. 4).

GATSPI evaluates any combinational cell with a uniform array lookup: every
input pin is assigned a power-of-two *weight*; the weighted sum of the pins
currently at logic 1 is the index into a flat truth-table array whose entries
are the output values.

Pin weights follow the paper's convention: the first pin in the cell's pin
list gets the highest weight.  For a 2-input cell with pins ``(A, B)`` the
weights are ``A = 2**1`` and ``B = 2**0`` so, e.g., ``A=1, B=1`` indexes entry
3 of the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

LogicFunction = Callable[[Sequence[int]], int]


def pin_weights(num_pins: int) -> Tuple[int, ...]:
    """Return the lookup weight of each pin (first pin has highest weight)."""
    if num_pins < 0:
        raise ValueError("number of pins must be non-negative")
    return tuple(2 ** (num_pins - 1 - index) for index in range(num_pins))


def index_for_values(values: Sequence[int]) -> int:
    """Compute the truth-table index for a tuple of pin values."""
    weights = pin_weights(len(values))
    index = 0
    for value, weight in zip(values, weights):
        if value not in (0, 1):
            raise ValueError(f"logic value must be 0 or 1, got {value!r}")
        index += value * weight
    return index


def values_for_index(index: int, num_pins: int) -> Tuple[int, ...]:
    """Inverse of :func:`index_for_values`."""
    if not 0 <= index < 2**num_pins:
        raise ValueError(f"index {index} out of range for {num_pins} pins")
    weights = pin_weights(num_pins)
    return tuple((index // weight) % 2 for weight in weights)


@dataclass(frozen=True)
class TruthTable:
    """A flat truth-table array for one single-output combinational cell."""

    num_pins: int
    table: np.ndarray

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=np.int8)
        if table.shape != (2**self.num_pins,):
            raise ValueError(
                f"truth table for {self.num_pins} pins must have "
                f"{2 ** self.num_pins} entries, got shape {table.shape}"
            )
        if table.size and not np.all((table == 0) | (table == 1)):
            raise ValueError("truth table entries must be 0 or 1")
        object.__setattr__(self, "table", table)

    @classmethod
    def from_function(cls, num_pins: int, function: LogicFunction) -> "TruthTable":
        """Enumerate ``function`` over all input combinations."""
        entries = np.zeros(2**num_pins, dtype=np.int8)
        for index in range(2**num_pins):
            values = values_for_index(index, num_pins)
            entries[index] = function(values) & 1
        return cls(num_pins=num_pins, table=entries)

    @classmethod
    def from_entries(cls, entries: Sequence[int]) -> "TruthTable":
        """Build from a flat list of output values (length must be 2**n)."""
        size = len(entries)
        num_pins = size.bit_length() - 1
        if 2**num_pins != size:
            raise ValueError("truth table length must be a power of two")
        return cls(num_pins=num_pins, table=np.asarray(entries, dtype=np.int8))

    def evaluate(self, values: Sequence[int]) -> int:
        """Evaluate the cell for a tuple of pin values."""
        if len(values) != self.num_pins:
            raise ValueError(
                f"expected {self.num_pins} pin values, got {len(values)}"
            )
        return int(self.table[index_for_values(values)])

    def lookup(self, index: int) -> int:
        """Raw array lookup by precomputed index (the kernel's fast path)."""
        return int(self.table[index])

    @property
    def weights(self) -> Tuple[int, ...]:
        return pin_weights(self.num_pins)

    def is_equivalent_to(self, function: LogicFunction) -> bool:
        """Check the table against a reference boolean function."""
        for index in range(2**self.num_pins):
            values = values_for_index(index, self.num_pins)
            if int(self.table[index]) != (function(values) & 1):
                return False
        return True


def pack_truth_tables(
    tables: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate truth-table arrays into one flat design tensor.

    Returns ``(flat, offsets)`` where ``flat`` is a single ``int8`` array and
    ``offsets[k]`` is the start of table ``k`` inside it, so the vector kernel
    evaluates any gate with ``flat[offsets[gate] + column_index]``.  Tables
    that are the *same object* (cells sharing a library truth table) are
    stored once.
    """
    offsets = np.zeros(len(tables), dtype=np.int64)
    chunks: List[np.ndarray] = []
    offset_by_id: dict = {}
    cursor = 0
    for k, table in enumerate(tables):
        key = id(table)
        if key in offset_by_id:
            offsets[k] = offset_by_id[key]
            continue
        chunk = np.ascontiguousarray(table, dtype=np.int8).reshape(-1)
        chunks.append(chunk)
        offset_by_id[key] = cursor
        offsets[k] = cursor
        cursor += chunk.size
    flat = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int8)
    return flat, offsets
