"""Array waveform format used throughout GATSPI (paper Fig. 3).

A waveform is a flat integer array of toggle timestamps:

* Each entry is a timestamp at which the signal changes value.
* The logic value is encoded in the *index* of the entry: the signal value
  after the toggle stored at an even index is 0, after an odd index it is 1.
* An optional leading ``-1`` placeholder shifts the first real timestamp to an
  odd index, which is how an initial value of 1 is encoded.
* The array is terminated by the end-of-waveform sentinel ``EOW``
  (``INT32_MAX``).

Example from the paper::

    A = [-1, 0, 34, 59, 123, ..., 74832, EOW]   # initial value 1
    B = [0, 4, 78, ..., 367, EOW]               # initial value 0

The first entry (timestamp 0, possibly preceded by ``-1``) *establishes* the
initial value and is not counted as a toggle; every subsequent entry is a real
transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

#: End-of-waveform sentinel, INT32_MAX as in the paper.
EOW: int = 2**31 - 1

#: Placeholder used at index 0 to encode an initial value of 1.
INITIAL_ONE_MARKER: int = -1

#: The one dtype used for waveform arrays and the device memory pool.
#: Timestamps are stored as 64-bit integers while ``EOW`` stays at the
#: paper's INT32_MAX, so overflow guarding happens against the sentinel
#: value (see :mod:`repro.core.memory`), never against the dtype limit.
POOL_DTYPE = np.int64


class WaveformError(ValueError):
    """Raised when a waveform array violates the Fig. 3 format."""


def _as_int_array(values: Iterable[int]) -> np.ndarray:
    if isinstance(values, np.ndarray):
        if values.dtype == POOL_DTYPE and not values.flags.writeable:
            # Zero-copy path: pool readback hands in *read-only* views of the
            # waveform pool; keep them as views.  Writeable arrays are copied
            # so a caller mutating its array cannot invalidate a validated
            # waveform after the fact.
            arr = values
        else:
            arr = values.astype(POOL_DTYPE)  # astype always copies here
    else:
        arr = np.asarray(list(values), dtype=POOL_DTYPE)
    if arr.ndim != 1:
        raise WaveformError("waveform data must be one-dimensional")
    return arr


@dataclass(frozen=True)
class Waveform:
    """A single signal waveform in the GATSPI array format.

    ``data`` always includes the trailing ``EOW`` sentinel and, when the
    initial value is 1, the leading ``-1`` marker.  Instances are immutable;
    all constructors validate the format.
    """

    data: np.ndarray

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        arr = _as_int_array(self.data)
        object.__setattr__(self, "data", arr)
        self._validate()

    @classmethod
    def from_array(cls, data: Sequence[int]) -> "Waveform":
        """Build a waveform directly from a raw Fig. 3 array (with EOW)."""
        return cls(_as_int_array(data))

    @classmethod
    def constant(cls, value: int, start_time: int = 0) -> "Waveform":
        """A waveform that holds ``value`` from ``start_time`` onward."""
        if value not in (0, 1):
            raise WaveformError(f"logic value must be 0 or 1, got {value!r}")
        if value == 0:
            return cls.from_array([start_time, EOW])
        return cls.from_array([INITIAL_ONE_MARKER, start_time, EOW])

    @classmethod
    def from_changes(cls, changes: Sequence[Tuple[int, int]]) -> "Waveform":
        """Build a waveform from ``(time, value)`` pairs.

        The first pair establishes the initial value.  Pairs must be sorted by
        strictly increasing time; consecutive pairs with equal values are
        collapsed (they are not toggles).
        """
        if not changes:
            raise WaveformError("at least one (time, value) change is required")
        filtered: List[Tuple[int, int]] = []
        for time, value in changes:
            if value not in (0, 1):
                raise WaveformError(f"logic value must be 0 or 1, got {value!r}")
            if filtered and filtered[-1][1] == value:
                continue
            if filtered and time <= filtered[-1][0]:
                raise WaveformError(
                    f"change times must be strictly increasing, got {time} after "
                    f"{filtered[-1][0]}"
                )
            filtered.append((int(time), int(value)))
        first_time, first_value = filtered[0]
        data: List[int] = []
        if first_value == 1:
            data.append(INITIAL_ONE_MARKER)
        data.extend(time for time, _ in filtered)
        data.append(EOW)
        return cls.from_array(data)

    @classmethod
    def from_toggle_array(
        cls, initial_value: int, toggle_times: Sequence[int], start_time: int = 0
    ) -> "Waveform":
        """Build a waveform from an initial value and an *array* of toggles.

        The vectorized counterpart of :meth:`from_initial_and_toggles`: the
        Fig. 3 array is assembled directly from ``toggle_times`` (which must
        already be sorted, strictly increasing, and greater than
        ``start_time`` — validation rejects anything else) instead of
        looping over per-change Python tuples.  This is the constructor the
        bulk restructure/slicing paths use.
        """
        if initial_value not in (0, 1):
            raise WaveformError(
                f"logic value must be 0 or 1, got {initial_value!r}"
            )
        times = np.asarray(toggle_times, dtype=POOL_DTYPE)
        if times.ndim != 1:
            raise WaveformError("toggle times must be one-dimensional")
        marker = 1 if initial_value else 0
        data = np.empty(times.size + marker + 2, dtype=POOL_DTYPE)
        if marker:
            data[0] = INITIAL_ONE_MARKER
        data[marker] = start_time
        data[marker + 1 : marker + 1 + times.size] = times
        data[-1] = EOW
        data.setflags(write=False)
        return cls(data)

    @classmethod
    def from_initial_and_toggles(
        cls, initial_value: int, toggle_times: Sequence[int], start_time: int = 0
    ) -> "Waveform":
        """Build a waveform from an initial value and a list of toggle times.

        The initial value is established at ``start_time``; each toggle flips
        the value.  Toggle times must be strictly increasing and greater than
        ``start_time``.
        """
        changes: List[Tuple[int, int]] = [(start_time, initial_value)]
        value = initial_value
        for time in toggle_times:
            value ^= 1
            changes.append((int(time), value))
        return cls.from_changes(changes)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        arr = self.data
        if arr.size < 2:
            raise WaveformError("waveform must contain at least one timestamp and EOW")
        if arr[-1] != EOW:
            raise WaveformError("waveform must be terminated by EOW")
        body = arr[:-1]
        if body.size == 0:
            raise WaveformError("waveform must contain at least one timestamp")
        start = 0
        if body[0] == INITIAL_ONE_MARKER:
            start = 1
            if body.size < 2:
                raise WaveformError("waveform with -1 marker needs a timestamp")
        timestamps = body[start:]
        if timestamps.size and np.any(timestamps < 0):
            raise WaveformError("timestamps must be non-negative")
        if timestamps.size > 1 and np.any(np.diff(timestamps) <= 0):
            raise WaveformError("timestamps must be strictly increasing")
        if timestamps.size and np.any(timestamps >= EOW):
            raise WaveformError("timestamps must be smaller than EOW")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def has_initial_one_marker(self) -> bool:
        return bool(self.data[0] == INITIAL_ONE_MARKER)

    @property
    def start_index(self) -> int:
        """Index of the first real timestamp (0 or 1 depending on marker)."""
        return 1 if self.has_initial_one_marker else 0

    @property
    def timestamps(self) -> np.ndarray:
        """All toggle timestamps (including the establishing entry), no EOW."""
        return self.data[self.start_index : -1]

    @property
    def initial_value(self) -> int:
        """Logic value established by the first entry."""
        return self.start_index & 1

    @property
    def start_time(self) -> int:
        """Time at which the initial value is established."""
        return int(self.data[self.start_index])

    @property
    def final_value(self) -> int:
        """Logic value after the last transition."""
        last_index = self.data.size - 2  # index of last timestamp
        return last_index & 1

    def toggle_count(self) -> int:
        """Number of real transitions (excludes the establishing entry).

        This is the TC value recorded by the first GATSPI kernel pass and the
        value written to SAIF.
        """
        return int(self.timestamps.size - 1)

    def __len__(self) -> int:
        return int(self.data.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Waveform):
            return NotImplemented
        return bool(
            self.data.size == other.data.size and np.array_equal(self.data, other.data)
        )

    def __hash__(self) -> int:
        return hash(self.data.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(str(int(v)) for v in self.data[:-1])
        return f"Waveform([{body}, EOW])"

    # ------------------------------------------------------------------
    # Value queries
    # ------------------------------------------------------------------
    def changes(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(time, value)`` pairs, including the establishing entry."""
        data = self.data
        for index in range(self.start_index, data.size - 1):
            yield int(data[index]), index & 1

    def value_at(self, time: int) -> int:
        """Logic value at ``time`` (after any toggle occurring exactly then).

        Before the establishing entry the signal is assumed to already hold
        its initial value.
        """
        timestamps = self.timestamps
        # Index of the last timestamp <= time.
        position = int(np.searchsorted(timestamps, time, side="right")) - 1
        if position < 0:
            return self.initial_value
        return (self.start_index + position) & 1

    def toggles_in(self, t_start: int, t_end: int) -> int:
        """Count transitions with ``t_start < t <= t_end`` (establishing entry
        excluded)."""
        times = self.timestamps[1:]
        if times.size == 0:
            return 0
        lo = int(np.searchsorted(times, t_start, side="right"))
        hi = int(np.searchsorted(times, t_end, side="right"))
        return hi - lo

    def duration_at(self, value: int, t_start: int, t_end: int) -> int:
        """Total time spent at ``value`` within ``[t_start, t_end]``.

        Used for SAIF T0/T1 accounting.
        """
        if value not in (0, 1):
            raise WaveformError(f"logic value must be 0 or 1, got {value!r}")
        if t_end < t_start:
            raise WaveformError("t_end must not precede t_start")
        total = 0
        current_time = t_start
        current_value = self.value_at(t_start)
        for time, new_value in self.changes():
            if time <= t_start:
                continue
            if time > t_end:
                break
            if current_value == value:
                total += time - current_time
            current_time = time
            current_value = new_value
        if current_value == value:
            total += t_end - current_time
        return total

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shifted(self, offset: int) -> "Waveform":
        """Return a copy with every timestamp shifted by ``offset``."""
        changes = [(time + offset, value) for time, value in self.changes()]
        if changes and changes[0][0] < 0:
            raise WaveformError("shift would produce negative timestamps")
        return Waveform.from_changes(changes)

    def window(self, t_start: int, t_end: int, rebase: bool = True) -> "Waveform":
        """Slice the waveform to the half-open window ``[t_start, t_end)``.

        The returned waveform establishes the value held at ``t_start`` and
        contains every transition strictly inside the window.  When ``rebase``
        is true the timestamps are shifted so the window starts at 0 — this is
        the cycle-parallelism restructuring step of the paper (Fig. 5).
        """
        if t_end <= t_start:
            raise WaveformError("window end must be after window start")
        changes: List[Tuple[int, int]] = [(t_start, self.value_at(t_start))]
        for time, value in self.changes():
            if time <= t_start:
                continue
            if time >= t_end:
                break
            changes.append((time, value))
        if rebase:
            changes = [(time - t_start, value) for time, value in changes]
        return Waveform.from_changes(changes)

    def inverted(self) -> "Waveform":
        """Return the logical complement of this waveform."""
        changes = [(time, value ^ 1) for time, value in self.changes()]
        return Waveform.from_changes(changes)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_list(self) -> List[int]:
        """Return the raw Fig. 3 array (including markers and EOW)."""
        return [int(v) for v in self.data]

    def to_change_list(self) -> List[Tuple[int, int]]:
        """Return ``(time, value)`` pairs including the establishing entry."""
        return list(self.changes())


def concatenate_windows(windows: Sequence[Waveform], window_length: int) -> Waveform:
    """Stitch per-window waveforms back into one waveform.

    Window ``k`` is assumed to cover ``[k * window_length, (k+1) *
    window_length)`` in rebased (window-local) time.  This is the inverse of
    :meth:`Waveform.window` and is used when combining cycle-parallel results.
    """
    if not windows:
        raise WaveformError("at least one window is required")
    changes: List[Tuple[int, int]] = []
    for index, wave in enumerate(windows):
        offset = index * window_length
        for time, value in wave.changes():
            absolute = time + offset
            if changes and changes[-1][1] == value:
                continue
            if changes and absolute <= changes[-1][0]:
                raise WaveformError(
                    "window waveforms overlap; check window_length"
                )
            changes.append((absolute, value))
    return Waveform.from_changes(changes)


def merge_toggle_counts(waveforms: Iterable[Waveform]) -> int:
    """Total toggle count across a collection of waveforms."""
    return sum(w.toggle_count() for w in waveforms)
