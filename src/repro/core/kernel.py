"""Per-gate, per-cycle re-simulation kernel (paper Algorithm 1).

On the GPU each thread runs this routine for one gate and one independent
stimulus window.  Here it is a plain Python function operating on the flat
waveform memory pool and per-pin start-address pointers, with the same
structure as the CUDA kernel:

* resolve initial input values and the initial output value (lines 3-6),
* walk the input waveforms in arrival-time order, applying per-pin
  interconnect delays and interconnect inertial pulse filtering
  (lines 8-13 / 10-12),
* resolve multiple-simultaneous-input (MSI) switching before re-evaluating
  the output (lines 14-18),
* evaluate the output through the truth-table lookup and the conditional
  delay-table lookup (Fig. 4),
* apply gate-output inertial pulse filtering controlled by
  ``PATHPULSEPERCENT`` (lines 19-25).

The kernel is run twice per logic level: a *count* pass that only sizes the
output waveforms (so their start addresses in the pre-allocated device memory
pool can be laid out) and a *store* pass that writes them (paper Fig. 5).
Both passes execute the identical routine; the pass only differs in whether
the produced transitions are written back to the pool by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .delaytable import FALL, GateDelayTable, NO_DELAY, RISE
from .waveform import EOW, INITIAL_ONE_MARKER


@dataclass
class GateKernelInputs:
    """Everything one kernel thread needs for one gate.

    ``delay_arrays`` holds one ``(2, 2, 2**n)`` array per input pin (rows:
    input edge, output edge; columns: truth-table index), and ``wire_rise`` /
    ``wire_fall`` the per-pin interconnect delays.
    """

    truth_table: np.ndarray
    delay_arrays: Tuple[np.ndarray, ...]
    wire_rise: Tuple[float, ...]
    wire_fall: Tuple[float, ...]

    @property
    def num_pins(self) -> int:
        return len(self.delay_arrays)


@dataclass
class GateKernelResult:
    """Output of one kernel invocation for one gate and one window."""

    initial_value: int
    toggle_times: List[int]

    @property
    def toggle_count(self) -> int:
        return len(self.toggle_times)

    @property
    def storage_words(self) -> int:
        """Pool words needed to store the output waveform (Fig. 3 layout).

        One establishing entry, the toggles, the EOW terminator, plus the
        ``-1`` marker when the initial value is 1.
        """
        return 1 + len(self.toggle_times) + 1 + (1 if self.initial_value else 0)


def resolve_gate_delay(
    delay_arrays: Sequence[np.ndarray],
    switching: Sequence[Tuple[int, int]],
    output_edge: int,
    column_index: int,
) -> float:
    """Look up the gate delay for an observed output transition.

    ``switching`` lists ``(pin_index, input_edge)`` for every pin that changed
    at this timestamp (MSI resolution): the fastest valid arc wins.  Arcs that
    are undefined for the exact input edge fall back to the opposite edge, and
    finally to zero, so sparse SDF annotation never stalls simulation.
    """
    best = NO_DELAY
    for pin_index, input_edge in switching:
        value = delay_arrays[pin_index][input_edge, output_edge, column_index]
        if value < best:
            best = float(value)
    if best != NO_DELAY:
        return best
    for pin_index, input_edge in switching:
        value = delay_arrays[pin_index][1 - input_edge, output_edge, column_index]
        if value < best:
            best = float(value)
    if best != NO_DELAY:
        return best
    return 0.0


def simulate_gate_window(
    pool: np.ndarray,
    input_pointers: Sequence[int],
    gate: GateKernelInputs,
    pathpulse_fraction: float = 1.0,
    net_delay_filtering: bool = True,
) -> GateKernelResult:
    """Simulate one gate for one stimulus window (Algorithm 1).

    ``pool`` is the flat waveform memory array; ``input_pointers`` gives the
    start address of each input pin's waveform inside the pool.  The output
    waveform is returned as an initial value plus toggle times (window-local);
    the caller stores it back into the pool in the store pass.
    """
    num_pins = gate.num_pins
    if len(input_pointers) != num_pins:
        raise ValueError("one input pointer per pin is required")

    # ------------------------------------------------------------------
    # Lines 3-6: initial values and initial output.
    # ------------------------------------------------------------------
    pointers = [int(p) for p in input_pointers]
    for i in range(num_pins):
        if pool[pointers[i]] == INITIAL_ONE_MARKER:
            pointers[i] += 1

    weights = [1 << (num_pins - 1 - i) for i in range(num_pins)]
    column_index = 0
    for i in range(num_pins):
        if pointers[i] & 1:
            column_index += weights[i]

    output_value = int(gate.truth_table[column_index])
    initial_value = output_value
    toggle_times: List[int] = []
    last_output_time = 0

    wire_rise = gate.wire_rise
    wire_fall = gate.wire_fall
    delay_arrays = gate.delay_arrays
    truth_table = gate.truth_table

    # ------------------------------------------------------------------
    # Main loop over input transitions in arrival-time order (lines 7-25).
    # ------------------------------------------------------------------
    while True:
        next_time = EOW
        for i in range(num_pins):
            pointer = pointers[i]
            # Interconnect inertial filtering (lines 10-12): drop input pulses
            # narrower than the wire delay of their leading edge.
            if net_delay_filtering:
                while True:
                    first = pool[pointer + 1]
                    if first == EOW:
                        break
                    second = pool[pointer + 2]
                    if second == EOW:
                        break
                    net_delay = wire_fall[i] if (pointer & 1) else wire_rise[i]
                    if second - net_delay - first < 0:
                        pointer += 2
                        continue
                    break
                pointers[i] = pointer
            upcoming = pool[pointer + 1]
            if upcoming == EOW:
                continue
            net_delay = wire_fall[i] if (pointer & 1) else wire_rise[i]
            arrival = upcoming + net_delay
            if arrival < next_time:
                next_time = arrival

        if next_time == EOW:
            break

        # ------------------------------------------------------------------
        # MSI resolution (lines 14-18): advance every pin arriving now.
        # ------------------------------------------------------------------
        switching: List[Tuple[int, int]] = []
        for i in range(num_pins):
            pointer = pointers[i]
            upcoming = pool[pointer + 1]
            if upcoming == EOW:
                continue
            net_delay = wire_fall[i] if (pointer & 1) else wire_rise[i]
            if upcoming + net_delay == next_time:
                pointer += 1
                pointers[i] = pointer
                new_value = pointer & 1
                if new_value:
                    column_index += weights[i]
                    switching.append((i, RISE))
                else:
                    column_index -= weights[i]
                    switching.append((i, FALL))

        new_output = int(truth_table[column_index])
        if new_output == output_value:
            continue

        # ------------------------------------------------------------------
        # Output evaluation and inertial filtering (lines 19-25).
        # ------------------------------------------------------------------
        output_edge = RISE if new_output == 1 else FALL
        gate_delay = resolve_gate_delay(
            delay_arrays, switching, output_edge, column_index
        )
        output_time = int(next_time + gate_delay)
        min_pulse = gate_delay * pathpulse_fraction
        if toggle_times and (
            output_time - last_output_time < min_pulse
            or output_time <= last_output_time
        ):
            # Reject the previous output pulse: cancel the last recorded
            # transition and do not record this one.
            toggle_times.pop()
            output_value = new_output
            last_output_time = toggle_times[-1] if toggle_times else 0
        else:
            toggle_times.append(output_time)
            output_value = new_output
            last_output_time = output_time

    return GateKernelResult(initial_value=initial_value, toggle_times=toggle_times)


def count_input_events(
    pool: np.ndarray, input_pointers: Sequence[int]
) -> int:
    """Number of input transitions this gate/window will process.

    Used for workload statistics and the GPU performance model; the count
    excludes each waveform's establishing entry.
    """
    total = 0
    for pointer in input_pointers:
        index = int(pointer)
        if pool[index] == INITIAL_ONE_MARKER:
            index += 1
        index += 1  # skip the establishing entry
        while pool[index] != EOW:
            total += 1
            index += 1
    return total
