"""Cone-of-influence incremental recompilation and partial execution plans.

This module is the dirty-marking half of ``Session.rerun(edits)``: given the
seed gates an edit batch touched (:class:`~repro.core.edits.EditReceipt`), it

1. patches the compiled artifacts in place of a full recompile —
   :func:`rebuild_artifacts` rebuilds only the dirty slices of the packed
   truth/delay/pin tensors, reusing every clean level (and, for delay-only
   edits, the whole levelization and net index) byte-for-byte from the
   previous compile; and
2. derives a *partial execution plan* — :func:`build_dirty_plan` propagates
   the seeds forward through the fanout (``forward_cone``) and packs just the
   dirty sub-design, with the clean nets feeding the cone exposed as
   *boundary sources* whose waveforms come from the previous run.

Bit-identity contract
---------------------

The packed tensors produced here must be indistinguishable, to the kernels,
from a cold :func:`~repro.core.vector_kernel.pack_design` of the edited
design:

* non-structural rebuilds *append* the dirty gates' truth/delay rows at the
  end of the flat tensors and repoint only those gates' offsets — shared
  (deduplicated) rows referenced by clean gates are never mutated, so a
  dirty gate that used to share a row with a clean one simply stops sharing;
* structural rebuilds re-levelize but reuse every clean gate's
  :class:`~repro.core.kernel.GateKernelInputs` (the packed tensors are
  rebuilt from the same arrays both kernels read, so they cannot diverge).

Partial execution is exact because a gate outside the forward cone of every
edited gate sees bit-identical inputs, hence produces a bit-identical output
waveform; the dirty sub-design re-simulates from the previous run's exact
absolute waveforms at the cone boundary with the post-edit settle margin,
which the window-overlap invariance of the engine guarantees reproduces the
cold run of the edited design.

This file (with :mod:`repro.core.vector_kernel`) is one of the two
sanctioned homes of packed-tensor slice mutation — ``tools/lint_invariants.py``
rule ``MUT002`` rejects subscript writes to ``LevelTensors``/``PackedDesign``
fields anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from .compile_cache import CompiledArtifacts
from .delaytable import flatten_delay_array
from .edits import EditJournal, forward_cone
from .kernel import GateKernelInputs
from .vector_kernel import LevelTensors, PackedDesign, pack_design
from .xp import HOST, ArrayBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from ..sdf.annotate import DelayAnnotation
    from .config import SimConfig


def derive_compile_key(base_key: str, journal: EditJournal) -> str:
    """Compile-cache key of a design reached by edits from a cached base.

    The chain key is the parent fingerprint plus the edit-journal
    fingerprint, so repeated ECO iterations (apply → rerun → undo → apply
    the next candidate) stay warm in the compile cache: undoing a batch
    cancels its journal entries and the key collapses back to ``base_key``,
    re-adopting the original artifacts.
    """
    fingerprint = journal.fingerprint()
    if not fingerprint:
        return base_key
    return f"{base_key}~eco:{fingerprint}"


@dataclass(frozen=True)
class ExecutionPlan:
    """What one engine run reads, executes, and reads back.

    A *full* plan covers the whole design (``simulate()``); a *dirty* plan
    from :func:`build_dirty_plan` covers only the cone of influence of an
    edit batch, with ``source_nets`` holding the cone's boundary nets (true
    stimulus sources plus clean nets feeding dirty gates) and
    ``readback_nets`` the dirty gate outputs.
    """

    source_nets: Tuple[str, ...]
    gates_by_level: Tuple[Tuple[object, ...], ...]
    readback_nets: Tuple[str, ...]
    packed: PackedDesign
    source_net_ids: "object"  # (len(source_nets),) int64 on the plan's device
    readback_net_ids: "object"  # (len(readback_nets),) int64 on the plan's device
    dirty_gates: int
    total_gates: int
    #: Partial plans extend every window's source slice by the settle
    #: margin on the right: boundary waveforms must keep the propagation
    #: tail a cold run's in-pool waveforms carry past the window edge
    #: (bounded by the critical-path estimate), or the final window's
    #: kept tail — and wire-filter decisions at the seam — would diverge.
    partial: bool = False

    @property
    def dirty_fraction(self) -> float:
        if self.total_gates <= 0:
            return 0.0
        return self.dirty_gates / self.total_gates


def _build_gate_input(
    netlist: "Netlist", annotation: "DelayAnnotation", gate_name: str
) -> GateKernelInputs:
    """Per-gate kernel inputs, exactly as a cold compile builds them."""
    cell = netlist.instances[gate_name].cell
    truth_table = netlist.library.truth_table(cell.name).table
    if cell.num_inputs == 0:
        return GateKernelInputs(
            truth_table=truth_table,
            delay_arrays=(),
            wire_rise=(),
            wire_fall=(),
        )
    table = annotation.table_for(gate_name)
    delay_arrays = tuple(table.table_for(pin) for pin in cell.inputs)
    wire_rise = []
    wire_fall = []
    for pin in cell.inputs:
        wire = annotation.wire_delay(gate_name, pin)
        wire_rise.append(float(wire.rise))
        wire_fall.append(float(wire.fall))
    return GateKernelInputs(
        truth_table=truth_table,
        delay_arrays=delay_arrays,
        wire_rise=tuple(wire_rise),
        wire_fall=tuple(wire_fall),
    )


def _estimated_path_delay(annotation: "DelayAnnotation", depth: int) -> int:
    """Critical-path estimate sizing the settle margin (matches compile)."""
    max_wire = 0.0
    for wire in annotation.interconnect.values():
        max_wire = max(max_wire, wire.rise, wire.fall)
    return int(depth * (annotation.max_gate_delay() + max_wire))


def _patch_level(
    level: LevelTensors,
    dirty_rows: Sequence[int],
    gate_inputs: Mapping[str, GateKernelInputs],
    tt_append: List,
    delay_append: List,
    tt_cursor: int,
    delay_cursor: int,
    xp: ArrayBackend,
) -> Tuple[LevelTensors, int, int]:
    """Rebuild the dirty rows of one level's tensors.

    New truth/delay rows are *appended* to the design flats (via the
    ``tt_append``/``delay_append`` host chunk lists) and the dirty rows'
    offsets repointed at them; every clean row — including deduplicated
    rows the dirty gate used to share with clean gates — is left untouched.
    Returns the patched level plus the advanced append cursors.
    """
    hnp = HOST
    wire_rise = xp.copy(level.wire_rise)
    wire_fall = xp.copy(level.wire_fall)
    tt_offsets = xp.copy(level.tt_offsets)
    delay_offsets = xp.copy(level.delay_offsets)
    for g in dirty_rows:
        inp = gate_inputs[level.gate_names[g]]
        table = hnp.asarray(inp.truth_table, dtype=hnp.int8).reshape(-1)
        tt_append.append(table)
        tt_offsets[g] = tt_cursor
        tt_cursor += int(table.size)
        for i in range(inp.num_pins):
            chunk = flatten_delay_array(inp.delay_arrays[i])
            delay_append.append(chunk)
            delay_offsets[g, i] = delay_cursor
            delay_cursor += int(chunk.size)
            wire_rise[g, i] = inp.wire_rise[i]
            wire_fall[g, i] = inp.wire_fall[i]
    patched = replace(
        level,
        wire_rise=wire_rise,
        wire_fall=wire_fall,
        tt_offsets=tt_offsets,
        delay_offsets=delay_offsets,
    )
    return patched, tt_cursor, delay_cursor


def rebuild_artifacts(
    previous: CompiledArtifacts,
    netlist: "Netlist",
    annotation: "DelayAnnotation",
    config: "SimConfig",
    seeds: Sequence[str],
    structural: bool,
    xp: ArrayBackend,
) -> CompiledArtifacts:
    """Incrementally recompile after an edit batch touching ``seeds``.

    Non-structural edits (retype, delay resize) keep the levelization, net
    index, and every clean level byte-for-byte and patch only the seed
    gates' tensor rows; structural edits (rewire, buffer insert/remove)
    re-levelize but reuse every clean gate's kernel inputs.
    """
    ann = annotation if config.full_sdf else annotation.with_averaged_sdf()

    if not structural:
        compiled = previous.compiled
        gate_inputs: Dict[str, GateKernelInputs] = dict(previous.gate_inputs)
        dirty = [name for name in seeds if name in gate_inputs]
        for name in dirty:
            gate_inputs[name] = _build_gate_input(netlist, ann, name)
        dirty_set = set(dirty)
        packed = previous.packed
        tt_cursor = int(xp.size(packed.tt_flat))
        delay_cursor = int(xp.size(packed.delay_flat))
        tt_append: List = []
        delay_append: List = []
        levels: List[LevelTensors] = []
        for level in packed.levels:
            rows = [
                g
                for g, name in enumerate(level.gate_names)
                if name in dirty_set
            ]
            if not rows:
                levels.append(level)
                continue
            patched, tt_cursor, delay_cursor = _patch_level(
                level,
                rows,
                gate_inputs,
                tt_append,
                delay_append,
                tt_cursor,
                delay_cursor,
                xp,
            )
            levels.append(patched)
        hnp = HOST
        tt_flat = packed.tt_flat
        delay_flat = packed.delay_flat
        if tt_append:
            tt_flat = xp.concatenate(
                [tt_flat, xp.asarray(hnp.concatenate(tt_append), dtype=xp.int8)]
            )
        if delay_append:
            delay_flat = xp.concatenate(
                [
                    delay_flat,
                    xp.asarray(hnp.concatenate(delay_append), dtype=xp.float64),
                ]
            )
        new_packed = PackedDesign(
            tt_flat=tt_flat,
            delay_flat=delay_flat,
            levels=tuple(levels),
            net_index=packed.net_index,
            device=packed.device,
        )
        return CompiledArtifacts(
            compiled=compiled,
            gate_inputs=gate_inputs,
            packed=new_packed,
            readback_net_ids=previous.readback_net_ids,
            source_net_ids=previous.source_net_ids,
            estimated_path_delay=_estimated_path_delay(ann, compiled.depth),
        )

    # Structural: the level structure (and possibly the net population)
    # changed, so re-levelize — but reuse every clean gate's kernel inputs,
    # which keeps the expensive per-gate table assembly proportional to the
    # edit, and lets pack_design's id()-keyed delay dedup keep sharing rows.
    from ..netlist import compile_netlist, levelize

    compiled = compile_netlist(netlist, levelize(netlist))
    seed_set = set(seeds)
    gate_inputs = {}
    for gate in compiled.gates.values():
        reused = (
            None if gate.name in seed_set else previous.gate_inputs.get(gate.name)
        )
        gate_inputs[gate.name] = reused or _build_gate_input(
            netlist, ann, gate.name
        )
    packed = pack_design(
        compiled.gates_by_level,
        gate_inputs,
        extra_nets=tuple(netlist.source_nets()),
    ).to_device(xp)
    readback_net_ids = xp.asarray(
        [packed.net_index[gate.output_net] for gate in compiled.gates.values()],
        dtype=xp.int64,
    )
    source_net_ids = xp.asarray(
        [packed.net_index[net] for net in netlist.source_nets()],
        dtype=xp.int64,
    )
    return CompiledArtifacts(
        compiled=compiled,
        gate_inputs=gate_inputs,
        packed=packed,
        readback_net_ids=readback_net_ids,
        source_net_ids=source_net_ids,
        estimated_path_delay=_estimated_path_delay(ann, compiled.depth),
    )


def build_dirty_plan(
    compiled: "object",
    gate_inputs: Mapping[str, GateKernelInputs],
    netlist: "Netlist",
    seeds: Sequence[str],
    xp: ArrayBackend,
) -> Optional[ExecutionPlan]:
    """Pack the forward cone of ``seeds`` into a partial execution plan.

    The sub-design keeps the full design's level structure restricted to
    dirty gates (same-level gates are independent and dirty outputs only
    feed strictly deeper levels, so the restriction stays topologically
    valid); empty levels are dropped.  Boundary nets — inputs of dirty
    gates produced outside the cone — are the plan's stimulus sources, in
    first-reference order.  Returns ``None`` when the cone is empty.
    """
    dirty = forward_cone(netlist, seeds)
    if not dirty:
        return None
    sub_levels: List[Tuple[object, ...]] = []
    readback: List[str] = []
    for level in compiled.gates_by_level:
        sub = tuple(gate for gate in level if gate.name in dirty)
        if sub:
            sub_levels.append(sub)
            readback.extend(gate.output_net for gate in sub)
    if not sub_levels:
        return None
    dirty_outputs = set(readback)
    boundary: List[str] = []
    seen = set(dirty_outputs)
    for level_gates in sub_levels:
        for gate in level_gates:
            for net in gate.input_nets:
                if net not in seen:
                    seen.add(net)
                    boundary.append(net)
    packed = pack_design(
        sub_levels, gate_inputs, extra_nets=tuple(boundary)
    ).to_device(xp)
    source_net_ids = xp.asarray(
        [packed.net_index[net] for net in boundary], dtype=xp.int64
    )
    readback_net_ids = xp.asarray(
        [packed.net_index[net] for net in readback], dtype=xp.int64
    )
    dirty_gates = sum(len(level_gates) for level_gates in sub_levels)
    return ExecutionPlan(
        source_nets=tuple(boundary),
        gates_by_level=tuple(sub_levels),
        readback_nets=tuple(readback),
        packed=packed,
        source_net_ids=source_net_ids,
        readback_net_ids=readback_net_ids,
        dirty_gates=dirty_gates,
        total_gates=int(compiled.gate_count),
        partial=True,
    )


def full_plan(
    compiled: "object",
    netlist: "Netlist",
    packed: PackedDesign,
    source_net_ids: "object",
    readback_net_ids: "object",
) -> ExecutionPlan:
    """The whole-design plan ``simulate()`` executes (trivially clean)."""
    return ExecutionPlan(
        source_nets=tuple(netlist.source_nets()),
        gates_by_level=tuple(tuple(level) for level in compiled.gates_by_level),
        readback_nets=tuple(
            gate.output_net for gate in compiled.gates.values()
        ),
        packed=packed,
        source_net_ids=source_net_ids,
        readback_net_ids=readback_net_ids,
        dirty_gates=int(compiled.gate_count),
        total_gates=int(compiled.gate_count),
    )
