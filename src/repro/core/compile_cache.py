"""Process-wide compiled-design cache.

``GatspiEngine.compile()`` lowers a (netlist, SDF annotation, config)
triple into immutable artifacts: the levelized :class:`CompiledGraph`, the
per-gate truth/delay lookup arrays, and the packed struct-of-arrays design
tensors materialized on the configured array backend.  Compilation is pure
— the artifacts are fully determined by the inputs — so repeated sessions
over the same design (benchmark reruns, multi-run services, the
session-per-request serving shape the ROADMAP scale item describes) can
reuse them instead of re-levelizing and re-packing.

This module provides that memoization: a small LRU keyed by content
*fingerprints* rather than object identity, so two structurally identical
netlist/annotation objects (e.g. a ``deepcopy``) share one compile.  The
fingerprints hash exactly the inputs compilation consumes:

* netlist — name, port lists, every instance (in insertion order, which
  fixes levelization tie-breaking) with its cell and pin connections, and
  the library content of every referenced cell (truth-table bytes,
  intrinsic delays, pin order);
* annotation — every per-pin conditional delay array and wire delay the
  compiled gates read, plus the full interconnect map (it feeds the settle
  margin estimate);
* config — the ``full_sdf`` ablation flag and the ``device`` the packed
  tensors are materialized on.

Mutating a netlist or annotation *in place* after a compile changes its
fingerprint at the next ``compile()`` call, which naturally misses the
cache; the cached artifacts themselves are treated as immutable by every
consumer (the engine copies the one mapping it mutates).

The cache is shared process-wide and may be hit from many threads at once
(concurrent ``prepare()`` calls are exactly the serving shape
:mod:`repro.serve` runs), so every operation that touches the store — the
LRU ``move_to_end`` refresh, insertion, eviction, capacity changes, clears,
and the counters — runs under one module lock.  Fingerprinting stays
outside the lock: it is pure and by far the most expensive part of a
lookup, so concurrent compiles only serialize on the dict operations
themselves.  Two threads missing on the same key concurrently may both
build artifacts; the second ``store`` simply replaces the first with an
equivalent value (compilation is deterministic), which is safe because
consumers never mutate cached artifacts.

The cache is enabled per-run via ``SimConfig(compile_cache=True)`` (the
default) and can be inspected/cleared for tests via :func:`cache_info` /
:func:`clear_compile_cache`.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Default maximum number of cached designs (LRU eviction beyond this).
#: Note the footprint is count-bounded, not byte-bounded: each entry pins
#: one design's packed tensors *on its device* — for torch-cuda/cupy keys
#: that is GPU memory.  Long-lived processes juggling many large designs
#: on an accelerator should lower the capacity (or disable caching via
#: ``SimConfig(compile_cache=False)``) with :func:`set_compile_cache_capacity`.
COMPILE_CACHE_CAPACITY = 16

_capacity = COMPILE_CACHE_CAPACITY

#: Guards every access to ``_CACHE``, ``_capacity``, and the hit/miss
#: counters.  Reentrant so a locked operation may call another helper.
_LOCK = threading.RLock()


def set_compile_cache_capacity(capacity: int) -> None:
    """Set the maximum number of cached designs (0 disables caching).

    Shrinking evicts least-recently-used entries immediately.
    """
    global _capacity
    if capacity < 0:
        raise ValueError("compile cache capacity must be non-negative")
    with _LOCK:
        _capacity = int(capacity)
        while len(_CACHE) > _capacity:
            _CACHE.popitem(last=False)


@dataclass(frozen=True)
class CompiledArtifacts:
    """Everything ``compile()`` produces for one (design, config) key.

    All members are treated as immutable by consumers; ``packed`` and
    ``readback_net_ids`` (the net-id tensor of every gate output, in
    readback order) are already materialized on the key's array backend.
    """

    compiled: "object"  # CompiledGraph
    gate_inputs: "object"  # Dict[str, GateKernelInputs]
    packed: "object"  # PackedDesign (device-materialized)
    readback_net_ids: "object"  # (gate_count,) int64 on the key's device
    source_net_ids: "object"  # (source_count,) int64 on the key's device
    estimated_path_delay: int


_CACHE: "OrderedDict[str, CompiledArtifacts]" = OrderedDict()
_HITS = 0
_MISSES = 0


def _hash_floats(h, *values: float) -> None:
    h.update(struct.pack(f"<{len(values)}d", *values))


def fingerprint_netlist(netlist) -> str:
    """Content hash of everything compilation reads from a netlist."""
    h = hashlib.sha256()
    cells_seen: Dict[str, bool] = {}
    # Instance iteration order matters: levelization emits gates in a
    # deterministic order derived from it, which fixes the packed tensor
    # layout — so the fingerprint preserves insertion order.  Chunks are
    # joined and hashed in one update: per-call hashing overhead dominated
    # fingerprint time on large designs.  Connections are hashed in the
    # cell's canonical pin order (every pin is connected by construction),
    # which is caller-order independent and avoids sorting each dict.
    parts = [
        netlist.name.encode(),
        repr(netlist.inputs).encode(),
        repr(netlist.outputs).encode(),
    ]
    append = parts.append
    for name, inst in netlist.instances.items():
        cell = inst.cell
        append(b"\x00I")
        append(name.encode())
        append(cell.name.encode())
        connections = inst.connections
        for pin in cell.pins:
            append(connections[pin].encode())
        cells_seen.setdefault(cell.name, not cell.is_sequential)
    # Register power-on state (read by the clocked-update driver).
    initial_values = getattr(netlist, "initial_values", None)
    if initial_values:
        append(b"\x00V")
        append(repr(sorted(initial_values.items())).encode())
    h.update(b"\x00".join(parts))
    for cell_name in sorted(cells_seen):
        cell = netlist.library.get(cell_name)
        h.update(b"\x00C")
        h.update(cell_name.encode())
        h.update(repr(cell.inputs).encode())
        h.update(
            repr(
                (
                    cell.is_sequential,
                    cell.clock_pin,
                    cell.data_pin,
                    cell.enable_pin,
                    cell.reset_pin,
                    cell.reset_active_low,
                    cell.reset_async,
                    cell.reset_value,
                    cell.init_value,
                    cell.is_latch,
                )
            ).encode()
        )
        _hash_floats(h, float(cell.intrinsic_rise), float(cell.intrinsic_fall))
        if cells_seen[cell_name]:
            h.update(netlist.library.truth_table(cell_name).table.tobytes())
    return h.hexdigest()


def fingerprint_annotation(annotation, netlist) -> str:
    """Content hash of everything compilation reads from an annotation.

    Covers the per-pin conditional delay arrays and wire delays of every
    combinational instance (exactly what ``compile()`` consumes; looking a
    table up inserts the same zero-delay default ``table_for`` would, so
    the hash is stable across that lazy materialization), plus every
    interconnect entry and any extra gate tables — both feed the
    critical-path estimate that sizes the settle margin.
    """
    h = hashlib.sha256()
    covered = set()
    for inst in netlist.combinational_instances():
        if inst.cell.num_inputs == 0:
            continue
        covered.add(inst.name)
        h.update(b"\x00G")
        h.update(inst.name.encode())
        table = annotation.table_for(inst.name)
        for pin in inst.cell.inputs:
            h.update(table.table_for(pin).tobytes())
            wire = annotation.wire_delay(inst.name, pin)
            _hash_floats(h, float(wire.rise), float(wire.fall))
    for name in sorted(set(annotation.gate_tables) - covered):
        table = annotation.gate_tables[name]
        h.update(b"\x00X")
        h.update(name.encode())
        for pin in table.pins:
            h.update(table.table_for(pin).tobytes())
    for key in sorted(annotation.interconnect):
        wire = annotation.interconnect[key]
        h.update(repr(key).encode())
        _hash_floats(h, float(wire.rise), float(wire.fall))
    return h.hexdigest()


def compile_key(
    netlist, annotation, config, *, netlist_fingerprint: Optional[str] = None
) -> str:
    """Cache key of one ``compile()`` invocation.

    ``netlist_fingerprint`` lets a caller that already hashed the netlist
    (e.g. to consult :func:`levelize_cached`) skip the second hash.
    """
    return "|".join(
        (
            netlist_fingerprint or fingerprint_netlist(netlist),
            fingerprint_annotation(annotation, netlist),
            f"full_sdf={config.full_sdf}",
            f"device={config.effective_device()}",
        )
    )


# ----------------------------------------------------------------------
# One-shot netlist-fingerprint handoff (prepare-scoped)
# ----------------------------------------------------------------------
# ``SimBackend.prepare`` analyzes a design before compiling it; both steps
# hash the same netlist.  The template method seeds the fingerprint the
# analysis pass computed here, the engine's ``compile()`` consumes it, and
# the template discards any leftover when ``_prepare`` returns — so an
# entry can never outlive the prepare call that created it (the netlist is
# not mutated inside prepare, which keeps the content-keyed contract).
_FP_HANDOFF: Dict[int, "Tuple[object, str]"] = {}


def seed_netlist_fingerprint(netlist, fingerprint: str) -> None:
    """Stash a just-computed fingerprint for the next compile of ``netlist``.

    Only call with a fingerprint of the object's *current* content, and
    pair with :func:`discard_netlist_fingerprint` so the entry is scoped
    to the calling operation.
    """
    with _LOCK:
        _FP_HANDOFF[id(netlist)] = (weakref.ref(netlist), fingerprint)


def consume_netlist_fingerprint(netlist) -> Optional[str]:
    """Pop the seeded fingerprint for ``netlist`` (``None`` when absent)."""
    with _LOCK:
        entry = _FP_HANDOFF.pop(id(netlist), None)
    if entry is None:
        return None
    ref, fingerprint = entry
    return fingerprint if ref() is netlist else None


def discard_netlist_fingerprint(netlist) -> None:
    """Drop any unconsumed handoff entry for ``netlist``."""
    with _LOCK:
        _FP_HANDOFF.pop(id(netlist), None)


# ----------------------------------------------------------------------
# Shared levelization memo
# ----------------------------------------------------------------------
# Both the analysis engine and ``GatspiEngine._build_artifacts`` levelize
# the same netlist during one ``prepare()`` (analysis first, compile right
# after).  Levelization is pure, so a small fingerprint-keyed memo lets the
# second consumer reuse the first one's result instead of re-walking the
# design.  Entries are keyed by the same netlist fingerprint the compile
# and analysis caches already compute, so callers pass it in rather than
# paying for a second hash.
_LEVELIZE_CAPACITY = 32
_LEVELIZE_CACHE: "OrderedDict[str, object]" = OrderedDict()


def levelize_cached(netlist, fingerprint: Optional[str] = None):
    """Levelize ``netlist``, memoized process-wide by content fingerprint.

    ``fingerprint`` should be a precomputed :func:`fingerprint_netlist`
    value when the caller already has one; when ``None`` it is computed
    here.  Failures (cyclic or undriven designs) are not cached — the
    exception propagates to the caller.
    """
    from ..netlist import levelize

    if fingerprint is None:
        fingerprint = fingerprint_netlist(netlist)
    with _LOCK:
        cached = _LEVELIZE_CACHE.get(fingerprint)
        if cached is not None:
            _LEVELIZE_CACHE.move_to_end(fingerprint)
            return cached
    result = levelize(netlist)
    with _LOCK:
        _LEVELIZE_CACHE[fingerprint] = result
        _LEVELIZE_CACHE.move_to_end(fingerprint)
        while len(_LEVELIZE_CACHE) > _LEVELIZE_CAPACITY:
            _LEVELIZE_CACHE.popitem(last=False)
    return result


def lookup(key: str) -> Optional[CompiledArtifacts]:
    """Fetch cached artifacts (refreshing LRU recency) or ``None``."""
    global _HITS, _MISSES
    with _LOCK:
        artifacts = _CACHE.get(key)
        if artifacts is None:
            _MISSES += 1
            return None
        _CACHE.move_to_end(key)
        _HITS += 1
        return artifacts


def store(key: str, artifacts: CompiledArtifacts) -> None:
    """Insert artifacts, evicting the least recently used beyond capacity."""
    with _LOCK:
        if _capacity == 0:
            return
        _CACHE[key] = artifacts
        _CACHE.move_to_end(key)
        while len(_CACHE) > _capacity:
            _CACHE.popitem(last=False)


def clear_compile_cache() -> None:
    """Drop every cached design and reset the hit/miss counters."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _LEVELIZE_CACHE.clear()
        _HITS = 0
        _MISSES = 0


def cache_info() -> Dict[str, int]:
    """Current cache occupancy and hit/miss counters."""
    with _LOCK:
        return {
            "size": len(_CACHE),
            "capacity": _capacity,
            "hits": _HITS,
            "misses": _MISSES,
        }
