"""Typed netlist/annotation deltas for incremental re-simulation (ECO edits).

The glitch-ECO loop iterates *small* design changes — resize a delay arc,
retype a gate, rewire a pin, insert or remove a path-balancing buffer — and
the whole point of :meth:`Session.rerun` is that such a change must not pay
``copy.deepcopy``-the-netlist or recompile-the-world costs.  This module is
the edit vocabulary that makes that possible:

* Every edit is a small frozen dataclass with an :meth:`Edit.apply` method
  that mutates the session's ``Netlist``/``DelayAnnotation`` **in place**
  and returns an :class:`AppliedEdit` receipt carrying the exact *inverse*
  edit (for undo/rollback) and the *seed gates* whose compiled state the
  change invalidates.
* :func:`forward_cone` propagates seeds through the fanout graph to the
  full cone of influence — the dirty set the engine re-simulates.
* :class:`EditJournal` chains edit fingerprints so compile-cache entries
  for edited designs are addressable as ``parent-key ~eco: journal-hash``
  and an edit immediately followed by its inverse cancels out (the journal
  — and therefore the cache key — returns to the parent's).

Edits deliberately target **combinational** instances only: sequential
outputs are stimulus boundaries in re-simulation, so their cone is not
defined by the gate graph.

Aliasing rule: delay edits never mutate a :class:`GateDelayTable` in place.
Tables can be shared between gates (and the packed-design delay dedup keys
off object identity), so :class:`SetPinDelay` builds a copy-on-write
replacement via :meth:`GateDelayTable.with_pin_delay` and swaps the
``gate_tables`` entry; the inverse restores the *original table object*,
which keeps round-tripped designs fingerprint-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    ClassVar,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .delaytable import GateDelayTable, InterconnectDelay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist import Instance, Netlist
    from ..sdf.annotate import DelayAnnotation


class EditError(ValueError):
    """Raised when an edit cannot be applied to the current design."""


# ======================================================================
# Base protocol
# ======================================================================
@dataclass(frozen=True)
class AppliedEdit:
    """Receipt for one successfully applied edit.

    ``inverse`` undoes the edit exactly (applying it restores the netlist
    and annotation to their prior state); ``seeds`` are the gate names
    whose compiled per-gate state (truth/delay/wire rows) the edit
    invalidated — the starting points for cone-of-influence dirty marking.
    """

    edit: "Edit"
    inverse: "Edit"
    seeds: Tuple[str, ...]


class Edit:
    """Base class for the ECO edit vocabulary.

    ``structural`` edits change the gate graph (levelization, net set),
    forcing a re-levelize; non-structural edits only patch per-gate rows
    of the packed tensors.  ``delay_only`` edits cannot change logic
    function or connectivity, which lets the analysis layer skip every
    structural design rule on rerun.
    """

    structural: ClassVar[bool] = False
    delay_only: ClassVar[bool] = False

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        """Mutate the design in place; return the receipt (with inverse)."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable content fingerprint (keys the edit journal)."""
        raise NotImplementedError


def _combinational_instance(netlist: "Netlist", gate: str) -> "Instance":
    if gate not in netlist.instances:
        raise EditError(f"unknown instance {gate!r}")
    inst = netlist.instances[gate]
    if inst.cell.is_sequential:
        raise EditError(
            f"edits target combinational gates; {gate!r} is sequential"
        )
    return inst


def _require_input_pin(inst: "Instance", pin: str) -> None:
    if pin not in inst.cell.inputs:
        raise EditError(
            f"gate {inst.name!r} ({inst.cell_name}) has no input pin {pin!r}"
        )


def _table_fingerprint(table: Optional[GateDelayTable]) -> str:
    if table is None:
        return "absent"
    digest = hashlib.sha256()
    for pin in table.pins:
        digest.update(pin.encode())
        digest.update(table.table_for(pin).tobytes())
    return digest.hexdigest()[:12]


def _wire_fingerprint(entry: Optional[InterconnectDelay]) -> str:
    if entry is None:
        return "absent"
    return f"{entry.rise:.17g},{entry.fall:.17g}"


# ======================================================================
# Delay edits (non-structural, delay-only)
# ======================================================================
@dataclass(frozen=True)
class SetPinDelay(Edit):
    """Replace one input pin's delay arcs with uniform ``rise``/``fall``."""

    gate: str
    pin: str
    rise: float
    fall: float

    delay_only = True

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        inst = _combinational_instance(netlist, self.gate)
        _require_input_pin(inst, self.pin)
        # Record the *exact* prior state: the table object if one exists,
        # or absence (table_for would lazily insert a default on a miss).
        previous = annotation.gate_tables.get(self.gate)
        base = annotation.table_for(self.gate)
        annotation.gate_tables[self.gate] = base.with_pin_delay(
            self.pin, self.rise, self.fall
        )
        inverse = _RestoreGateTable(gate=self.gate, table=previous)
        return AppliedEdit(self, inverse, (self.gate,))

    def fingerprint(self) -> str:
        return (
            f"pin-delay|{self.gate}|{self.pin}|"
            f"{float(self.rise):.17g}|{float(self.fall):.17g}"
        )


@dataclass(frozen=True)
class SetWireDelay(Edit):
    """Set the interconnect (wire) delay at one gate input pin."""

    gate: str
    pin: str
    rise: float
    fall: float

    delay_only = True

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        inst = _combinational_instance(netlist, self.gate)
        _require_input_pin(inst, self.pin)
        key = (self.gate, self.pin)
        previous = annotation.interconnect.get(key)
        annotation.interconnect[key] = InterconnectDelay(
            rise=float(self.rise), fall=float(self.fall)
        )
        inverse = _RestoreWireDelay(gate=self.gate, pin=self.pin, entry=previous)
        return AppliedEdit(self, inverse, (self.gate,))

    def fingerprint(self) -> str:
        return (
            f"wire-delay|{self.gate}|{self.pin}|"
            f"{float(self.rise):.17g}|{float(self.fall):.17g}"
        )


@dataclass(frozen=True)
class _RestoreGateTable(Edit):
    """Internal inverse: put back a gate's previous delay-table object."""

    gate: str
    table: Optional[GateDelayTable]

    delay_only = True

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        _combinational_instance(netlist, self.gate)
        previous = annotation.gate_tables.get(self.gate)
        if self.table is None:
            annotation.gate_tables.pop(self.gate, None)
        else:
            annotation.gate_tables[self.gate] = self.table
        inverse = _RestoreGateTable(gate=self.gate, table=previous)
        return AppliedEdit(self, inverse, (self.gate,))

    def fingerprint(self) -> str:
        return f"restore-table|{self.gate}|{_table_fingerprint(self.table)}"


@dataclass(frozen=True)
class _RestoreWireDelay(Edit):
    """Internal inverse: put back (or delete) one interconnect entry."""

    gate: str
    pin: str
    entry: Optional[InterconnectDelay]

    delay_only = True

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        _combinational_instance(netlist, self.gate)
        key = (self.gate, self.pin)
        previous = annotation.interconnect.get(key)
        if self.entry is None:
            annotation.interconnect.pop(key, None)
        else:
            annotation.interconnect[key] = self.entry
        inverse = _RestoreWireDelay(gate=self.gate, pin=self.pin, entry=previous)
        return AppliedEdit(self, inverse, (self.gate,))

    def fingerprint(self) -> str:
        return (
            f"restore-wire|{self.gate}|{self.pin}|"
            f"{_wire_fingerprint(self.entry)}"
        )


# ======================================================================
# Logic edits (non-structural)
# ======================================================================
@dataclass(frozen=True)
class RetypeGate(Edit):
    """Swap a gate's cell for a pin-compatible one (e.g. AND2 → NAND2).

    The replacement cell must be combinational with the same ordered input
    pin list and output pin name, so connectivity and levelization are
    untouched — only the truth-table row of the packed design changes.
    """

    gate: str
    cell: str

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        inst = _combinational_instance(netlist, self.gate)
        old = inst.cell
        try:
            new = netlist.library.get(self.cell)
        except KeyError as exc:
            raise EditError(str(exc)) from exc
        if new.is_sequential:
            raise EditError(f"cannot retype {self.gate!r} to sequential cell "
                            f"{self.cell!r}")
        if tuple(new.inputs) != tuple(old.inputs) or new.output != old.output:
            raise EditError(
                f"retype {self.gate!r}: {self.cell!r} pins "
                f"{new.inputs + (new.output,)} are incompatible with "
                f"{old.name!r} pins {old.inputs + (old.output,)}"
            )
        inst.cell = new
        return AppliedEdit(self, RetypeGate(self.gate, old.name), (self.gate,))

    def fingerprint(self) -> str:
        return f"retype|{self.gate}|{self.cell}"


# ======================================================================
# Structural edits
# ======================================================================
@dataclass(frozen=True)
class RewirePin(Edit):
    """Reconnect one input pin to a different existing net."""

    gate: str
    pin: str
    net: str

    structural = True

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        inst = _combinational_instance(netlist, self.gate)
        _require_input_pin(inst, self.pin)
        if self.net not in netlist.nets:
            raise EditError(f"unknown net {self.net!r}")
        old_net_name = inst.connections[self.pin]
        if old_net_name != self.net:
            old_net = netlist.nets[old_net_name]
            old_net.loads = [
                load for load in old_net.loads if load != (self.gate, self.pin)
            ]
            netlist.nets[self.net].loads.append((self.gate, self.pin))
            inst.connections[self.pin] = self.net
        inverse = RewirePin(self.gate, self.pin, old_net_name)
        return AppliedEdit(self, inverse, (self.gate,))

    def fingerprint(self) -> str:
        return f"rewire|{self.gate}|{self.pin}|{self.net}"


@dataclass(frozen=True)
class InsertBuffer(Edit):
    """Insert a delay buffer in front of one input pin (path balancing).

    Mirrors the glitch-fix transform exactly: the original net keeps
    driving every other load; the targeted pin is re-routed through the
    new buffer, whose table is ``rise = fall = max(1, delay)``; the pin's
    wire delay moves onto the buffer's input and the pin itself gets zero
    wire delay.  ``buffer_name`` pins the instance name (used by undo);
    left ``None``, ``glitchfix_<gate>_<pin>[_<k>]`` is chosen.
    """

    gate: str
    pin: str
    delay: float
    buffer_cell: str = "DLY"
    buffer_name: Optional[str] = None

    structural = True

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        inst = _combinational_instance(netlist, self.gate)
        _require_input_pin(inst, self.pin)
        try:
            cell = netlist.library.get(self.buffer_cell)
        except KeyError as exc:
            raise EditError(str(exc)) from exc
        if cell.is_sequential or cell.num_inputs != 1:
            raise EditError(
                f"buffer cell {self.buffer_cell!r} must be combinational "
                f"with exactly one input"
            )
        original_net = inst.connections[self.pin]
        if self.buffer_name is not None:
            buffer_name = self.buffer_name
            buffer_net = f"{buffer_name}_out"
            if buffer_name in netlist.instances or buffer_net in netlist.nets:
                raise EditError(
                    f"buffer name {buffer_name!r} (or its net) already exists"
                )
        else:
            buffer_name = f"glitchfix_{self.gate}_{self.pin}"
            buffer_net = f"{buffer_name}_out"
            suffix = 0
            while buffer_name in netlist.instances or buffer_net in netlist.nets:
                suffix += 1
                buffer_name = f"glitchfix_{self.gate}_{self.pin}_{suffix}"
                buffer_net = f"{buffer_name}_out"

        # Record prior annotation state for the exact inverse.
        wire_key = (self.gate, self.pin)
        previous_wire = annotation.interconnect.get(wire_key)

        # Detach the pin from the original net.
        net = netlist.nets[original_net]
        net.loads = [load for load in net.loads if load != (self.gate, self.pin)]

        netlist.add_instance(
            self.buffer_cell, buffer_name,
            {cell.inputs[0]: original_net, cell.output: buffer_net},
        )
        # Reattach the pin to the buffered net.
        inst.connections[self.pin] = buffer_net
        netlist.nets[buffer_net].loads.append((self.gate, self.pin))

        # Annotate the new buffer and the (now buffered) pin.
        delay = max(1.0, float(self.delay))
        table = GateDelayTable.uniform(cell.inputs, delay, delay)
        annotation.gate_tables[buffer_name] = table
        annotation.interconnect[(buffer_name, cell.inputs[0])] = (
            annotation.interconnect.pop(wire_key, InterconnectDelay(0.0, 0.0))
        )
        annotation.interconnect[wire_key] = InterconnectDelay(0.0, 0.0)

        inverse = RemoveBuffer(
            buffer=buffer_name, restored_wire=previous_wire, exact=True
        )
        # Both the new buffer and the edited gate need fresh compiled rows.
        return AppliedEdit(self, inverse, (buffer_name, self.gate))

    def fingerprint(self) -> str:
        return (
            f"insert-buffer|{self.gate}|{self.pin}|{float(self.delay):.17g}|"
            f"{self.buffer_cell}|{self.buffer_name or ''}"
        )


@dataclass(frozen=True)
class RemoveBuffer(Edit):
    """Remove a single-input buffer, splicing its load back to its input.

    Only removable shapes are accepted: a combinational one-input cell
    whose output net has exactly one load, and that load is a gate input
    pin (not a primary output).  When constructed as the inverse of an
    :class:`InsertBuffer` (``exact=True``), the load pin's wire-delay
    entry is restored byte-exactly (present vs. absent); a user-written
    removal moves the buffer's input wire delay back onto the pin, which
    is simulation-identical but may differ in explicit-zero bookkeeping.
    """

    buffer: str
    restored_wire: Optional[InterconnectDelay] = None
    exact: bool = False

    structural = True

    def apply(
        self, netlist: "Netlist", annotation: "DelayAnnotation"
    ) -> AppliedEdit:
        inst = _combinational_instance(netlist, self.buffer)
        cell = inst.cell
        if cell.num_inputs != 1:
            raise EditError(
                f"{self.buffer!r} ({cell.name}) is not a one-input buffer"
            )
        in_pin = cell.inputs[0]
        in_net_name = inst.connections[in_pin]
        out_net_name = inst.connections[cell.output]
        out_net = netlist.nets[out_net_name]
        loads = list(out_net.loads)
        if len(loads) != 1 or loads[0][0] not in netlist.instances:
            raise EditError(
                f"buffer {self.buffer!r} output net {out_net_name!r} must "
                f"drive exactly one gate input (has loads {loads})"
            )
        load_gate, load_pin = loads[0]

        # Splice the load back onto the buffer's input net.
        in_net = netlist.nets[in_net_name]
        in_net.loads = [
            load for load in in_net.loads if load != (self.buffer, in_pin)
        ]
        netlist.instances[load_gate].connections[load_pin] = in_net_name
        in_net.loads.append((load_gate, load_pin))
        del netlist.instances[self.buffer]
        del netlist.nets[out_net_name]

        old_table = annotation.gate_tables.pop(self.buffer, None)
        buffer_wire = annotation.interconnect.pop((self.buffer, in_pin), None)
        wire_key = (load_gate, load_pin)
        if self.exact:
            if self.restored_wire is None:
                annotation.interconnect.pop(wire_key, None)
            else:
                annotation.interconnect[wire_key] = self.restored_wire
        else:
            if buffer_wire is None:
                annotation.interconnect.pop(wire_key, None)
            else:
                annotation.interconnect[wire_key] = buffer_wire

        delay = old_table.max_finite_delay() if old_table is not None else 1.0
        inverse = InsertBuffer(
            gate=load_gate, pin=load_pin, delay=max(1.0, delay),
            buffer_cell=cell.name, buffer_name=self.buffer,
        )
        return AppliedEdit(self, inverse, (load_gate,))

    def fingerprint(self) -> str:
        return (
            f"remove-buffer|{self.buffer}|"
            f"{_wire_fingerprint(self.restored_wire)}|{int(self.exact)}"
        )


# ======================================================================
# Journal + receipts
# ======================================================================
@dataclass(frozen=True)
class JournalEntry:
    """One recorded edit: its fingerprint, its inverse's, and its class."""

    fingerprint: str
    inverse_fingerprint: str
    structural: bool
    delay_only: bool


class EditJournal:
    """Ordered chain of applied edits, with inverse cancellation.

    The journal fingerprint extends a design's compile-cache key
    (``parent ~eco: <journal-hash>``) so repeated ECO iterations stay
    warm.  Recording an edit whose fingerprint equals the *inverse*
    fingerprint of the latest entry pops that entry instead — an
    apply/undo round trip restores the parent's key exactly.
    """

    def __init__(self, entries: Iterable[JournalEntry] = ()):
        self._entries: List[JournalEntry] = list(entries)

    def record(self, edit: Edit, inverse: Edit) -> None:
        fingerprint = edit.fingerprint()
        if self._entries and self._entries[-1].inverse_fingerprint == fingerprint:
            self._entries.pop()
            return
        self._entries.append(
            JournalEntry(
                fingerprint=fingerprint,
                inverse_fingerprint=inverse.fingerprint(),
                structural=type(edit).structural,
                delay_only=type(edit).delay_only,
            )
        )

    def fingerprint(self) -> str:
        """Chain hash of the recorded edits; ``""`` when empty."""
        if not self._entries:
            return ""
        digest = hashlib.sha256()
        for entry in self._entries:
            digest.update(entry.fingerprint.encode())
            digest.update(b"\n")
        return digest.hexdigest()[:16]

    @property
    def delay_only(self) -> bool:
        return all(entry.delay_only for entry in self._entries)

    @property
    def entries(self) -> Tuple[JournalEntry, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class EditReceipt:
    """What :meth:`GatspiEngine.apply_edits` hands back for one batch.

    ``inverses`` are in application order; :attr:`undo_edits` reverses
    them, ready to feed back through ``apply_edits`` to roll the whole
    batch back (journal entries cancel pairwise, so the compile-cache
    key returns to ``parent_journal``'s).
    """

    edits: Tuple[Edit, ...]
    inverses: Tuple[Edit, ...]
    seeds: Tuple[str, ...]
    structural: bool
    delay_only: bool
    parent_journal: str
    journal: str

    @property
    def undo_edits(self) -> Tuple[Edit, ...]:
        return tuple(reversed(self.inverses))


# ======================================================================
# Cone of influence
# ======================================================================
def forward_cone(
    netlist: "Netlist", seeds: Sequence[str]
) -> FrozenSet[str]:
    """Combinational gates reachable forward from ``seeds`` (inclusive).

    Propagation follows output-net loads and stops at sequential elements
    and ports (re-simulation boundaries).  Seed names not present in the
    netlist (e.g. a buffer that a later edit in the same batch removed)
    are skipped.
    """
    instances = netlist.instances
    pending = [
        name for name in seeds
        if name in instances and not instances[name].cell.is_sequential
    ]
    dirty = set(pending)
    while pending:
        gate = pending.pop()
        inst = instances[gate]
        output = inst.connections[inst.cell.output]
        for load_gate, _pin in netlist.nets[output].loads:
            if load_gate in dirty or load_gate not in instances:
                continue
            if instances[load_gate].cell.is_sequential:
                continue
            dirty.add(load_gate)
            pending.append(load_gate)
    return frozenset(dirty)
