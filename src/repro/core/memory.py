"""Device memory pool model (paper Fig. 5).

GATSPI pre-allocates one chunk of device memory for *all* waveforms of the
simulation, plus arrays of input/output waveform start-address pointers, so
no host/device traffic occurs while the kernels run.  This module models that
layout: a flat ``int64`` array, an allocator that lays out waveforms
back-to-back, and pointer bookkeeping keyed by ``(net, window)``.

The two-pass kernel scheme exists precisely to make this layout possible: the
count pass reports each output waveform's storage size, the allocator assigns
start addresses, and the store pass writes into them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .waveform import EOW, INITIAL_ONE_MARKER, Waveform


class DeviceMemoryError(RuntimeError):
    """Raised when the waveform pool capacity would be exceeded.

    The engine reacts the way the paper describes: the testbench windows are
    split into segments and GATSPI is invoked sequentially on each.
    """


@dataclass
class PoolStats:
    """Occupancy statistics of the waveform pool."""

    capacity_words: int
    used_words: int

    @property
    def utilization(self) -> float:
        if self.capacity_words == 0:
            return 0.0
        return self.used_words / self.capacity_words


class WaveformPool:
    """Flat waveform storage with bump allocation and pointer bookkeeping."""

    def __init__(self, capacity_words: int, initial_words: int = 1 << 16):
        if capacity_words < 4:
            raise ValueError("pool capacity must be at least 4 words")
        self.capacity_words = int(capacity_words)
        size = min(self.capacity_words, max(4, int(initial_words)))
        self._data = np.full(size, EOW, dtype=np.int64)
        self._next_free = 0
        self._pointers: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def used_words(self) -> int:
        return self._next_free

    def stats(self) -> PoolStats:
        return PoolStats(capacity_words=self.capacity_words, used_words=self._next_free)

    def _ensure(self, words: int) -> None:
        required = self._next_free + words
        if required > self.capacity_words:
            raise DeviceMemoryError(
                f"waveform pool exhausted: need {required} words, capacity "
                f"{self.capacity_words}"
            )
        if required > self._data.size:
            new_size = min(self.capacity_words, max(required, self._data.size * 2))
            grown = np.full(new_size, EOW, dtype=np.int64)
            grown[: self._next_free] = self._data[: self._next_free]
            self._data = grown

    def allocate(self, words: int) -> int:
        """Reserve ``words`` and return the start address.

        Start addresses are aligned to even offsets: the kernel encodes logic
        values in pointer parity (Fig. 3), which only works when every
        waveform begins on an even address.
        """
        if words < 2:
            raise ValueError("a waveform needs at least 2 words (entry + EOW)")
        padding = self._next_free & 1
        self._ensure(words + padding)
        self._next_free += padding
        address = self._next_free
        self._next_free += words
        return address

    # ------------------------------------------------------------------
    # Waveform storage
    # ------------------------------------------------------------------
    def store_waveform(self, net: str, window: int, waveform: Waveform) -> int:
        """Copy a waveform into the pool; returns its start address."""
        raw = waveform.data
        address = self.allocate(raw.size)
        self._data[address : address + raw.size] = raw
        self._pointers[(net, window)] = address
        return address

    def store_kernel_output(
        self,
        net: str,
        window: int,
        address: int,
        initial_value: int,
        toggle_times: List[int],
    ) -> None:
        """Write a kernel result at a pre-assigned address (store pass)."""
        cursor = address
        if initial_value:
            self._data[cursor] = INITIAL_ONE_MARKER
            cursor += 1
        self._data[cursor] = 0
        cursor += 1
        for time in toggle_times:
            self._data[cursor] = time
            cursor += 1
        self._data[cursor] = EOW
        self._pointers[(net, window)] = address

    def pointer(self, net: str, window: int) -> int:
        """Start address of a stored waveform."""
        try:
            return self._pointers[(net, window)]
        except KeyError:
            raise KeyError(
                f"no waveform stored for net {net!r}, window {window}"
            ) from None

    def has_waveform(self, net: str, window: int) -> bool:
        return (net, window) in self._pointers

    def read_waveform(self, net: str, window: int) -> Waveform:
        """Re-materialise a stored waveform (result readback)."""
        address = self.pointer(net, window)
        cursor = address
        values: List[int] = []
        while True:
            value = int(self._data[cursor])
            values.append(value)
            if value == EOW:
                break
            cursor += 1
        return Waveform.from_array(values)

    def reset(self) -> None:
        """Free everything (used between sequential testbench segments)."""
        self._next_free = 0
        self._pointers.clear()
        self._data[:] = EOW
