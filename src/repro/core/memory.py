"""Device memory pool model (paper Fig. 5).

GATSPI pre-allocates one chunk of device memory for *all* waveforms of the
simulation, plus arrays of input/output waveform start-address pointers, so
no host/device traffic occurs while the kernels run.  This module models that
layout: a flat array, an allocator that lays out waveforms back-to-back, and
pointer bookkeeping keyed by ``(net, window)``.

The two-pass kernel scheme exists precisely to make this layout possible: the
count pass reports each output waveform's storage size, the allocator assigns
start addresses (:meth:`WaveformPool.allocate_batch` lays out a whole level
in one prefix-sum), and the store pass writes into them.

Pool dtype
----------

The pool has exactly one element dtype, :data:`~repro.core.waveform.POOL_DTYPE`
(``int64``), enforced here for every store.  The end-of-waveform sentinel
``EOW`` is ``INT32_MAX`` as in the paper, *not* the int64 maximum, so a
timestamp can numerically exceed the sentinel without overflowing the dtype —
which would silently truncate the waveform on readback.  Every store therefore
guards that no timestamp has reached ``EOW`` and raises
:class:`TimestampOverflowError` instead of corrupting the Fig. 3 format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .restructure import gather_segments
from .waveform import EOW, INITIAL_ONE_MARKER, POOL_DTYPE, Waveform


class DeviceMemoryError(RuntimeError):
    """Raised when the waveform pool capacity would be exceeded.

    The engine reacts the way the paper describes: the testbench windows are
    split into segments and GATSPI is invoked sequentially on each.
    """


class TimestampOverflowError(RuntimeError):
    """Raised when a timestamp reaches the ``EOW`` sentinel.

    A toggle time numerically equal to or above ``EOW`` would terminate its
    waveform early on readback — a silent wrong answer.  The pool refuses the
    store instead.
    """


@dataclass
class PoolStats:
    """Occupancy statistics of the waveform pool."""

    capacity_words: int
    used_words: int

    @property
    def utilization(self) -> float:
        if self.capacity_words == 0:
            return 0.0
        return self.used_words / self.capacity_words


class WaveformPool:
    """Flat waveform storage with bump allocation and pointer bookkeeping."""

    def __init__(self, capacity_words: int, initial_words: int = 1 << 16):
        if capacity_words < 4:
            raise ValueError("pool capacity must be at least 4 words")
        self.capacity_words = int(capacity_words)
        size = min(self.capacity_words, max(4, int(initial_words)))
        self._data = np.full(size, EOW, dtype=POOL_DTYPE)
        self._next_free = 0
        self._pointers: Dict[Tuple[str, int], int] = {}
        self._sizes: Dict[Tuple[str, int], int] = {}
        self._toggle_counts: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def used_words(self) -> int:
        return self._next_free

    def stats(self) -> PoolStats:
        return PoolStats(capacity_words=self.capacity_words, used_words=self._next_free)

    def _ensure(self, words: int) -> None:
        required = self._next_free + words
        if required > self.capacity_words:
            raise DeviceMemoryError(
                f"waveform pool exhausted: need {required} words, capacity "
                f"{self.capacity_words}"
            )
        if required > self._data.size:
            new_size = min(self.capacity_words, max(required, self._data.size * 2))
            grown = np.full(new_size, EOW, dtype=POOL_DTYPE)
            grown[: self._next_free] = self._data[: self._next_free]
            self._data = grown

    def allocate(self, words: int) -> int:
        """Reserve ``words`` and return the start address.

        Start addresses are aligned to even offsets: the kernel encodes logic
        values in pointer parity (Fig. 3), which only works when every
        waveform begins on an even address.
        """
        if words < 2:
            raise ValueError("a waveform needs at least 2 words (entry + EOW)")
        padding = self._next_free & 1
        self._ensure(words + padding)
        self._next_free += padding
        address = self._next_free
        self._next_free += words
        return address

    def allocate_batch(self, sizes: np.ndarray) -> np.ndarray:
        """Lay out one waveform per entry of ``sizes`` with a prefix sum.

        Produces exactly the addresses a loop of :meth:`allocate` calls would
        (each waveform even-aligned, laid out back-to-back), but in O(1)
        numpy work per level — this is how the store pass of the vector
        kernel gets every output address of a level at once.
        """
        sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(sizes.min()) < 2:
            raise ValueError("a waveform needs at least 2 words (entry + EOW)")
        # Even-aligned back-to-back layout: from an even base, each slot
        # occupies size + (size & 1) words, so addresses are an exclusive
        # prefix sum of the padded sizes.
        base = self._next_free + (self._next_free & 1)
        padded = sizes + (sizes & 1)
        addresses = np.empty(sizes.size, dtype=np.int64)
        addresses[0] = base
        np.cumsum(padded[:-1], out=addresses[1:])
        addresses[1:] += base
        end = int(addresses[-1] + sizes[-1])
        self._ensure(end - self._next_free)
        self._next_free = end
        return addresses

    # ------------------------------------------------------------------
    # Waveform storage
    # ------------------------------------------------------------------
    def _register(self, net: str, window: int, address: int, size: int,
                  toggle_count: int) -> None:
        key = (net, window)
        self._pointers[key] = address
        self._sizes[key] = int(size)
        self._toggle_counts[key] = int(toggle_count)

    def store_waveform(self, net: str, window: int, waveform: Waveform) -> int:
        """Copy a waveform into the pool; returns its start address."""
        raw = waveform.data
        if raw.dtype != POOL_DTYPE:
            raise TypeError(
                f"waveform dtype {raw.dtype} does not match pool dtype {POOL_DTYPE}"
            )
        address = self.allocate(raw.size)
        self._data[address : address + raw.size] = raw
        self._register(net, window, address, raw.size, waveform.toggle_count())
        return address

    def store_padding_waveform(self) -> int:
        """Store the canonical null waveform (``[0, EOW]``), unregistered.

        Padded pins of the level-batched kernel point here: a constant-0
        signal that never produces events.
        """
        address = self.allocate(2)
        self._data[address] = 0
        self._data[address + 1] = EOW
        return address

    def store_kernel_output(
        self,
        net: str,
        window: int,
        address: int,
        initial_value: int,
        toggle_times: List[int],
    ) -> None:
        """Write a kernel result at a pre-assigned address (store pass)."""
        if toggle_times and toggle_times[-1] >= EOW:
            raise TimestampOverflowError(
                f"toggle time {toggle_times[-1]} on net {net!r} reached the "
                f"EOW sentinel ({EOW})"
            )
        cursor = address
        if initial_value:
            self._data[cursor] = INITIAL_ONE_MARKER
            cursor += 1
        self._data[cursor] = 0
        cursor += 1
        for time in toggle_times:
            self._data[cursor] = time
            cursor += 1
        self._data[cursor] = EOW
        self._register(
            net, window, address, cursor + 1 - address, len(toggle_times)
        )

    def store_level_outputs(
        self,
        nets: Sequence[str],
        window_indices: Sequence[int],
        addresses: np.ndarray,
        initial_values: np.ndarray,
        toggle_buffer: np.ndarray,
        toggle_starts: np.ndarray,
        toggle_counts: np.ndarray,
    ) -> None:
        """Vectorized store pass for one level of the vector kernel.

        Tasks are gate-major over ``window_indices`` (``task = gate * W +
        window``), matching :func:`repro.core.vector_kernel.simulate_level`.
        All waveforms of the level are written with a handful of numpy
        scatter operations.
        """
        W = len(window_indices)
        T = len(nets) * W
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if addresses.size != T:
            raise ValueError(f"expected {T} addresses, got {addresses.size}")
        if T == 0:
            return
        data = self._data
        has_marker = initial_values != 0
        data[addresses[has_marker]] = INITIAL_ONE_MARKER
        establish = addresses + has_marker
        data[establish] = 0
        total = int(toggle_counts.sum())
        if total:
            # Flat gather/scatter indices for all toggle segments at once:
            # within-segment offsets are a ramp reset at each segment start.
            ramp = np.arange(total, dtype=np.int64)
            seg_base = np.cumsum(toggle_counts) - toggle_counts
            ramp -= np.repeat(seg_base, toggle_counts)
            src = np.repeat(toggle_starts, toggle_counts) + ramp
            dst = np.repeat(establish + 1, toggle_counts) + ramp
            times = toggle_buffer[src]
            if int(times.max()) >= EOW:
                raise TimestampOverflowError(
                    f"a toggle time in level store reached the EOW sentinel ({EOW})"
                )
            data[dst] = times
        data[establish + 1 + toggle_counts] = EOW
        sizes = establish + 2 + toggle_counts - addresses
        for g, net in enumerate(nets):
            base = g * W
            for w, window in enumerate(window_indices):
                t = base + w
                self._register(
                    net,
                    window,
                    int(addresses[t]),
                    int(sizes[t]),
                    int(toggle_counts[t]),
                )

    def load_windows(
        self,
        nets: Sequence[str],
        window_indices: Sequence[int],
        initial_values: np.ndarray,
        times: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        rebase_offsets: np.ndarray,
    ) -> None:
        """Bulk-load one sliced stimulus window per ``(net, window)`` pair.

        The batched counterpart of calling :meth:`store_waveform` once per
        pair: ``initial_values``/``starts``/``counts`` are ``(N, W)`` (or
        flat net-major) slice descriptors into the flat ``times`` event
        buffer (see :func:`repro.core.restructure.slice_windows`), and
        ``rebase_offsets`` holds each window's extended start, subtracted
        from every copied timestamp so each window is stored in
        window-local time.  Layout, registration, and the resulting pool
        image are identical to the per-waveform path; the writes are a
        handful of numpy scatters.
        """
        N, W = len(nets), len(window_indices)
        T = N * W
        initial_values = np.ascontiguousarray(initial_values, dtype=np.int64).ravel()
        starts = np.ascontiguousarray(starts, dtype=np.int64).ravel()
        counts = np.ascontiguousarray(counts, dtype=np.int64).ravel()
        if initial_values.size != T or starts.size != T or counts.size != T:
            raise ValueError(
                f"expected {T} window slices, got {initial_values.size}"
            )
        if T == 0:
            return
        has_marker = initial_values != 0
        addresses = self.allocate_batch(2 + counts + has_marker)
        data = self._data
        data[addresses[has_marker]] = INITIAL_ONE_MARKER
        establish = addresses + has_marker
        data[establish] = 0
        total = int(counts.sum())
        if total:
            copied = gather_segments(times, starts, counts)
            offsets = np.broadcast_to(
                np.ascontiguousarray(rebase_offsets, dtype=np.int64), (N, W)
            ).ravel()
            copied = copied - np.repeat(offsets, counts)
            if int(copied.max()) >= EOW:
                raise TimestampOverflowError(
                    f"a stimulus window timestamp reached the EOW sentinel ({EOW})"
                )
            ramp = np.arange(total, dtype=np.int64)
            ramp -= np.repeat(np.cumsum(counts) - counts, counts)
            data[np.repeat(establish + 1, counts) + ramp] = copied
        data[establish + 1 + counts] = EOW
        sizes = establish + 2 + counts - addresses
        for n, net in enumerate(nets):
            base = n * W
            for w, window in enumerate(window_indices):
                t = base + w
                self._register(
                    net,
                    window,
                    int(addresses[t]),
                    int(sizes[t]),
                    int(counts[t]),
                )

    def window_table(
        self, nets: Sequence[str], window_indices: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stored layout of every ``(net, window)`` pair, as flat arrays.

        Returns ``(addresses, toggle_counts)`` in net-major task order —
        the bulk readback path's view of the pool bookkeeping.
        """
        T = len(nets) * len(window_indices)
        addresses = np.empty(T, dtype=np.int64)
        toggle_counts = np.empty(T, dtype=np.int64)
        pointers = self._pointers
        t = 0
        for net in nets:
            for window in window_indices:
                key = (net, window)
                try:
                    addresses[t] = pointers[key]
                except KeyError:
                    raise KeyError(
                        f"no waveform stored for net {net!r}, window {window}"
                    ) from None
                toggle_counts[t] = self._toggle_counts[key]
                t += 1
        return addresses, toggle_counts

    def pointer(self, net: str, window: int) -> int:
        """Start address of a stored waveform."""
        try:
            return self._pointers[(net, window)]
        except KeyError:
            raise KeyError(
                f"no waveform stored for net {net!r}, window {window}"
            ) from None

    def toggle_count(self, net: str, window: int) -> int:
        """Real transitions of a stored waveform (drives count-pass sizing)."""
        try:
            return self._toggle_counts[(net, window)]
        except KeyError:
            raise KeyError(
                f"no waveform stored for net {net!r}, window {window}"
            ) from None

    def has_waveform(self, net: str, window: int) -> bool:
        return (net, window) in self._pointers

    def read_waveform(self, net: str, window: int) -> Waveform:
        """Waveform readback as a zero-copy view into the pool.

        The returned :class:`Waveform` wraps a read-only slice of the pool
        array — no per-element copy.  The pool is append-only for the
        lifetime of a simulation batch (only :meth:`reset` rewrites stored
        words), so the view stays valid as long as the caller holds it: even
        if the pool grows, the view keeps the old buffer alive.
        """
        address = self.pointer(net, window)
        # Every store path registers through _register, so a known pointer
        # always has a recorded size.
        size = self._sizes[(net, window)]
        view = self._data[address : address + size].view()
        view.setflags(write=False)
        return Waveform(view)

    def reset(self) -> None:
        """Free everything (used between sequential testbench segments).

        Invalidates any zero-copy views previously handed out by
        :meth:`read_waveform`; callers that keep results across a reset must
        copy them first.
        """
        self._next_free = 0
        self._pointers.clear()
        self._sizes.clear()
        self._toggle_counts.clear()
        self._data[:] = EOW
