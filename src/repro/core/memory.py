"""Device memory pool model (paper Fig. 5).

GATSPI pre-allocates one chunk of device memory for *all* waveforms of the
simulation, plus arrays of input/output waveform start-address pointers, so
no host/device traffic occurs while the kernels run.  This module models that
layout: a flat array on the configured array backend (:mod:`repro.core.xp`),
an allocator that lays out waveforms back-to-back, and *array-backed*
registration: instead of per-``(net, window)`` Python dicts, the pool keeps
flat ``(net_row, window_column)`` tables of start addresses, sizes, and
toggle counts.  Bulk stores register whole batches with a couple of scatter
writes, and per-level input gathering (:meth:`WaveformPool.gather_level_inputs`)
is two fancy-indexed reads over the same tables — no per-task Python
bookkeeping anywhere on the hot path.

Net rows come from the design-wide net index built at pack time
(:attr:`~repro.core.vector_kernel.PackedDesign.net_index`); one extra row —
the *null row* — is reserved for padded pins and points at the canonical
null waveform.  Pools constructed without a net index (tests, ad-hoc use)
register nets and windows lazily, growing the tables on demand; the
name-keyed accessors (``pointer``/``toggle_count``/``read_waveform``) work
identically in both modes.

The two-pass kernel scheme exists precisely to make this layout possible: the
count pass reports each output waveform's storage size, the allocator assigns
start addresses (:meth:`WaveformPool.allocate_batch` lays out a whole level
in one prefix-sum), and the store pass writes into them.

Pool dtype
----------

The pool has exactly one element dtype, :data:`~repro.core.waveform.POOL_DTYPE`
(``int64``), enforced here for every store.  The end-of-waveform sentinel
``EOW`` is ``INT32_MAX`` as in the paper, *not* the int64 maximum, so a
timestamp can numerically exceed the sentinel without overflowing the dtype —
which would silently truncate the waveform on readback.  Every store therefore
guards that no timestamp has reached ``EOW`` and raises
:class:`TimestampOverflowError` instead of corrupting the Fig. 3 format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .restructure import gather_segments
from .waveform import EOW, INITIAL_ONE_MARKER, POOL_DTYPE, Waveform
from .xp import HOST, ArrayBackend, is_host


class DeviceMemoryError(RuntimeError):
    """Raised when the waveform pool capacity would be exceeded.

    The engine reacts the way the paper describes: the testbench windows are
    split into segments and GATSPI is invoked sequentially on each.
    """


class TimestampOverflowError(RuntimeError):
    """Raised when a timestamp reaches the ``EOW`` sentinel.

    A toggle time numerically equal to or above ``EOW`` would terminate its
    waveform early on readback — a silent wrong answer.  The pool refuses the
    store instead.
    """


@dataclass
class PoolStats:
    """Occupancy statistics of the waveform pool."""

    capacity_words: int
    used_words: int

    @property
    def utilization(self) -> float:
        if self.capacity_words == 0:
            return 0.0
        return self.used_words / self.capacity_words


class WaveformPool:
    """Flat waveform storage with bump allocation and array registration.

    ``net_index`` maps net names to table rows (the design-wide net index;
    one extra *null row* is appended for padded pins) and
    ``window_indices`` lists the batch's windows in column order.  Without
    them the pool starts empty and registers names/windows lazily.  All
    storage — the data array and the three registration tables — lives on
    ``xp``.
    """

    def __init__(
        self,
        capacity_words: int,
        initial_words: int = 1 << 16,
        *,
        xp: Optional[ArrayBackend] = None,
        net_index: Optional[Mapping[str, int]] = None,
        window_indices: Optional[Sequence[int]] = None,
    ):
        if capacity_words < 4:
            raise ValueError("pool capacity must be at least 4 words")
        self._xp = xp or HOST
        self.capacity_words = int(capacity_words)
        size = min(self.capacity_words, max(4, int(initial_words)))
        self._data = self._xp.full(size, EOW, dtype=self._xp.int64)
        self._next_free = 0
        if net_index is not None:
            self._net_rows: Dict[str, int] = dict(net_index)
            # The null row sits at exactly PackedDesign.null_net_id and is
            # NEVER moved: compile-time input_net_ids tensors encode that
            # id statically, so lazily-registered extra nets go *after* it.
            self._null_row: Optional[int] = len(self._net_rows)
            self._next_row = self._null_row + 1
            rows = self._next_row
        else:
            self._net_rows = {}
            self._null_row = None
            self._next_row = 0
            rows = 8
        if window_indices is not None:
            self._window_cols: Dict[int, int] = {
                int(w): i for i, w in enumerate(window_indices)
            }
            cols = max(1, len(self._window_cols))
        else:
            self._window_cols = {}
            cols = 8
        #: Columns handed back by :meth:`release_windows`, kept sorted
        #: descending so ``pop()`` reuses the lowest column first.
        self._free_cols: List[int] = []
        #: Words at the front of the pool that survive a full release
        #: (the canonical null waveform lives there).
        self._retained_words = 0
        self._null_address: Optional[int] = None
        self._alloc_tables(max(1, rows), cols)

    # ------------------------------------------------------------------
    # Registration tables
    # ------------------------------------------------------------------
    def _alloc_tables(self, rows: int, cols: int) -> None:
        xp = self._xp
        self._ptr_table = xp.full((rows, cols), -1, dtype=xp.int64)
        self._size_table = xp.zeros((rows, cols), dtype=xp.int64)
        self._cnt_table = xp.zeros((rows, cols), dtype=xp.int64)

    def _grow_tables(self, rows: int, cols: int) -> None:
        xp = self._xp
        old_ptr, old_size, old_cnt = (
            self._ptr_table,
            self._size_table,
            self._cnt_table,
        )
        r = max(rows, int(old_ptr.shape[0]))
        c = max(cols, int(old_ptr.shape[1]))
        self._alloc_tables(r, c)
        ro, co = old_ptr.shape
        self._ptr_table[:ro, :co] = old_ptr
        self._size_table[:ro, :co] = old_size
        self._cnt_table[:ro, :co] = old_cnt

    def _net_row(self, net: str) -> int:
        row = self._net_rows.get(net)
        if row is None:
            row = self._next_row
            self._next_row += 1
            self._net_rows[net] = row
            if row >= self._ptr_table.shape[0]:
                self._grow_tables(row * 2 + 1, 0)
        return row

    def _window_col(self, window: int) -> int:
        col = self._window_cols.get(int(window))
        if col is None:
            if self._free_cols:
                col = self._free_cols.pop()
            else:
                col = len(self._window_cols)
            self._window_cols[int(window)] = col
            if col >= self._ptr_table.shape[1]:
                self._grow_tables(0, col * 2 + 1)
        return col

    def _row_name(self, row: int) -> str:
        """Net name of a table row (cold error paths only)."""
        for name, r in self._net_rows.items():
            if r == row:
                return name
        if row == self._null_row:
            return "<null row>"
        return f"<row {row}>"

    def _col_window(self, col: int) -> int:
        """Window index of a table column (cold error paths only)."""
        for window, c in self._window_cols.items():
            if c == col:
                return window
        return col

    def _cols_for(self, window_indices: Sequence[int]):
        return self._xp.asarray(
            [self._window_col(w) for w in window_indices], dtype=self._xp.int64
        )

    def _rows_for(self, nets: Sequence[str]):
        return self._xp.asarray(
            [self._net_row(net) for net in nets], dtype=self._xp.int64
        )

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def data(self):
        return self._data

    @property
    def xp(self) -> ArrayBackend:
        return self._xp

    @property
    def used_words(self) -> int:
        return self._next_free

    def stats(self) -> PoolStats:
        return PoolStats(capacity_words=self.capacity_words, used_words=self._next_free)

    def _ensure(self, words: int) -> None:
        xp = self._xp
        required = self._next_free + words
        if required > self.capacity_words:
            raise DeviceMemoryError(
                f"waveform pool exhausted: need {required} words, capacity "
                f"{self.capacity_words}"
            )
        if required > xp.size(self._data):
            new_size = min(
                self.capacity_words, max(required, xp.size(self._data) * 2)
            )
            grown = xp.full(new_size, EOW, dtype=xp.int64)
            grown[: self._next_free] = self._data[: self._next_free]
            self._data = grown

    def allocate(self, words: int) -> int:
        """Reserve ``words`` and return the start address.

        Start addresses are aligned to even offsets: the kernel encodes logic
        values in pointer parity (Fig. 3), which only works when every
        waveform begins on an even address.
        """
        if words < 2:
            raise ValueError("a waveform needs at least 2 words (entry + EOW)")
        padding = self._next_free & 1
        self._ensure(words + padding)
        self._next_free += padding
        address = self._next_free
        self._next_free += words
        return address

    def allocate_batch(self, sizes):
        """Lay out one waveform per entry of ``sizes`` with a prefix sum.

        Produces exactly the addresses a loop of :meth:`allocate` calls would
        (each waveform even-aligned, laid out back-to-back), but in O(1)
        array work per level — this is how the store pass of the vector
        kernel gets every output address of a level at once.
        """
        xp = self._xp
        sizes = xp.ascontiguousarray(sizes, xp.int64)
        if xp.size(sizes) == 0:
            return xp.zeros(0, dtype=xp.int64)
        if int(xp.min(sizes)) < 2:
            raise ValueError("a waveform needs at least 2 words (entry + EOW)")
        # Even-aligned back-to-back layout: from an even base, each slot
        # occupies size + (size & 1) words, so addresses are an exclusive
        # prefix sum of the padded sizes.
        base = self._next_free + (self._next_free & 1)
        padded = sizes + (sizes & 1)
        addresses = xp.empty(xp.size(sizes), dtype=xp.int64)
        addresses[0] = base
        addresses[1:] = xp.cumsum(padded[:-1]) + base
        end = int(addresses[-1] + sizes[-1])
        self._ensure(end - self._next_free)
        self._next_free = end
        return addresses

    # ------------------------------------------------------------------
    # Waveform storage
    # ------------------------------------------------------------------
    def _register(self, net: str, window: int, address: int, size: int,
                  toggle_count: int) -> None:
        row = self._net_row(net)
        col = self._window_col(window)
        self._ptr_table[row, col] = int(address)
        self._size_table[row, col] = int(size)
        self._cnt_table[row, col] = int(toggle_count)

    def _register_block(
        self, rows, cols, addresses, sizes, counts
    ) -> None:
        """Register an ``(N, W)`` block of waveforms with three scatters.

        ``rows`` are net rows, ``cols`` window columns; the flat per-task
        arrays are net-major (``task = net * W + window``).  This replaces
        the former per-``(net, window)`` dict loop — the last per-task
        Python bookkeeping of the store path.
        """
        N = self._xp.size(rows)
        W = self._xp.size(cols)
        index = (rows[:, None], cols[None, :])
        self._ptr_table[index] = addresses.reshape(N, W)
        self._size_table[index] = sizes.reshape(N, W)
        self._cnt_table[index] = counts.reshape(N, W)

    def store_waveform(self, net: str, window: int, waveform: Waveform) -> int:
        """Copy a waveform into the pool; returns its start address."""
        raw = waveform.data
        if raw.dtype != POOL_DTYPE:
            raise TypeError(
                f"waveform dtype {raw.dtype} does not match pool dtype {POOL_DTYPE}"
            )
        address = self.allocate(raw.size)
        self._data[address : address + raw.size] = self._xp.asarray(raw)
        self._register(net, window, address, raw.size, waveform.toggle_count())
        return address

    def store_padding_waveform(self) -> int:
        """Store the canonical null waveform (``[0, EOW]``).

        Padded pins of the level-batched kernel point here: a constant-0
        signal that never produces events.  On pools built with a design
        net index the waveform is registered on the reserved *null row*
        (address for every window column, toggle count 0), which is what
        :meth:`gather_level_inputs` resolves padded pin ids against.

        Idempotent per pool lifetime: once stored, later calls re-register
        the same address instead of allocating again — the streaming driver
        runs the level loop many times against one recycled pool, and the
        null waveform lives in the retained prefix the bump-pointer rewind
        never reclaims.
        """
        if self._null_address is not None:
            address = self._null_address
            if self._null_row is not None:
                self._ptr_table[self._null_row, :] = address
                self._size_table[self._null_row, :] = 2
                self._cnt_table[self._null_row, :] = 0
            return address
        address = self.allocate(2)
        self._data[address] = 0
        self._data[address + 1] = EOW
        self._null_address = address
        # The null waveform must survive release_windows (padded pins of
        # every future chunk keep pointing at it), so protect the pool
        # prefix up to and including it from bump-pointer rewinds.
        self._retained_words = max(self._retained_words, address + 2)
        if self._null_row is not None:
            self._ptr_table[self._null_row, :] = address
            self._size_table[self._null_row, :] = 2
            self._cnt_table[self._null_row, :] = 0
        return address

    def gather_level_inputs(self, input_net_ids) -> Tuple["object", "object"]:
        """Per-task input pointers and toggle capacities for one level.

        ``input_net_ids`` is the level's ``(G, P)`` gather index tensor
        (:attr:`~repro.core.vector_kernel.LevelTensors.input_net_ids`);
        rows equal net ids because the pool was built from the same design
        net index.  Returns ``(pointers, capacities)`` shaped ``(T, P)``
        and ``(T,)`` in gate-major task order over the batch's window
        columns — two fancy-indexed reads, no per-pin Python lookups
        (fanout reuse falls out of the shared table rows).
        """
        xp = self._xp
        W = len(self._window_cols)
        G, P = int(input_net_ids.shape[0]), int(input_net_ids.shape[1])
        ptr = self._ptr_table[:, :W][input_net_ids]  # (G, P, W)
        cnt = self._cnt_table[:, :W][input_net_ids]
        pointers = xp.transpose(ptr, (0, 2, 1)).reshape(G * W, P)
        # Preserve the old per-net pointer() contract: an unregistered pair
        # must fail loudly, not wrap the -1 sentinel to the end of the pool.
        if P and G and bool(xp.any(pointers < 0)):
            missing = xp.to_host(ptr < 0)
            g, p, w = [int(axis[0]) for axis in missing.nonzero()]
            row = int(xp.to_host(input_net_ids)[g, p])
            window = self._col_window(w)
            raise KeyError(
                f"gather_level_inputs: no waveform stored for net "
                f"{self._row_name(row)!r}, window {window} (gate {g}, pin {p})"
            )
        capacities = xp.sum(cnt, axis=1).reshape(G * W)
        return pointers, capacities

    def store_kernel_output(
        self,
        net: str,
        window: int,
        address: int,
        initial_value: int,
        toggle_times: List[int],
    ) -> None:
        """Write a kernel result at a pre-assigned address (store pass)."""
        if toggle_times and toggle_times[-1] >= EOW:
            raise TimestampOverflowError(
                f"toggle time {toggle_times[-1]} on net {net!r} reached the "
                f"EOW sentinel ({EOW})"
            )
        cursor = address
        if initial_value:
            self._data[cursor] = INITIAL_ONE_MARKER
            cursor += 1
        self._data[cursor] = 0
        cursor += 1
        for time in toggle_times:
            self._data[cursor] = time
            cursor += 1
        self._data[cursor] = EOW
        self._register(
            net, window, address, cursor + 1 - address, len(toggle_times)
        )

    def store_level_outputs(
        self,
        nets: Sequence[str],
        window_indices: Sequence[int],
        addresses,
        initial_values,
        toggle_buffer,
        toggle_starts,
        toggle_counts,
        net_ids=None,
    ) -> None:
        """Vectorized store pass for one level of the vector kernel.

        Tasks are gate-major over ``window_indices`` (``task = gate * W +
        window``), matching :func:`repro.core.vector_kernel.simulate_level`.
        All waveforms of the level are written with a handful of scatter
        operations, and registration is a block scatter into the pointer
        tables (``net_ids`` supplies the rows directly when the caller —
        the engine — has the level's precomputed id tensor).
        """
        xp = self._xp
        W = len(window_indices)
        T = len(nets) * W
        addresses = xp.ascontiguousarray(addresses, xp.int64)
        if xp.size(addresses) != T:
            raise ValueError(f"expected {T} addresses, got {xp.size(addresses)}")
        if T == 0:
            return
        data = self._data
        has_marker = initial_values != 0
        data[addresses[has_marker]] = INITIAL_ONE_MARKER
        establish = addresses + xp.astype(has_marker, xp.int64)
        data[establish] = 0
        total = int(xp.sum(toggle_counts))
        if total:
            # Flat gather/scatter indices for all toggle segments at once:
            # within-segment offsets are a ramp reset at each segment start.
            ramp = xp.arange(total, dtype=xp.int64)
            seg_base = xp.cumsum(toggle_counts) - toggle_counts
            ramp -= xp.repeat(seg_base, toggle_counts)
            src = xp.repeat(toggle_starts, toggle_counts) + ramp
            dst = xp.repeat(establish + 1, toggle_counts) + ramp
            times = toggle_buffer[src]
            if int(xp.max(times)) >= EOW:
                raise TimestampOverflowError(
                    f"a toggle time in level store reached the EOW sentinel ({EOW})"
                )
            data[dst] = times
        data[establish + 1 + toggle_counts] = EOW
        sizes = establish + 2 + toggle_counts - addresses
        rows = net_ids if net_ids is not None else self._rows_for(nets)
        self._register_block(
            rows, self._cols_for(window_indices), addresses, sizes, toggle_counts
        )

    def load_windows(
        self,
        nets: Sequence[str],
        window_indices: Sequence[int],
        initial_values,
        times,
        starts,
        counts,
        rebase_offsets,
        net_ids=None,
    ) -> None:
        """Bulk-load one sliced stimulus window per ``(net, window)`` pair.

        The batched counterpart of calling :meth:`store_waveform` once per
        pair: ``initial_values``/``starts``/``counts`` are ``(N, W)`` (or
        flat net-major) slice descriptors into the flat ``times`` event
        buffer (see :func:`repro.core.restructure.slice_windows`), and
        ``rebase_offsets`` holds each window's extended start, subtracted
        from every copied timestamp so each window is stored in
        window-local time.  Layout, registration, and the resulting pool
        image are identical to the per-waveform path; the writes are a
        handful of scatters and registration is one block scatter.
        """
        xp = self._xp
        N, W = len(nets), len(window_indices)
        T = N * W
        initial_values = xp.ascontiguousarray(initial_values, xp.int64).ravel()
        starts = xp.ascontiguousarray(starts, xp.int64).ravel()
        counts = xp.ascontiguousarray(counts, xp.int64).ravel()
        if (
            xp.size(initial_values) != T
            or xp.size(starts) != T
            or xp.size(counts) != T
        ):
            raise ValueError(
                f"expected {T} window slices, got {xp.size(initial_values)}"
            )
        if T == 0:
            return
        has_marker = initial_values != 0
        marker = xp.astype(has_marker, xp.int64)
        addresses = self.allocate_batch(2 + counts + marker)
        data = self._data
        data[addresses[has_marker]] = INITIAL_ONE_MARKER
        establish = addresses + marker
        data[establish] = 0
        total = int(xp.sum(counts))
        if total:
            copied = gather_segments(times, starts, counts, xp=xp)
            offsets = xp.broadcast_to(
                xp.ascontiguousarray(rebase_offsets, xp.int64), (N, W)
            ).ravel()
            copied = copied - xp.repeat(offsets, counts)
            if int(xp.max(copied)) >= EOW:
                raise TimestampOverflowError(
                    f"a stimulus window timestamp reached the EOW sentinel ({EOW})"
                )
            ramp = xp.arange(total, dtype=xp.int64)
            ramp -= xp.repeat(xp.cumsum(counts) - counts, counts)
            data[xp.repeat(establish + 1, counts) + ramp] = copied
        data[establish + 1 + counts] = EOW
        sizes = establish + 2 + counts - addresses
        rows = net_ids if net_ids is not None else self._rows_for(nets)
        self._register_block(
            rows, self._cols_for(window_indices), addresses, sizes, counts
        )

    def window_table(
        self, nets: Sequence[str], window_indices: Sequence[int], net_ids=None
    ) -> Tuple["object", "object"]:
        """Stored layout of every ``(net, window)`` pair, as flat arrays.

        Returns ``(addresses, toggle_counts)`` in net-major task order —
        the bulk readback path's view of the registration tables.
        """
        xp = self._xp
        rows = net_ids if net_ids is not None else self._rows_for(nets)
        cols = self._cols_for(window_indices)
        index = (rows[:, None], cols[None, :])
        addresses = self._ptr_table[index]
        if bool(xp.any(addresses < 0)):
            missing = xp.to_host(addresses < 0)
            n, w = [int(axis[0]) for axis in missing.nonzero()]
            raise KeyError(
                f"no waveform stored for net {nets[n]!r}, "
                f"window {window_indices[w]}"
            )
        return addresses.ravel(), self._cnt_table[index].ravel()

    # ------------------------------------------------------------------
    # Name-keyed accessors (scalar oracle path and tests)
    # ------------------------------------------------------------------
    def _lookup(self, net: str, window: int) -> Tuple[int, int]:
        row = self._net_rows.get(net)
        col = self._window_cols.get(int(window))
        if row is not None and col is not None:
            address = int(self._ptr_table[row, col])
            if address >= 0:
                return row, col
        raise KeyError(
            f"no waveform stored for net {net!r}, window {window}"
        )

    def pointer(self, net: str, window: int) -> int:
        """Start address of a stored waveform."""
        row, col = self._lookup(net, window)
        return int(self._ptr_table[row, col])

    def toggle_count(self, net: str, window: int) -> int:
        """Real transitions of a stored waveform (drives count-pass sizing)."""
        row, col = self._lookup(net, window)
        return int(self._cnt_table[row, col])

    def has_waveform(self, net: str, window: int) -> bool:
        try:
            self._lookup(net, window)
        except KeyError:
            return False
        return True

    def read_waveform(self, net: str, window: int) -> Waveform:
        """Waveform readback as a zero-copy view into the pool.

        On the numpy backend the returned :class:`Waveform` wraps a
        read-only slice of the pool array — no per-element copy.  The pool
        is append-only for the lifetime of a simulation batch (only
        :meth:`reset` rewrites stored words), so the view stays valid as
        long as the caller holds it: even if the pool grows, the view keeps
        the old buffer alive.  On other backends the slice is copied to the
        host (readback crosses the device boundary by definition).
        """
        row, col = self._lookup(net, window)
        address = int(self._ptr_table[row, col])
        size = int(self._size_table[row, col])
        chunk = self._data[address : address + size]
        if is_host(self._xp):
            view = chunk.view()
            view.setflags(write=False)
            return Waveform(view)
        host = self._xp.to_host(chunk).copy()
        host.setflags(write=False)
        return Waveform(host)

    def release_windows(
        self, windows: Optional[Sequence[int]] = None
    ) -> None:
        """Drop window registrations and recycle their table columns.

        The streaming replay driver calls this between chunks so one pool
        serves the whole run: released columns go on a free list that
        :meth:`_window_col` reuses (lowest column first), and once *no*
        window remains registered the bump allocator rewinds to the
        retained floor — the stored words become unreachable without any
        data wipe, and the next chunk's stimulus overwrites them.  The
        canonical null waveform (:meth:`store_padding_waveform`) survives
        both the rewind and the table clear.

        ``windows=None`` releases every registered window.  Note
        :meth:`gather_level_inputs` assumes the active windows occupy the
        *first* ``len(window_cols)`` columns in registration order; the
        release-all-then-reregister pattern preserves that invariant, a
        partial release generally does not (name-keyed accessors remain
        correct either way).

        Zero-copy views handed out by :meth:`read_waveform` for released
        windows are invalidated exactly as by :meth:`reset`.
        """
        if windows is None:
            windows = list(self._window_cols)
        cols = [
            self._window_cols.pop(int(w))
            for w in windows
            if int(w) in self._window_cols
        ]
        if not cols:
            return
        col_index = self._xp.asarray(cols, dtype=self._xp.int64)
        self._ptr_table[:, col_index] = -1
        self._size_table[:, col_index] = 0
        self._cnt_table[:, col_index] = 0
        if self._null_row is not None and self._null_address is not None:
            self._ptr_table[self._null_row, col_index] = self._null_address
            self._size_table[self._null_row, col_index] = 2
        self._free_cols.extend(cols)
        self._free_cols.sort(reverse=True)
        if not self._window_cols:
            self._next_free = self._retained_words

    def reset(self) -> None:
        """Free everything (used between sequential testbench segments).

        Invalidates any zero-copy views previously handed out by
        :meth:`read_waveform`; callers that keep results across a reset must
        copy them first.
        """
        self._next_free = 0
        self._free_cols = []
        self._retained_words = 0
        self._null_address = None
        self._ptr_table[:, :] = -1
        self._size_table[:, :] = 0
        self._cnt_table[:, :] = 0
        self._data[:] = EOW
