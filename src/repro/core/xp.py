"""Device-pluggable array-backend ("xp") layer.

The GATSPI data plane — packed design tensors, the level-batched kernel,
the restructure/load/readback pipeline, and the waveform pool — is written
against a small array-operation surface instead of ``numpy`` directly.
This module defines that surface (:class:`ArrayBackend`) and a registry of
implementations:

* ``"numpy"`` — always available; the reference backend.  Its operations
  *are* the numpy functions, so routing through it is bit-identical (and
  cost-identical) to calling numpy directly.
* ``"torch"`` — registered when PyTorch is importable; runs the same
  pipeline on ``torch`` tensors (CUDA when available, else CPU).
* ``"cupy"`` — registered when CuPy is importable; runs on the GPU through
  CuPy's numpy-compatible API.

Selection precedence
--------------------

The active backend of a simulation is chosen by, in decreasing precedence:

1. ``SimConfig(device="torch")`` — the explicit config field, which the
   ``gatspi`` backend's ``prepare(..., device=...)`` option and the registry
   spec form ``"gatspi:device=torch"`` both feed.
2. The ``REPRO_DEVICE`` environment variable (read when a
   :class:`~repro.core.config.SimConfig` is constructed without an explicit
   ``device``).
3. The default, ``"numpy"``.

The engine pins the scalar-kernel and python-restructure *oracle* executors
to the numpy backend regardless of the configured device — they are
per-object Python reference paths with no device representation — so a
non-numpy device only drives the vector kernel + vector restructure
pipeline, and differential runs under ``REPRO_DEVICE=torch`` compare the
device pipeline against the host oracles exactly as intended.

Operation surface
-----------------

Backends expose the ~20 operations the pipeline uses: construction
(``asarray``/``ascontiguousarray``/``zeros``/``empty``/``full``/``arange``),
``searchsorted``, prefix sums (``cumsum``/``diff``), gather/scatter-style
indexing (plain ``__getitem__``/``__setitem__`` on backend arrays, plus
``repeat``/``tile``/``broadcast_to``/``take_along``-style fancy indexing),
``where``, clipped ``minimum``/``maximum``, reductions
(``sum``/``min``/``max``/``any``/``all``), ``isfinite``, dtype conversion
(``astype``), ``copy``, ``transpose``, ``concatenate``, ``size``, and the
host boundary ``to_host``.  Dtype handles (``int8``/``int64``/``float64``/
``bool_``) and ``inf`` are exposed as attributes so no caller ever touches
``numpy`` dtypes for device arrays.

``tests/test_xp.py`` holds the conformance suite every registered backend
must pass; it encodes the exact numpy semantics (searchsorted sides,
truncating float→int casts, repeat/tile shapes, scatter writes) the
pipeline relies on for bit-identical results.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Environment variable supplying the default device name.
DEVICE_ENV_VAR = "REPRO_DEVICE"

#: Operations every backend must provide (the conformance surface).
ARRAY_OPS: Tuple[str, ...] = (
    "asarray",
    "ascontiguousarray",
    "to_host",
    "zeros",
    "empty",
    "full",
    "arange",
    "where",
    "minimum",
    "maximum",
    "searchsorted",
    "cumsum",
    "diff",
    "repeat",
    "tile",
    "broadcast_to",
    "concatenate",
    "astype",
    "copy",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "isfinite",
    "transpose",
    "size",
)

#: Dtype/constant attributes every backend must provide.
ARRAY_ATTRS: Tuple[str, ...] = ("int8", "int64", "float64", "bool_", "inf")


class ArrayBackendError(RuntimeError):
    """Base class for array-backend registry failures."""


class UnknownArrayBackendError(ArrayBackendError, LookupError):
    """Raised when asking for a device no backend was registered under."""


class ArrayBackend:
    """Base class: a named provider of the :data:`ARRAY_OPS` surface."""

    name: str = "abstract"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArrayBackend {self.name!r}>"


class NumpyBackend(ArrayBackend):
    """The reference backend: operations *are* the numpy functions.

    Anything not explicitly wrapped resolves to the same-named ``numpy``
    attribute, so routing host-side code through this backend is
    guaranteed bit- and cost-identical to calling numpy directly.  Only
    operations whose numpy spelling is a *method* (``astype``, ``copy``
    via ``ndarray.copy`` semantics, ``size``) or that do not exist in
    numpy (``to_host``) are defined here.
    """

    name = "numpy"

    def __getattr__(self, attr: str):
        try:
            return getattr(np, attr)
        except AttributeError:
            raise AttributeError(
                f"numpy array backend has no operation {attr!r}"
            ) from None

    @staticmethod
    def asarray(x, dtype=None):
        return np.asarray(x, dtype=dtype)

    @staticmethod
    def to_host(x) -> np.ndarray:
        """Identity: numpy arrays already live on the host."""
        return np.asarray(x)

    @staticmethod
    def astype(x, dtype):
        return x.astype(dtype)

    @staticmethod
    def copy(x):
        return x.copy()

    @staticmethod
    def size(x) -> int:
        return int(np.asarray(x).size)


class TorchBackend(ArrayBackend):  # pragma: no cover - needs torch installed
    """PyTorch implementation of the operation surface.

    Tensors live on CUDA when available, otherwise CPU.  Every wrapper
    reproduces the *numpy* semantics the pipeline relies on (validated by
    the conformance suite): ``searchsorted`` sides, truncating
    float→int64 casts, ``repeat`` as ``repeat_interleave``, scalar
    ``minimum``/``maximum`` as clamps.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None):
        import torch

        self._torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self._device = torch.device(device)
        self.int8 = torch.int8
        self.int64 = torch.int64
        self.float64 = torch.float64
        self.bool_ = torch.bool
        self.inf = float("inf")

    # -- construction ---------------------------------------------------
    def asarray(self, x, dtype=None):
        torch = self._torch
        if isinstance(x, np.ndarray) and x.dtype == np.int8 and dtype is None:
            dtype = torch.int8
        return torch.as_tensor(x, dtype=dtype, device=self._device)

    def ascontiguousarray(self, x, dtype=None):
        return self.asarray(x, dtype=dtype).contiguous()

    def to_host(self, x) -> np.ndarray:
        if self._torch.is_tensor(x):
            return x.detach().to("cpu").numpy()
        return np.asarray(x)

    def _shape(self, shape):
        if isinstance(shape, int):
            return (shape,)
        return tuple(int(s) for s in shape)

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(self._shape(shape), dtype=dtype, device=self._device)

    def empty(self, shape, dtype=None):
        return self._torch.empty(self._shape(shape), dtype=dtype, device=self._device)

    def full(self, shape, fill_value, dtype=None):
        return self._torch.full(
            self._shape(shape), fill_value, dtype=dtype, device=self._device
        )

    def arange(self, n, dtype=None):
        return self._torch.arange(int(n), dtype=dtype, device=self._device)

    # -- elementwise ----------------------------------------------------
    def where(self, cond, x, y):
        torch = self._torch
        if cond.dtype != torch.bool:
            cond = cond != 0
        x_t, y_t = torch.is_tensor(x), torch.is_tensor(y)
        if x_t and not y_t:
            dtype = torch.float64 if isinstance(y, float) and x.dtype != torch.float64 else x.dtype
            y = torch.as_tensor(y, dtype=dtype, device=x.device)
        elif y_t and not x_t:
            dtype = torch.float64 if isinstance(x, float) and y.dtype != torch.float64 else y.dtype
            x = torch.as_tensor(x, dtype=dtype, device=y.device)
        elif not x_t and not y_t:
            x = torch.as_tensor(x, device=self._device)
            y = torch.as_tensor(y, device=self._device)
        return torch.where(cond, x, y)

    def minimum(self, x, y):
        torch = self._torch
        if not torch.is_tensor(y):
            return torch.clamp(x, max=y)
        if not torch.is_tensor(x):
            return torch.clamp(y, max=x)
        return torch.minimum(x, y)

    def maximum(self, x, y):
        torch = self._torch
        if not torch.is_tensor(y):
            return torch.clamp(x, min=y)
        if not torch.is_tensor(x):
            return torch.clamp(y, min=x)
        return torch.maximum(x, y)

    def isfinite(self, x):
        return self._torch.isfinite(x)

    # -- sorted search / prefix sums ------------------------------------
    def searchsorted(self, a, v, side: str = "left"):
        torch = self._torch
        right = side == "right"
        if torch.is_tensor(v):
            return torch.searchsorted(a, v, right=right)
        scalar = not hasattr(v, "__len__")
        query = torch.as_tensor(
            [v] if scalar else v, dtype=a.dtype, device=a.device
        )
        result = torch.searchsorted(a, query, right=right)
        return int(result[0]) if scalar else result

    def cumsum(self, x, axis=None):
        return self._torch.cumsum(x, dim=0 if axis is None else axis)

    def diff(self, x):
        return self._torch.diff(x)

    # -- shape / layout -------------------------------------------------
    def repeat(self, x, repeats, axis=None):
        torch = self._torch
        if not torch.is_tensor(x):
            x = self.asarray(x)
        return torch.repeat_interleave(x, repeats, dim=axis)

    def tile(self, x, reps):
        if isinstance(reps, int):
            reps = (reps,)
        return self._torch.tile(x, reps)

    def broadcast_to(self, x, shape):
        return self._torch.broadcast_to(x, self._shape(shape))

    def concatenate(self, seq):
        return self._torch.cat(list(seq))

    def astype(self, x, dtype):
        return x.to(dtype)

    def copy(self, x):
        return x.clone()

    def transpose(self, x, axes):
        return x.permute(*axes)

    def size(self, x) -> int:
        return int(x.numel())

    # -- reductions -----------------------------------------------------
    def sum(self, x, axis=None):
        if axis is None:
            return self._torch.sum(x)
        return self._torch.sum(x, dim=axis)

    def min(self, x, axis=None):
        if axis is None:
            return self._torch.min(x)
        return self._torch.amin(x, dim=axis)

    def max(self, x, axis=None):
        if axis is None:
            return self._torch.max(x)
        return self._torch.amax(x, dim=axis)

    def any(self, x):
        return self._torch.any(x)

    def all(self, x):
        return self._torch.all(x)


class CupyBackend(ArrayBackend):  # pragma: no cover - needs cupy installed
    """CuPy implementation: numpy-compatible API on the GPU.

    CuPy mirrors the numpy function surface, so — like the numpy backend —
    unwrapped operations resolve to the same-named ``cupy`` attribute.
    """

    name = "cupy"

    def __init__(self):
        import cupy

        self._cupy = cupy

    def __getattr__(self, attr: str):
        try:
            return getattr(self._cupy, attr)
        except AttributeError:
            raise AttributeError(
                f"cupy array backend has no operation {attr!r}"
            ) from None

    def asarray(self, x, dtype=None):
        return self._cupy.asarray(x, dtype=dtype)

    def to_host(self, x) -> np.ndarray:
        return self._cupy.asnumpy(x)

    def astype(self, x, dtype):
        return x.astype(dtype)

    def copy(self, x):
        return x.copy()

    def size(self, x) -> int:
        return int(x.size)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_array_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (instantiated lazily)."""
    if not name or not isinstance(name, str):
        raise ValueError("array backend name must be a non-empty string")
    if name in _FACTORIES:
        raise ArrayBackendError(f"array backend {name!r} is already registered")
    _FACTORIES[name] = factory


def available_array_backends() -> Tuple[str, ...]:
    """Names of all registered array backends, sorted alphabetically."""
    return tuple(sorted(_FACTORIES))


def get_array_backend(name: str) -> ArrayBackend:
    """Look up (and lazily instantiate) an array backend by name."""
    if name in _INSTANCES:
        return _INSTANCES[name]
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownArrayBackendError(
            f"unknown array backend {name!r}; available backends: "
            f"{', '.join(available_array_backends())} "
            f"(torch/cupy appear only when the package is importable)"
        ) from None
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def default_device() -> str:
    """The default device name: ``$REPRO_DEVICE`` or ``"numpy"``."""
    return os.environ.get(DEVICE_ENV_VAR, "").strip() or "numpy"


def is_host(xp: ArrayBackend) -> bool:
    """Whether ``xp`` has host (numpy) semantics.

    Host↔device transfer helpers are identities for host backends — this
    is the single definition every ``to_device``/``to_host`` boundary
    checks, so the notion of "host" cannot drift between call sites.
    """
    return xp is HOST or xp.name == "numpy"


# numpy is always available; torch/cupy register only when importable so a
# bare install never pays their import cost (instantiation is lazy anyway,
# but find_spec keeps even the *names* honest about availability).
register_array_backend("numpy", NumpyBackend)
if importlib.util.find_spec("torch") is not None:  # pragma: no cover - env
    register_array_backend("torch", TorchBackend)
if importlib.util.find_spec("cupy") is not None:  # pragma: no cover - env
    register_array_backend("cupy", CupyBackend)


#: The host backend — used for host-side array work (stimulus lowering,
#: result stitching) and as the default ``xp`` of every device-threaded
#: function, keeping the numpy path bit- and cost-identical.
HOST: ArrayBackend = get_array_backend("numpy")
