"""Waveform I/O and stimulus generation: VCD, SAIF, testbench generators."""

from .vcd import (
    VcdError,
    VcdEventStream,
    parse_vcd,
    read_vcd,
    save_vcd,
    write_vcd,
)
from .saif import (
    NetActivity,
    SaifData,
    activity_from_result,
    parse_saif,
    read_saif,
    saif_files_match,
    saif_from_activities,
    saif_from_result,
    save_saif,
    write_saif,
)
from .stimulus import (
    TestbenchSpec,
    clock_waveform,
    functional_stimulus,
    measured_activity_factor,
    random_stimulus,
    scan_stimulus,
    stimulus_for_netlist,
)

__all__ = [
    "VcdError",
    "VcdEventStream",
    "parse_vcd",
    "read_vcd",
    "save_vcd",
    "write_vcd",
    "NetActivity",
    "SaifData",
    "activity_from_result",
    "parse_saif",
    "read_saif",
    "saif_files_match",
    "saif_from_activities",
    "saif_from_result",
    "save_saif",
    "write_saif",
    "TestbenchSpec",
    "clock_waveform",
    "functional_stimulus",
    "measured_activity_factor",
    "random_stimulus",
    "scan_stimulus",
    "stimulus_for_netlist",
]
