"""Testbench stimulus generators.

The paper's benchmarks span random stimulus, convolution workloads,
scan-shift patterns (activity factor near 1), and functional power windows
(activity factors of a few percent).  These generators produce the equivalent
source-net waveforms (primary inputs and pseudo-primary inputs) with a
controllable target activity factor, cycle count, and clock period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.waveform import Waveform
from ..netlist import Netlist


@dataclass(frozen=True)
class TestbenchSpec:
    """Description of a testbench: how long and how active."""

    name: str
    cycles: int
    clock_period: int = 1000
    activity_factor: float = 0.2
    seed: int = 1

    @property
    def duration(self) -> int:
        return self.cycles * self.clock_period


def clock_waveform(cycles: int, period: int, start_value: int = 0) -> Waveform:
    """A 50% duty-cycle clock covering ``cycles`` periods."""
    half = max(1, period // 2)
    toggles: List[int] = []
    time = half
    end = cycles * period
    while time < end:
        toggles.append(time)
        time += half
    return Waveform.from_toggle_array(start_value, toggles)


def random_stimulus(
    nets: Sequence[str],
    cycles: int,
    clock_period: int = 1000,
    toggle_probability: float = 0.5,
    seed: int = 1,
    offset_within_cycle: int = 1,
) -> Dict[str, Waveform]:
    """Per-cycle random toggles: each net toggles each cycle with probability
    ``toggle_probability`` (1.0 reproduces the paper's ``random stimulus`` /
    scan benchmarks, small values reproduce low-activity functional windows).
    """
    if not 0.0 <= toggle_probability <= 1.0:
        raise ValueError("toggle_probability must be within [0, 1]")
    rng = random.Random(seed)
    duration = cycles * clock_period
    stimulus: Dict[str, Waveform] = {}
    for index, net in enumerate(nets):
        net_rng = random.Random(rng.randrange(1 << 30) + index)
        toggles: List[int] = []
        for cycle in range(cycles):
            if net_rng.random() < toggle_probability:
                time = cycle * clock_period + offset_within_cycle
                if 0 < time < duration:
                    toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(net_rng.randint(0, 1), toggles)
    return stimulus


def scan_stimulus(
    nets: Sequence[str],
    cycles: int,
    clock_period: int = 1000,
    seed: int = 1,
) -> Dict[str, Waveform]:
    """Scan-shift style stimulus: nearly every net toggles nearly every cycle.

    Scan testbenches are the paper's highest-activity workloads (activity
    factors of 1.0-1.2): every flop is part of a shift chain, so register
    outputs toggle at close to the clock rate.
    """
    return random_stimulus(
        nets,
        cycles,
        clock_period=clock_period,
        toggle_probability=0.95,
        seed=seed,
    )


def functional_stimulus(
    nets: Sequence[str],
    cycles: int,
    clock_period: int = 1000,
    activity_factor: float = 0.02,
    burst_fraction: float = 0.25,
    seed: int = 1,
) -> Dict[str, Waveform]:
    """Functional power-window stimulus: low average activity with bursts.

    Real functional windows are not uniformly random — activity clusters in
    bursts (pipeline activity, memory transactions) separated by idle spans.
    ``activity_factor`` sets the average toggle probability per cycle;
    ``burst_fraction`` sets what fraction of cycles are inside bursts.
    """
    if not 0.0 < burst_fraction <= 1.0:
        raise ValueError("burst_fraction must be within (0, 1]")
    rng = random.Random(seed)
    duration = cycles * clock_period
    stimulus: Dict[str, Waveform] = {}

    # Shared burst schedule so nets are correlated, as in real workloads.
    burst_cycles = set()
    cycle = 0
    while cycle < cycles:
        if rng.random() < burst_fraction:
            burst_length = rng.randint(1, max(1, cycles // 20))
            for offset in range(burst_length):
                if cycle + offset < cycles:
                    burst_cycles.add(cycle + offset)
            cycle += burst_length
        else:
            cycle += 1
    if not burst_cycles:
        burst_cycles.add(0)
    # Toggle probability inside a burst, normalised by the actual burst
    # coverage so the average per-cycle activity hits the requested target.
    in_burst_probability = min(1.0, activity_factor * cycles / len(burst_cycles))

    for index, net in enumerate(nets):
        net_rng = random.Random(rng.randrange(1 << 30) + index)
        toggles: List[int] = []
        for cycle in range(cycles):
            if cycle in burst_cycles and net_rng.random() < in_burst_probability:
                time = cycle * clock_period + 1 + net_rng.randint(0, clock_period // 4)
                if 0 < time < duration:
                    toggles.append(time)
        stimulus[net] = Waveform.from_toggle_array(net_rng.randint(0, 1), toggles)
    return stimulus


def stimulus_for_netlist(
    netlist: Netlist,
    spec: TestbenchSpec,
    kind: str = "functional",
    clock_nets: Optional[Iterable[str]] = None,
) -> Dict[str, Waveform]:
    """Build a complete source-net stimulus for a netlist.

    ``kind`` selects the generator: ``"random"``, ``"scan"``, or
    ``"functional"``.  Clock nets (by default any source net whose name
    contains ``clk`` or ``clock``) receive a free-running clock.
    """
    sources = netlist.source_nets()
    if clock_nets is None:
        clock_nets = [
            net for net in sources if "clk" in net.lower() or "clock" in net.lower()
        ]
    clock_set = set(clock_nets)
    data_nets = [net for net in sources if net not in clock_set]

    if kind == "random":
        stimulus = random_stimulus(
            data_nets, spec.cycles, spec.clock_period,
            toggle_probability=min(1.0, max(spec.activity_factor, 0.0)),
            seed=spec.seed,
        )
    elif kind == "scan":
        stimulus = scan_stimulus(
            data_nets, spec.cycles, spec.clock_period, seed=spec.seed
        )
    elif kind == "functional":
        stimulus = functional_stimulus(
            data_nets, spec.cycles, spec.clock_period,
            activity_factor=spec.activity_factor, seed=spec.seed,
        )
    else:
        raise ValueError(f"unknown stimulus kind {kind!r}")

    for net in clock_set:
        stimulus[net] = clock_waveform(spec.cycles, spec.clock_period)
    return stimulus


def measured_activity_factor(
    stimulus: Mapping[str, Waveform], cycles: int
) -> float:
    """Average toggles per source net per cycle of a stimulus set."""
    if not stimulus or cycles == 0:
        return 0.0
    total = sum(wave.toggle_count() for wave in stimulus.values())
    return total / (len(stimulus) * cycles)
