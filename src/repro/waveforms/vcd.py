"""Minimal VCD (Value Change Dump) reader and writer.

The paper's flow consumes testbench waveforms (from RTL simulation, ATPG or
scan) for the primary and pseudo-primary inputs.  VCD is the common exchange
format for those waveforms, so we provide a small scalar-signal VCD
reader/writer that round-trips with the internal array format.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.waveform import Waveform


class VcdError(ValueError):
    """Raised when a VCD file cannot be parsed."""


_IDENT_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Generate a compact VCD identifier code for signal ``index``."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    base = len(_IDENT_CHARS)
    code = ""
    index += 1
    while index > 0:
        index, remainder = divmod(index - 1, base)
        code = _IDENT_CHARS[remainder] + code
    return code


def write_vcd(
    waveforms: Mapping[str, Waveform],
    timescale: str = "1ps",
    scope: str = "top",
    end_time: Optional[int] = None,
) -> str:
    """Render a set of waveforms as VCD text."""
    names = sorted(waveforms)
    codes = {name: _identifier(i) for i, name in enumerate(names)}
    lines: List[str] = []
    lines.append("$date repro GATSPI reproduction $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append(f"$scope module {scope} $end")
    for name in names:
        lines.append(f"$var wire 1 {codes[name]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    events: Dict[int, List[Tuple[str, int]]] = {}
    for name in names:
        for time, value in waveforms[name].changes():
            events.setdefault(int(time), []).append((codes[name], value))
    lines.append("$dumpvars")
    initial = events.pop(0, [])
    seen = {code for code, _ in initial}
    for name in names:
        code = codes[name]
        if code not in seen:
            initial.append((code, waveforms[name].initial_value))
    for code, value in sorted(initial):
        lines.append(f"{value}{code}")
    lines.append("$end")
    for time in sorted(events):
        lines.append(f"#{time}")
        for code, value in events[time]:
            lines.append(f"{value}{code}")
    if end_time is not None:
        lines.append(f"#{end_time}")
    return "\n".join(lines) + "\n"


def save_vcd(waveforms: Mapping[str, Waveform], path: str, **kwargs) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_vcd(waveforms, **kwargs))


_VAR = re.compile(r"\$var\s+\w+\s+(\d+)\s+(\S+)\s+(.+?)\s*(?:\[\d+(?::\d+)?\])?\s+\$end")
_TIME = re.compile(r"^#(\d+)")
_SCALAR = re.compile(r"^([01xzXZ])(\S+)$")


def parse_vcd(text: str) -> Dict[str, Waveform]:
    """Parse scalar signals from VCD text into waveforms.

    ``x``/``z`` values are mapped to 0 (GATSPI is a 2-value simulator, and
    re-simulation for power rarely encounters unknowns, as the paper notes).
    """
    code_to_name: Dict[str, str] = {}
    in_definitions = True
    current_time = 0
    changes: Dict[str, List[Tuple[int, int]]] = {}

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if in_definitions:
            match = _VAR.search(line)
            if match:
                width, code, name = match.group(1), match.group(2), match.group(3)
                if int(width) != 1:
                    raise VcdError(
                        f"only scalar (1-bit) signals are supported, {name!r} "
                        f"has width {width}"
                    )
                code_to_name[code] = name.strip()
                continue
            if "$enddefinitions" in line:
                in_definitions = False
            continue
        time_match = _TIME.match(line)
        if time_match:
            current_time = int(time_match.group(1))
            continue
        if line.startswith("$"):
            continue
        scalar = _SCALAR.match(line)
        if scalar:
            value_char, code = scalar.group(1), scalar.group(2)
            if code not in code_to_name:
                continue
            value = 1 if value_char == "1" else 0
            name = code_to_name[code]
            changes.setdefault(name, []).append((current_time, value))

    waveforms: Dict[str, Waveform] = {}
    for name, change_list in changes.items():
        if not change_list:
            continue
        if change_list[0][0] != 0:
            change_list.insert(0, (0, 0))
        waveforms[name] = Waveform.from_changes(change_list)
    for code, name in code_to_name.items():
        if name not in waveforms:
            waveforms[name] = Waveform.constant(0)
    return waveforms


def read_vcd(path: str) -> Dict[str, Waveform]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_vcd(handle.read())
