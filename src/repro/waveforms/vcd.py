"""Minimal VCD (Value Change Dump) reader and writer.

The paper's flow consumes testbench waveforms (from RTL simulation, ATPG or
scan) for the primary and pseudo-primary inputs.  VCD is the common exchange
format for those waveforms, so we provide a small scalar-signal VCD
reader/writer that round-trips with the internal array format.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.waveform import Waveform


class VcdError(ValueError):
    """Raised when a VCD file cannot be parsed."""


_IDENT_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Generate a compact VCD identifier code for signal ``index``."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    base = len(_IDENT_CHARS)
    code = ""
    index += 1
    while index > 0:
        index, remainder = divmod(index - 1, base)
        code = _IDENT_CHARS[remainder] + code
    return code


def write_vcd(
    waveforms: Mapping[str, Waveform],
    timescale: str = "1ps",
    scope: str = "top",
    end_time: Optional[int] = None,
) -> str:
    """Render a set of waveforms as VCD text."""
    names = sorted(waveforms)
    codes = {name: _identifier(i) for i, name in enumerate(names)}
    lines: List[str] = []
    lines.append("$date repro GATSPI reproduction $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append(f"$scope module {scope} $end")
    for name in names:
        lines.append(f"$var wire 1 {codes[name]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    events: Dict[int, List[Tuple[str, int]]] = {}
    for name in names:
        for time, value in waveforms[name].changes():
            events.setdefault(int(time), []).append((codes[name], value))
    lines.append("$dumpvars")
    initial = events.pop(0, [])
    seen = {code for code, _ in initial}
    for name in names:
        code = codes[name]
        if code not in seen:
            initial.append((code, waveforms[name].initial_value))
    for code, value in sorted(initial):
        lines.append(f"{value}{code}")
    lines.append("$end")
    for time in sorted(events):
        lines.append(f"#{time}")
        for code, value in events[time]:
            lines.append(f"{value}{code}")
    if end_time is not None:
        lines.append(f"#{end_time}")
    return "\n".join(lines) + "\n"


def save_vcd(waveforms: Mapping[str, Waveform], path: str, **kwargs) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_vcd(waveforms, **kwargs))


_VAR = re.compile(r"\$var\s+\w+\s+(\d+)\s+(\S+)\s+(.+?)\s*(?:\[\d+(?::\d+)?\])?\s+\$end")
_SCOPE = re.compile(r"\$scope\s+\w+\s+(\S+)\s+\$end")
_TIME = re.compile(r"^#(\d+)")
_SCALAR = re.compile(r"^([01xzXZ])(\S+)$")
# Vector-format dump of a value change: ``b<binary> <code>``.  Many real
# tools (Icarus, Verilator, VCS) emit this form even for 1-bit variables,
# where the VCD grammar also allows the compact scalar form.
_VECTOR = re.compile(r"^[bB]([01xzXZ]+)\s+(\S+)$")


def _vector_bit(bits: str) -> int:
    """The LSB of a binary vector-format value, with x/z mapped to 0."""
    return 1 if bits[-1] == "1" else 0


def parse_vcd(text: str) -> Dict[str, Waveform]:
    """Parse scalar signals from VCD text into waveforms.

    ``x``/``z`` values are mapped to 0 (GATSPI is a 2-value simulator, and
    re-simulation for power rarely encounters unknowns, as the paper notes).

    Value changes are accepted in both forms the VCD grammar allows for
    1-bit variables: the compact scalar form (``1<code>``) and the
    vector form (``b1 <code>``) that many real tools emit.  Variables are
    keyed by their declared name when that name is unique; two ``$var``
    declarations sharing a name in *different* scopes are disambiguated by
    their dotted scope path (``top.u0.clk`` / ``top.u1.clk``) instead of
    being silently merged into one interleaved change list.  A repeated
    ``$var`` for an identifier code already seen is the VCD aliasing idiom
    (one signal visible in several scopes) and maps to the first declared
    name.
    """
    # code -> (scope-qualified path, bare name); first declaration wins so
    # aliases (same code re-declared in another scope) stay one signal.
    declarations: Dict[str, Tuple[str, str]] = {}
    scope_stack: List[str] = []
    in_definitions = True
    current_time = 0
    changes: Dict[str, List[Tuple[int, int]]] = {}

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if in_definitions:
            match = _VAR.search(line)
            if match:
                width, code, name = match.group(1), match.group(2), match.group(3)
                if int(width) != 1:
                    raise VcdError(
                        f"only scalar (1-bit) signals are supported, {name!r} "
                        f"has width {width}"
                    )
                if code not in declarations:
                    name = name.strip()
                    declarations[code] = (
                        ".".join(scope_stack + [name]), name
                    )
                continue
            scope = _SCOPE.search(line)
            if scope:
                scope_stack.append(scope.group(1))
                continue
            if "$upscope" in line:
                if scope_stack:
                    scope_stack.pop()
                continue
            if "$enddefinitions" in line:
                in_definitions = False
            continue
        time_match = _TIME.match(line)
        if time_match:
            current_time = int(time_match.group(1))
            continue
        vector = _VECTOR.match(line)
        if vector:
            bits, code = vector.group(1), vector.group(2)
            if code in declarations:
                changes.setdefault(code, []).append(
                    (current_time, _vector_bit(bits))
                )
            continue
        if line.startswith("$"):
            continue
        scalar = _SCALAR.match(line)
        if scalar:
            value_char, code = scalar.group(1), scalar.group(2)
            if code not in declarations:
                continue
            value = 1 if value_char == "1" else 0
            changes.setdefault(code, []).append((current_time, value))

    # Resolve output names: bare names when unique, dotted scope paths for
    # names declared in several scopes.
    bare_counts: Dict[str, int] = {}
    for path, bare in declarations.values():
        bare_counts[bare] = bare_counts.get(bare, 0) + 1
    code_to_name: Dict[str, str] = {}
    resolved_names = set()
    for code, (path, bare) in declarations.items():
        resolved = bare if bare_counts[bare] == 1 else path
        if resolved in resolved_names:
            raise VcdError(
                f"duplicate VCD variable {resolved!r}: two $var declarations "
                f"share both name and scope"
            )
        resolved_names.add(resolved)
        code_to_name[code] = resolved

    waveforms: Dict[str, Waveform] = {}
    for code, change_list in changes.items():
        if not change_list:
            continue
        if change_list[0][0] != 0:
            change_list.insert(0, (0, 0))
        waveforms[code_to_name[code]] = Waveform.from_changes(change_list)
    for code, name in code_to_name.items():
        if name not in waveforms:
            waveforms[name] = Waveform.constant(0)
    return waveforms


def read_vcd(path: str) -> Dict[str, Waveform]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_vcd(handle.read())
