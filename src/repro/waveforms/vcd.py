"""Minimal VCD (Value Change Dump) reader and writer.

The paper's flow consumes testbench waveforms (from RTL simulation, ATPG or
scan) for the primary and pseudo-primary inputs.  VCD is the common exchange
format for those waveforms, so we provide a small scalar-signal VCD
reader/writer that round-trips with the internal array format.

Parsing is built on an *incremental* tokenizer: lines are produced from a
file handle in bounded chunks, the definitions section is parsed up front,
and value changes are folded into per-signal accumulators as they stream
by.  :func:`parse_vcd` and :func:`read_vcd` share that machinery (so
``read_vcd`` never slurps the file), and :class:`VcdEventStream` exposes the
dump section as a :class:`~repro.core.restructure.StreamingSourceEvents`
producer for the out-of-core replay pipeline — one window-span of events at
a time, with memory bounded by the span (plus settle-margin lookback), not
by the run length.
"""

from __future__ import annotations

import io
import re
from bisect import bisect_left, bisect_right
from collections import deque
from typing import (
    IO,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.restructure import SourceEvents, StreamingSourceEvents
from ..core.waveform import Waveform, WaveformError
from ..core.xp import HOST


class VcdError(ValueError):
    """Raised when a VCD file cannot be parsed."""


_IDENT_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Generate a compact VCD identifier code for signal ``index``."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    base = len(_IDENT_CHARS)
    code = ""
    index += 1
    while index > 0:
        index, remainder = divmod(index - 1, base)
        code = _IDENT_CHARS[remainder] + code
    return code


def write_vcd(
    waveforms: Mapping[str, Waveform],
    timescale: str = "1ps",
    scope: str = "top",
    end_time: Optional[int] = None,
) -> str:
    """Render a set of waveforms as VCD text."""
    names = sorted(waveforms)
    codes = {name: _identifier(i) for i, name in enumerate(names)}
    lines: List[str] = []
    lines.append("$date repro GATSPI reproduction $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append(f"$scope module {scope} $end")
    for name in names:
        lines.append(f"$var wire 1 {codes[name]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    events: Dict[int, List[Tuple[str, int]]] = {}
    for name in names:
        for time, value in waveforms[name].changes():
            events.setdefault(int(time), []).append((codes[name], value))
    lines.append("$dumpvars")
    initial = events.pop(0, [])
    seen = {code for code, _ in initial}
    for name in names:
        code = codes[name]
        if code not in seen:
            initial.append((code, waveforms[name].initial_value))
    for code, value in sorted(initial):
        lines.append(f"{value}{code}")
    lines.append("$end")
    for time in sorted(events):
        lines.append(f"#{time}")
        for code, value in events[time]:
            lines.append(f"{value}{code}")
    if end_time is not None:
        lines.append(f"#{end_time}")
    return "\n".join(lines) + "\n"


def save_vcd(waveforms: Mapping[str, Waveform], path: str, **kwargs: object) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_vcd(waveforms, **kwargs))  # type: ignore[arg-type]


_VAR = re.compile(r"\$var\s+\w+\s+(\d+)\s+(\S+)\s+(.+?)\s*(?:\[\d+(?::\d+)?\])?\s+\$end")
_SCOPE = re.compile(r"\$scope\s+\w+\s+(\S+)\s+\$end")
_TIME = re.compile(r"^#(\d+)")
_SCALAR = re.compile(r"^([01xzXZ])(\S+)$")
# Vector-format dump of a value change: ``b<binary> <code>``.  Many real
# tools (Icarus, Verilator, VCS) emit this form even for 1-bit variables,
# where the VCD grammar also allows the compact scalar form.
_VECTOR = re.compile(r"^[bB]([01xzXZ]+)\s+(\S+)$")


def _vector_bit(bits: str) -> int:
    """The LSB of a binary vector-format value, with x/z mapped to 0."""
    return 1 if bits[-1] == "1" else 0


# ----------------------------------------------------------------------
# Incremental tokenizer
# ----------------------------------------------------------------------
#: Characters read from the handle per tokenizer refill.
_CHUNK_CHARS = 1 << 16
#: Longest line the tokenizer accepts before declaring the file corrupt.
#: Real VCD lines are tens of characters; an unbounded "line" means a
#: binary/garbage tail and must not buffer the rest of the file.
_MAX_LINE_CHARS = 1 << 20


def _iter_lines(
    handle: IO[str], chunk_chars: int = _CHUNK_CHARS
) -> Iterator[str]:
    """Yield stripped lines from ``handle`` reading bounded chunks.

    Memory is O(``chunk_chars``) regardless of file size; a single line
    longer than :data:`_MAX_LINE_CHARS` raises :class:`VcdError` instead of
    buffering arbitrarily (a truncated or binary-garbage tail otherwise
    looks like one endless line).
    """
    carry = ""
    while True:
        chunk = handle.read(chunk_chars)
        if not chunk:
            break
        carry += chunk
        if "\n" not in chunk and len(carry) > _MAX_LINE_CHARS:
            raise VcdError(
                f"VCD line exceeds {_MAX_LINE_CHARS} characters; "
                "file is corrupt or not a VCD"
            )
        pieces = carry.split("\n")
        carry = pieces.pop()
        for piece in pieces:
            line = piece.strip()
            if line:
                yield line
    tail = carry.strip()
    if tail:
        yield tail


def _parse_definitions(lines: Iterator[str]) -> Dict[str, Tuple[str, str]]:
    """Consume the definitions section, returning code → (path, bare name).

    The first declaration of a code wins, so aliases (the same code
    re-declared in another scope) stay one signal.  Stops after
    ``$enddefinitions`` (or EOF — a definitions-only file is legal and
    yields constant waveforms).
    """
    declarations: Dict[str, Tuple[str, str]] = {}
    scope_stack: List[str] = []
    for line in lines:
        match = _VAR.search(line)
        if match:
            width, code, name = match.group(1), match.group(2), match.group(3)
            if int(width) != 1:
                raise VcdError(
                    f"only scalar (1-bit) signals are supported, {name!r} "
                    f"has width {width}"
                )
            if code not in declarations:
                name = name.strip()
                declarations[code] = (".".join(scope_stack + [name]), name)
            continue
        scope = _SCOPE.search(line)
        if scope:
            scope_stack.append(scope.group(1))
            continue
        if "$upscope" in line:
            if scope_stack:
                scope_stack.pop()
            continue
        if "$enddefinitions" in line:
            break
    return declarations


def _resolve_names(declarations: Mapping[str, Tuple[str, str]]) -> Dict[str, str]:
    """Resolve output names: bare when unique, dotted scope paths otherwise."""
    bare_counts: Dict[str, int] = {}
    for path, bare in declarations.values():
        bare_counts[bare] = bare_counts.get(bare, 0) + 1
    code_to_name: Dict[str, str] = {}
    resolved_names = set()
    for code, (path, bare) in declarations.items():
        resolved = bare if bare_counts[bare] == 1 else path
        if resolved in resolved_names:
            raise VcdError(
                f"duplicate VCD variable {resolved!r}: two $var declarations "
                f"share both name and scope"
            )
        resolved_names.add(resolved)
        code_to_name[code] = resolved
    return code_to_name


class _ChangeScanner:
    """Streaming scanner over the dump section.

    Feeds ``(code, time, value)`` changes for declared codes to a callback
    via :meth:`pump`, which consumes lines until the timeline reaches a
    target time (all changes strictly before it have then been seen, for a
    well-formed monotonic dump) or EOF.
    """

    def __init__(self, lines: Iterator[str], codes: frozenset) -> None:
        self._lines = lines
        self._codes = codes
        self.current_time = 0
        self.exhausted = False

    def pump(self, until: Optional[int], sink: Callable[[str, int, int], None]) -> None:
        """Consume lines, calling ``sink(code, time, value)`` per change.

        Stops once a ``#T`` marker with ``T >= until`` is read (that marker
        still updates :attr:`current_time`) or at EOF; ``until=None`` drains
        the whole dump.
        """
        if self.exhausted:
            return
        if until is not None and self.current_time >= until:
            return
        for line in self._lines:
            time_match = _TIME.match(line)
            if time_match:
                self.current_time = int(time_match.group(1))
                if until is not None and self.current_time >= until:
                    return
                continue
            vector = _VECTOR.match(line)
            if vector:
                bits, code = vector.group(1), vector.group(2)
                if code in self._codes:
                    sink(code, self.current_time, _vector_bit(bits))
                continue
            if line.startswith("$"):
                continue
            scalar = _SCALAR.match(line)
            if scalar:
                value_char, code = scalar.group(1), scalar.group(2)
                if code in self._codes:
                    sink(code, self.current_time, 1 if value_char == "1" else 0)
        self.exhausted = True


class _NetAccumulator:
    """Folds a signal's raw VCD changes into collapsed toggle times.

    Reproduces :meth:`Waveform.from_changes` semantics online: the first
    change establishes the initial value (with an implicit ``(0, 0)`` when
    it arrives later than time 0), repeated values collapse, and a
    non-advancing time with a *different* value is an error.  ``toggles``
    then holds the real transitions, strictly increasing.
    """

    __slots__ = ("established", "initial", "last_value", "last_time", "toggles")

    def __init__(self) -> None:
        self.established = False
        self.initial = 0
        self.last_value = 0
        self.last_time = 0
        self.toggles: Deque[int] = deque()

    def apply(self, time: int, value: int) -> bool:
        """Apply one raw change; return True when a real toggle was added."""
        if not self.established:
            self.established = True
            if time == 0:
                self.initial = value
                self.last_value = value
                self.last_time = 0
                return False
            # First change after time 0: the signal is 0 until then
            # (parse_vcd's implicit (0, 0) entry); fall through so the
            # change itself is examined as a potential toggle.
            self.initial = 0
            self.last_value = 0
            self.last_time = 0
        if value == self.last_value:
            return False
        if time <= self.last_time:
            raise WaveformError(
                f"change times must be strictly increasing, got {time} after "
                f"{self.last_time}"
            )
        self.toggles.append(time)
        self.last_value = value
        self.last_time = time
        return True

    def waveform(self) -> Waveform:
        if not self.established:
            return Waveform.constant(0)
        return Waveform.from_toggle_array(self.initial, list(self.toggles))


def _parse_lines(lines: Iterator[str]) -> Dict[str, Waveform]:
    """Shared core of :func:`parse_vcd` / :func:`read_vcd`."""
    declarations = _parse_definitions(lines)
    code_to_name = _resolve_names(declarations)
    accumulators: Dict[str, _NetAccumulator] = {
        code: _NetAccumulator() for code in code_to_name
    }
    scanner = _ChangeScanner(lines, frozenset(code_to_name))
    scanner.pump(None, lambda code, time, value: accumulators[code].apply(time, value))
    return {
        code_to_name[code]: accumulator.waveform()
        for code, accumulator in accumulators.items()
    }


def parse_vcd(text: str) -> Dict[str, Waveform]:
    """Parse scalar signals from VCD text into waveforms.

    ``x``/``z`` values are mapped to 0 (GATSPI is a 2-value simulator, and
    re-simulation for power rarely encounters unknowns, as the paper notes).

    Value changes are accepted in both forms the VCD grammar allows for
    1-bit variables: the compact scalar form (``1<code>``) and the
    vector form (``b1 <code>``) that many real tools emit.  Variables are
    keyed by their declared name when that name is unique; two ``$var``
    declarations sharing a name in *different* scopes are disambiguated by
    their dotted scope path (``top.u0.clk`` / ``top.u1.clk``) instead of
    being silently merged into one interleaved change list.  A repeated
    ``$var`` for an identifier code already seen is the VCD aliasing idiom
    (one signal visible in several scopes) and maps to the first declared
    name.
    """
    return _parse_lines(_iter_lines(io.StringIO(text)))


def read_vcd(path: str) -> Dict[str, Waveform]:
    """Parse a VCD file with memory bounded by the tokenizer chunk size.

    Behaviour is identical to ``parse_vcd(open(path).read())``, but the
    text is never slurped: lines stream through the incremental tokenizer
    and changes fold directly into per-signal toggle accumulators.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return _parse_lines(_iter_lines(handle))


# ----------------------------------------------------------------------
# Streaming event source (out-of-core replay)
# ----------------------------------------------------------------------
class VcdEventStream(StreamingSourceEvents):
    """Stream a VCD dump as window-span :class:`SourceEvents` chunks.

    The definitions section is parsed eagerly (it is tiny); the dump
    section is consumed lazily as :meth:`span_events` advances, so memory
    holds only the un-retired toggle buffers — O(span + lookback), never
    O(run length).  Scope/alias/name-resolution semantics are exactly
    :func:`parse_vcd`'s; signals in the file but not in ``nets`` are
    skipped at the tokenizer level.

    Streaming adds one restriction over whole-file parsing: a change whose
    (collapsed) toggle time lands strictly before a span already served
    raises :class:`VcdError`, because that span's events were final.  A
    well-formed monotonic dump never triggers this.
    """

    def __init__(
        self,
        source: "str | IO[str]",
        nets: Optional[Sequence[str]] = None,
        chunk_chars: int = _CHUNK_CHARS,
    ) -> None:
        if isinstance(source, str):
            self._handle: Optional[IO[str]] = open(source, "r", encoding="utf-8")
            lines = _iter_lines(self._handle, chunk_chars)
        else:
            self._handle = None
            lines = _iter_lines(source, chunk_chars)
        declarations = _parse_definitions(lines)
        code_to_name = _resolve_names(declarations)
        if nets is None:
            nets = list(code_to_name.values())
        self._nets: Tuple[str, ...] = tuple(nets)
        available = set(code_to_name.values())
        missing = [net for net in self._nets if net not in available]
        if missing:
            raise VcdError(
                f"VCD declares no signal for requested nets: {sorted(missing)[:10]}"
            )
        index = {name: i for i, name in enumerate(self._nets)}
        self._code_index: Dict[str, int] = {
            code: index[name]
            for code, name in code_to_name.items()
            if name in index
        }
        self._states: List[_NetAccumulator] = [
            _NetAccumulator() for _ in self._nets
        ]
        #: Parity of the retired toggles per net; each net's value at the
        #: retired frontier is ``state.initial ^ retired_parity``.
        self._retired_parity: List[int] = [0 for _ in self._nets]
        self._retired_until = 0
        self._served_until = 0
        self._scanner = _ChangeScanner(lines, frozenset(self._code_index))

    # -- StreamingSourceEvents interface --------------------------------
    @property
    def nets(self) -> Tuple[str, ...]:
        return self._nets

    def span_events(
        self, start: int, end: int, retire_before: int = 0
    ) -> SourceEvents:
        if end <= start:
            raise ValueError("span end must be after span start")
        if start < self._retired_until:
            raise ValueError(
                f"span start {start} precedes the retired frontier "
                f"{self._retired_until}; spans must advance monotonically"
            )
        self._pump(end)
        self._served_until = max(self._served_until, end)
        hnp = HOST
        N = len(self._nets)
        initial_values = hnp.zeros(N, dtype=hnp.int64)
        offsets = hnp.zeros(N + 1, dtype=hnp.int64)
        chunks: List[List[int]] = []
        for i, state in enumerate(self._states):
            buffer = list(state.toggles)
            lo = bisect_right(buffer, start)
            hi = bisect_left(buffer, end)
            initial_values[i] = (
                state.initial ^ self._retired_parity[i] ^ (lo & 1)
            )
            span = buffer[lo:hi]
            chunks.append(span)
            offsets[i + 1] = offsets[i] + len(span)
        times = (
            hnp.asarray([t for span in chunks for t in span], dtype=hnp.int64)
            if int(offsets[-1])
            else hnp.zeros(0, dtype=hnp.int64)
        )
        if retire_before > self._retired_until:
            self._retire(retire_before)
        return SourceEvents(
            nets=self._nets,
            times=times,
            offsets=offsets,
            initial_values=initial_values,
        )

    # -- internals ------------------------------------------------------
    def _sink(self, code: str, time: int, value: int) -> None:
        i = self._code_index[code]
        state = self._states[i]
        was_established = state.established
        appended = state.apply(time, value)
        if appended:
            if time < self._served_until:
                raise VcdError(
                    f"VCD change at time {time} arrived after the stream "
                    f"served events up to {self._served_until}; "
                    "timestamps must be monotonic for streaming"
                )
        elif not was_established and state.initial == 1 and self._served_until > 0:
            raise VcdError(
                "VCD initial value at time 0 arrived after the stream "
                f"served events up to {self._served_until}; "
                "timestamps must be monotonic for streaming"
            )

    def _pump(self, until: int) -> None:
        self._scanner.pump(until, self._sink)

    def _retire(self, frontier: int) -> None:
        """Fold toggles ``<= frontier`` into the base values and drop them."""
        for i, state in enumerate(self._states):
            buffer = state.toggles
            flips = 0
            while buffer and buffer[0] <= frontier:
                buffer.popleft()
                flips ^= 1
            self._retired_parity[i] ^= flips
        self._retired_until = frontier

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "VcdEventStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
