"""SAIF (Switching Activity Interchange Format) writer and reader.

GATSPI's deliverable for downstream power analysis is an industry-standard
SAIF file containing per-net ``T0`` / ``T1`` / ``TC`` (time at 0, time at 1,
toggle count).  The reader exists so the correctness check the paper uses —
comparing the SAIF produced by GATSPI against the commercial simulator's —
can be reproduced verbatim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.results import SimulationResult
from ..core.waveform import Waveform


@dataclass(frozen=True)
class NetActivity:
    """Switching activity of one net over the SAIF duration."""

    t0: int
    t1: int
    tc: int

    @property
    def static_probability(self) -> float:
        total = self.t0 + self.t1
        if total == 0:
            return 0.0
        return self.t1 / total

    def toggle_rate(self, duration: int) -> float:
        if duration == 0:
            return 0.0
        return self.tc / duration


def activity_from_result(
    result: SimulationResult, duration: Optional[int] = None
) -> Dict[str, NetActivity]:
    """Derive per-net SAIF activity from a simulation result.

    When full waveforms are stored, T0/T1 come from measured durations;
    otherwise the toggle counts are reported with a 50/50 duty estimate.
    """
    duration = duration or result.duration
    activities: Dict[str, NetActivity] = {}
    for net, count in result.toggle_counts.items():
        wave = result.waveforms.get(net)
        if wave is not None:
            t1 = wave.duration_at(1, 0, duration)
            t0 = duration - t1
        else:
            t0 = duration // 2
            t1 = duration - t0
        activities[net] = NetActivity(t0=t0, t1=t1, tc=count)
    return activities


def write_saif(
    activities: Mapping[str, NetActivity],
    duration: int,
    design: str = "top",
    timescale: str = "1ps",
) -> str:
    """Render per-net activity as SAIF text."""
    lines = [
        "(SAIFILE",
        '  (SAIFVERSION "2.0")',
        '  (DIRECTION "backward")',
        f"  (DURATION {duration})",
        f'  (TIMESCALE {timescale})',
        f'  (DESIGN "{design}")',
        "  (INSTANCE top",
        "    (NET",
    ]
    for net in sorted(activities):
        activity = activities[net]
        lines.append(f"      ({_escape(net)}")
        lines.append(
            f"        (T0 {activity.t0}) (T1 {activity.t1}) (TX 0) "
            f"(TC {activity.tc}) (IG 0)"
        )
        lines.append("      )")
    lines.extend(["    )", "  )", ")"])
    return "\n".join(lines) + "\n"


def _escape(name: str) -> str:
    if re.search(r"[\[\]]", name):
        return f"\\{name} "
    return name


def saif_from_result(
    result: SimulationResult, design: str = "top"
) -> str:
    """Produce SAIF text directly from a simulation result."""
    activities = activity_from_result(result)
    return write_saif(activities, duration=result.duration, design=design)


def saif_from_activities(
    activities: Mapping[str, NetActivity], duration: int, design: str = "top"
) -> str:
    """Produce SAIF text from pre-computed per-net activity.

    This is the streaming-run companion of :func:`saif_from_result`: an
    online accumulator (``StreamingActivityAccumulator``) supplies the
    activities and the shared :func:`write_saif` renderer guarantees the
    output is byte-identical to the whole-run path for identical totals.
    """
    return write_saif(activities, duration=duration, design=design)


def save_saif(result: SimulationResult, path: str, design: str = "top") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(saif_from_result(result, design=design))


_NET_ENTRY = re.compile(
    r"\(\s*(\\?[\w\[\].$/]+)\s*\r?\n?\s*"
    r"\(T0\s+(\d+)\)\s*\(T1\s+(\d+)\)\s*\(TX\s+(\d+)\)\s*\(TC\s+(\d+)\)"
)
_DURATION = re.compile(r"\(DURATION\s+(\d+)\)")


@dataclass
class SaifData:
    """Parsed contents of a SAIF file."""

    duration: int
    nets: Dict[str, NetActivity]

    def toggle_counts(self) -> Dict[str, int]:
        return {net: activity.tc for net, activity in self.nets.items()}


def parse_saif(text: str) -> SaifData:
    """Parse the NET section of a SAIF file."""
    duration_match = _DURATION.search(text)
    duration = int(duration_match.group(1)) if duration_match else 0
    nets: Dict[str, NetActivity] = {}
    for match in _NET_ENTRY.finditer(text):
        name = match.group(1).lstrip("\\").strip()
        nets[name] = NetActivity(
            t0=int(match.group(2)),
            t1=int(match.group(3)),
            tc=int(match.group(5)),
        )
    return SaifData(duration=duration, nets=nets)


def read_saif(path: str) -> SaifData:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_saif(handle.read())


def saif_files_match(first: SaifData, second: SaifData) -> bool:
    """The paper's accuracy check: equal toggle counts for every common net."""
    common = set(first.nets) & set(second.nets)
    return all(first.nets[n].tc == second.nets[n].tc for n in common)
