"""Power analysis: activity metrics, power model, glitch analysis."""

from .activity import (
    ActivitySummary,
    StreamResult,
    StreamingActivityAccumulator,
    events_per_gate,
    static_probabilities,
    summarize_activity,
    toggle_rates,
)
from .power_model import NetPowerDetail, PowerModel, PowerParameters, PowerReport
from .glitch import GlitchReport, NetGlitchInfo, analyze_glitches

__all__ = [
    "ActivitySummary",
    "StreamResult",
    "StreamingActivityAccumulator",
    "events_per_gate",
    "static_probabilities",
    "summarize_activity",
    "toggle_rates",
    "NetPowerDetail",
    "PowerModel",
    "PowerParameters",
    "PowerReport",
    "GlitchReport",
    "NetGlitchInfo",
    "analyze_glitches",
]
