"""Switching-activity metrics derived from simulation results.

These are the quantities quoted in the paper's benchmark table (Table 2):
the activity factor of a testbench, per-net toggle rates, and event totals
that determine how much work the re-simulation kernels perform.

For out-of-core streaming runs (:meth:`Session.run_stream`) the full-run
waveforms never exist, so SAIF activity cannot be derived after the fact
from a :class:`SimulationResult`.  :class:`StreamingActivityAccumulator`
folds each :class:`~repro.core.results.StreamBatch` into running per-net
T0/T1/TC totals as chunks retire, reproducing the whole-run
``stitch_windows`` → ``Waveform.duration_at`` pipeline bit-exactly without
ever materialising a waveform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.results import (
    PhaseTimings,
    SimulationResult,
    SimulationStats,
    StreamBatch,
)
from ..core.waveform import Waveform
from ..core.xp import HOST
from ..netlist import Netlist
from ..waveforms.saif import NetActivity, write_saif


@dataclass(frozen=True)
class ActivitySummary:
    """Aggregate activity statistics of one simulation."""

    total_toggles: int
    gate_output_toggles: int
    source_toggles: int
    cycles: int
    gate_count: int
    duration: int

    @property
    def activity_factor(self) -> float:
        """Toggles per combinational gate per cycle (Table 2's definition)."""
        if self.gate_count == 0 or self.cycles == 0:
            return 0.0
        return self.gate_output_toggles / (self.gate_count * self.cycles)

    @property
    def average_toggle_rate(self) -> float:
        """Toggles per time unit across the whole design."""
        if self.duration == 0:
            return 0.0
        return self.total_toggles / self.duration


def summarize_activity(
    netlist: Netlist, result: SimulationResult, cycles: int
) -> ActivitySummary:
    """Compute the activity summary for one simulation result."""
    sources = set(netlist.source_nets())
    source_toggles = sum(
        count for net, count in result.toggle_counts.items() if net in sources
    )
    gate_toggles = sum(
        count for net, count in result.toggle_counts.items() if net not in sources
    )
    return ActivitySummary(
        total_toggles=source_toggles + gate_toggles,
        gate_output_toggles=gate_toggles,
        source_toggles=source_toggles,
        cycles=cycles,
        gate_count=netlist.gate_count,
        duration=result.duration,
    )


def toggle_rates(result: SimulationResult) -> Dict[str, float]:
    """Per-net toggles per time unit."""
    if result.duration == 0:
        return {net: 0.0 for net in result.toggle_counts}
    return {
        net: count / result.duration for net, count in result.toggle_counts.items()
    }


def static_probabilities(
    waveforms: Mapping[str, Waveform], duration: int
) -> Dict[str, float]:
    """Per-net probability of being at logic 1 over ``[0, duration]``."""
    probabilities: Dict[str, float] = {}
    for net, wave in waveforms.items():
        if duration <= 0:
            probabilities[net] = float(wave.initial_value)
            continue
        probabilities[net] = wave.duration_at(1, 0, duration) / duration
    return probabilities


class StreamingActivityAccumulator:
    """Online per-net SAIF accumulation over streaming window batches.

    Consumes the chunk-sized :class:`~repro.core.results.StreamBatch`
    readbacks produced by the engine's streaming driver and maintains, per
    net, exactly the state the whole-run pipeline would have derived from
    the stitched waveform: time at logic 1 (``T1``), the kept-transition
    count (``TC``), and the sequential seam state of
    :func:`~repro.core.restructure.stitch_windows`.  After
    :meth:`finalize`, :meth:`activities`/:meth:`toggle_counts` are
    bit-identical to ``activity_from_result`` on a whole-run result —
    that invariant is what lets ``run_stream`` discard every waveform as
    its chunk retires.

    The common case — every window establishes the value its predecessor
    ended on and times strictly advance — is folded with a handful of
    array operations per batch (a closed-form alternating-sum for the T1
    delta); only rows with seam anomalies or with tail toggles past
    ``duration`` fall back to a per-window loop that replicates the
    stitcher's drop rules verbatim.  Batches must arrive in chunk order.
    """

    def __init__(self, nets: Sequence[str], duration: int) -> None:
        hnp = HOST
        self._nets: Tuple[str, ...] = tuple(nets)
        self._duration = int(duration)
        if len(set(self._nets)) != len(self._nets):
            raise ValueError("accumulator nets must be unique")
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self._nets)}
        n = len(self._nets)
        # stitch_windows sequential seam state, per net.
        self._started = hnp.zeros(n, dtype=bool)
        self._last_time = hnp.zeros(n, dtype=hnp.int64)
        self._last_value = hnp.full(n, -1, dtype=hnp.int64)
        # duration_at(1, 0, duration) machine state, per net.  ``frozen``
        # marks nets whose kept changes ran past ``duration`` (the final
        # window's settle tail): T1 stops there, TC keeps counting.
        self._frozen = hnp.zeros(n, dtype=bool)
        self._tc = hnp.zeros(n, dtype=hnp.int64)
        self._t1 = hnp.zeros(n, dtype=hnp.int64)
        self._t1_time = hnp.zeros(n, dtype=hnp.int64)
        self._t1_value = hnp.zeros(n, dtype=hnp.int64)
        self._row_maps: Dict[Tuple[str, ...], "object"] = {}
        self._finalized = False

    @property
    def duration(self) -> int:
        return self._duration

    @property
    def nets(self) -> Tuple[str, ...]:
        return self._nets

    def add_batch(self, batch: StreamBatch) -> None:
        """Fold one chunk's gate readback and source span into the totals."""
        hnp = HOST
        if self._finalized:
            raise ValueError("accumulator already finalized")
        self._add_windows(
            batch.nets,
            batch.window_starts,
            batch.establish_values,
            batch.toggle_counts,
            batch.times,
        )
        if batch.source_nets:
            # A chunk's source span is one window establishing at
            # chunk_start: seam-consistent with its predecessor by the
            # half-open ownership contract, so it always folds fast.
            starts = hnp.asarray([batch.chunk_start], dtype=hnp.int64)
            self._add_windows(
                batch.source_nets,
                starts,
                batch.source_establish.reshape(-1, 1),
                batch.source_counts.reshape(-1, 1),
                batch.source_times,
            )

    def _rows_for(self, nets: Tuple[str, ...]) -> Any:
        rows = self._row_maps.get(nets)
        if rows is None:
            hnp = HOST
            try:
                rows = hnp.asarray(
                    [self._index[n] for n in nets], dtype=hnp.int64
                )
            except KeyError as exc:
                raise ValueError(
                    f"batch net {exc.args[0]!r} not registered with the "
                    f"accumulator"
                ) from exc
            self._row_maps[nets] = rows
        return rows

    def _add_windows(
        self,
        nets: Sequence[str],
        window_starts: Any,
        establish: Any,
        counts: Any,
        times: Any,
    ) -> None:
        hnp = HOST
        rows = self._rows_for(tuple(nets))
        n = len(nets)
        B = int(window_starts.size)
        if n == 0 or B == 0:
            return
        row_counts = counts.sum(axis=1)
        total = int(times.size)
        finals = establish ^ (counts & 1)
        offsets = hnp.zeros(n + 1, dtype=hnp.int64)
        offsets[1:] = hnp.cumsum(row_counts)
        # --- per-row fast-path eligibility --------------------------------
        # A row folds in closed form when its kept sequence is exactly
        # "establishment + every toggle": internal seams consistent, times
        # strictly ascending, the first toggle past the carried seam state,
        # and the row's establishment continuing the carried value.
        if B > 1:
            seam_ok = (establish[:, 1:] != finals[:, :-1]).sum(axis=1) == 0
        else:
            seam_ok = hnp.ones(n, dtype=bool)
        has = row_counts > 0
        inc_ok = hnp.ones(n, dtype=bool)
        over = hnp.zeros(n, dtype=bool)
        if total:
            first_idx = offsets[:-1].copy()
            last_idx = offsets[1:] - 1
            first_idx[~has] = 0
            last_idx[~has] = 0
            first_times = times[first_idx]
            last_times = times[last_idx]
            row_of = hnp.repeat(hnp.arange(n, dtype=hnp.int64), row_counts)
            if total > 1:
                bad = (hnp.diff(times) <= 0) & (row_of[1:] == row_of[:-1])
                inc_ok[row_of[1:][bad]] = False
            over[row_of[times > self._duration]] = True
        else:
            first_times = hnp.zeros(n, dtype=hnp.int64)
            last_times = hnp.zeros(n, dtype=hnp.int64)
        started = self._started[rows]
        carried_time = self._last_time[rows]
        carried_value = self._last_value[rows]
        entry_ref = hnp.where(started, carried_time, window_starts[0])
        entry_ok = ~has | (first_times > entry_ref)
        continuity_ok = ~started | (establish[:, 0] == carried_value)
        fast = (
            seam_ok
            & inc_ok
            & entry_ok
            & continuity_ok
            & ~over
            & ~self._frozen[rows]
        )
        if bool(fast.any()):
            self._fold_fast(
                rows, fast, window_starts, establish, offsets, row_counts,
                times, finals, has, started, carried_time, last_times,
            )
        if not bool(fast.all()):
            slow = hnp.nonzero(~fast)[0]
            for idx in slow.tolist():
                lo = int(offsets[idx])
                hi = int(offsets[idx + 1])
                self._fold_slow_row(
                    int(rows[idx]),
                    window_starts,
                    establish[idx],
                    counts[idx],
                    times[lo:hi],
                )

    def _fold_fast(
        self,
        rows: Any,
        fast: Any,
        window_starts: Any,
        establish: Any,
        offsets: Any,
        row_counts: Any,
        times: Any,
        finals: Any,
        has: Any,
        started: Any,
        carried_time: Any,
        last_times: Any,
    ) -> None:
        hnp = HOST
        total = int(times.size)
        # T1 delta of a kept toggle train u_1..u_k entering at value w0 from
        # kept-change time c:  (2*w0 - 1) * sum_j (-1)^(j-1) u_j  -  c*w0  +
        # u_k * (w0 ^ (k&1))  — the telescoped sum of the value-1 intervals.
        if total:
            local = hnp.arange(total, dtype=hnp.int64) - hnp.repeat(
                offsets[:-1], row_counts
            )
            cumulative = hnp.zeros(total + 1, dtype=hnp.int64)
            cumulative[1:] = hnp.cumsum(times * (1 - 2 * (local & 1)))
            alternating = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
        else:
            alternating = hnp.zeros(len(rows), dtype=hnp.int64)
        w0 = establish[:, 0]
        w_final = w0 ^ (row_counts & 1)
        entry_time = hnp.where(started, self._t1_time[rows], 0)
        delta = (2 * w0 - 1) * alternating - entry_time * w0 + last_times * w_final
        delta = hnp.where(has, delta, 0)
        # An unstarted row keeps its first establishment: the value holds
        # from time 0 (waveform establishment semantics) and counts one
        # kept entry.  Rows with no toggles otherwise leave the T1 machine
        # untouched; the stitcher's `continue` on fully-dropped windows
        # likewise leaves seam state parked on the last non-empty window.
        new_t1_time = hnp.where(
            has, last_times, hnp.where(started, self._t1_time[rows], 0)
        )
        new_t1_value = hnp.where(
            has, w_final, hnp.where(started, self._t1_value[rows], w0)
        )
        new_last_time = hnp.where(
            has, last_times, hnp.where(started, carried_time, window_starts[0])
        )
        target = rows[fast]
        self._t1[target] += delta[fast]
        self._t1_time[target] = new_t1_time[fast]
        self._t1_value[target] = new_t1_value[fast]
        self._last_time[target] = new_last_time[fast]
        self._last_value[target] = w_final[fast]
        self._tc[target] += row_counts[fast] + hnp.where(started[fast], 0, 1)
        self._started[target] = True

    def _fold_slow_row(
        self,
        r: int,
        window_starts: Any,
        establish_r: Any,
        counts_r: Any,
        times_r: Any,
    ) -> None:
        """Replicate ``stitch_windows``' sequential seam rules for one net."""
        hnp = HOST
        last_time = int(self._last_time[r])
        last_value = int(self._last_value[r])
        started = bool(self._started[r])
        offset = 0
        for w in range(int(window_starts.size)):
            count = int(counts_r[w])
            seg = times_r[offset : offset + count]
            offset += count
            t0 = int(window_starts[w])
            v0 = int(establish_r[w])
            if (not started) or (v0 != last_value and t0 > last_time):
                if started:
                    self._change(r, t0, v0)
                else:
                    started = True
                    self._t1_value[r] = v0
                    self._t1_time[r] = 0
                self._tc[r] += 1 + count
                value = v0
                for t in seg.tolist():
                    value ^= 1
                    self._change(r, int(t), value)
            else:
                i = int(hnp.searchsorted(seg, last_time, side="right"))
                if i < count and (v0 ^ ((i + 1) & 1)) == last_value:
                    i += 1
                if i >= count:
                    continue
                self._tc[r] += count - i
                value = v0 ^ (i & 1)
                for t in seg[i:].tolist():
                    value ^= 1
                    self._change(r, int(t), value)
            last_time = int(seg[-1]) if count else t0
            last_value = v0 ^ (count & 1)
        self._last_time[r] = last_time
        self._last_value[r] = last_value
        self._started[r] = started

    def _change(self, r: int, t: int, value: int) -> None:
        """One kept change through the ``duration_at(1, 0, duration)`` machine."""
        if bool(self._frozen[r]):
            return
        if t > self._duration:
            self._frozen[r] = True
            return
        if int(self._t1_value[r]) == 1:
            self._t1[r] += t - int(self._t1_time[r])
        self._t1_time[r] = t
        self._t1_value[r] = value

    def finalize(self) -> Dict[str, NetActivity]:
        """Close the accounting interval at ``duration`` and report.

        Idempotent once called; further :meth:`add_batch` calls are
        rejected.  A net that never appeared in any batch reports as
        constant-0 (``t0 = duration``).
        """
        if not self._finalized:
            self._finalized = True
            duration = self._duration
            for i in range(len(self._nets)):
                if bool(self._started[i]) and int(self._t1_value[i]) == 1:
                    self._t1[i] += duration - int(self._t1_time[i])
        return self.activities()

    def activities(self) -> Dict[str, NetActivity]:
        if not self._finalized:
            raise ValueError("finalize() the accumulator before reading it")
        duration = self._duration
        out: Dict[str, NetActivity] = {}
        for i, net in enumerate(self._nets):
            if not bool(self._started[i]):
                out[net] = NetActivity(t0=duration, t1=0, tc=0)
                continue
            t1 = int(self._t1[i])
            out[net] = NetActivity(
                t0=duration - t1, t1=t1, tc=int(self._tc[i]) - 1
            )
        return out

    def toggle_counts(self) -> Dict[str, int]:
        """Per-net kept-transition counts (the whole-run ``toggle_counts``)."""
        counts: Dict[str, int] = {}
        for i, net in enumerate(self._nets):
            counts[net] = int(self._tc[i]) - 1 if bool(self._started[i]) else 0
        return counts


@dataclass
class StreamResult:
    """Outcome of one out-of-core streaming run (:meth:`Session.run_stream`).

    The streaming driver never materialises full-run waveforms, so unlike
    :class:`~repro.core.results.SimulationResult` this carries the online
    activity totals instead: per-net toggle counts and SAIF T0/T1/TC,
    bit-identical to what the whole-run pipeline would have reported.
    """

    duration: int
    toggle_counts: Dict[str, int] = field(default_factory=dict)
    activities: Dict[str, NetActivity] = field(default_factory=dict)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    stats: SimulationStats = field(default_factory=SimulationStats)
    #: Final register state of a streamed clocked run (instance name ->
    #: 0/1), set by ``run_cycles_stream``; ``None`` for combinational runs.
    register_state: Optional[Dict[str, int]] = None

    def total_toggles(self) -> int:
        return sum(self.toggle_counts.values())

    def toggle_count(self, net: str) -> int:
        return self.toggle_counts.get(net, 0)

    def activity_factor(self) -> float:
        return self.stats.activity_factor()

    def saif(self, design: str = "top") -> str:
        """SAIF text; byte-identical to ``saif_from_result`` on a whole run."""
        return write_saif(self.activities, duration=self.duration, design=design)


def events_per_gate(netlist: Netlist, result: SimulationResult) -> Dict[str, int]:
    """Input events each combinational gate processes (workload balance).

    The paper's OpenMP and GPU profiling discussions hinge on how unevenly
    these are distributed across gates.
    """
    events: Dict[str, int] = {}
    for inst in netlist.combinational_instances():
        events[inst.name] = sum(
            result.toggle_counts.get(net, 0) for net in inst.input_nets()
        )
    return events
