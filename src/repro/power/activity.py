"""Switching-activity metrics derived from simulation results.

These are the quantities quoted in the paper's benchmark table (Table 2):
the activity factor of a testbench, per-net toggle rates, and event totals
that determine how much work the re-simulation kernels perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.results import SimulationResult
from ..core.waveform import Waveform
from ..netlist import Netlist


@dataclass(frozen=True)
class ActivitySummary:
    """Aggregate activity statistics of one simulation."""

    total_toggles: int
    gate_output_toggles: int
    source_toggles: int
    cycles: int
    gate_count: int
    duration: int

    @property
    def activity_factor(self) -> float:
        """Toggles per combinational gate per cycle (Table 2's definition)."""
        if self.gate_count == 0 or self.cycles == 0:
            return 0.0
        return self.gate_output_toggles / (self.gate_count * self.cycles)

    @property
    def average_toggle_rate(self) -> float:
        """Toggles per time unit across the whole design."""
        if self.duration == 0:
            return 0.0
        return self.total_toggles / self.duration


def summarize_activity(
    netlist: Netlist, result: SimulationResult, cycles: int
) -> ActivitySummary:
    """Compute the activity summary for one simulation result."""
    sources = set(netlist.source_nets())
    source_toggles = sum(
        count for net, count in result.toggle_counts.items() if net in sources
    )
    gate_toggles = sum(
        count for net, count in result.toggle_counts.items() if net not in sources
    )
    return ActivitySummary(
        total_toggles=source_toggles + gate_toggles,
        gate_output_toggles=gate_toggles,
        source_toggles=source_toggles,
        cycles=cycles,
        gate_count=netlist.gate_count,
        duration=result.duration,
    )


def toggle_rates(result: SimulationResult) -> Dict[str, float]:
    """Per-net toggles per time unit."""
    if result.duration == 0:
        return {net: 0.0 for net in result.toggle_counts}
    return {
        net: count / result.duration for net, count in result.toggle_counts.items()
    }


def static_probabilities(
    waveforms: Mapping[str, Waveform], duration: int
) -> Dict[str, float]:
    """Per-net probability of being at logic 1 over ``[0, duration]``."""
    probabilities: Dict[str, float] = {}
    for net, wave in waveforms.items():
        if duration <= 0:
            probabilities[net] = float(wave.initial_value)
            continue
        probabilities[net] = wave.duration_at(1, 0, duration) / duration
    return probabilities


def events_per_gate(netlist: Netlist, result: SimulationResult) -> Dict[str, int]:
    """Input events each combinational gate processes (workload balance).

    The paper's OpenMP and GPU profiling discussions hinge on how unevenly
    these are distributed across gates.
    """
    events: Dict[str, int] = {}
    for inst in netlist.combinational_instances():
        events[inst.name] = sum(
            result.toggle_counts.get(net, 0) for net in inst.input_nets()
        )
    return events
