"""Glitch activity analysis.

A *glitch* is a transition that delay-aware simulation records but zero-delay
(purely functional) simulation does not: it exists only because inputs of a
gate arrive at different times.  Glitch toggles burn real power without doing
useful work, which is why the paper's deployment target is a glitch-power
optimization flow.

The analysis compares a delay-annotated simulation result against a
zero-delay result on the same stimulus and ranks nets/gates by wasted
(glitch) power — the designer-facing report that drives the fixing
transformations in :mod:`repro.opt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..core.results import SimulationResult
from ..netlist import Netlist, PORT
from .power_model import PowerModel, PowerReport


@dataclass
class NetGlitchInfo:
    """Glitch statistics for one net."""

    net: str
    delay_toggles: int
    functional_toggles: int
    glitch_power_w: float = 0.0

    @property
    def glitch_toggles(self) -> int:
        return max(0, self.delay_toggles - self.functional_toggles)

    @property
    def glitch_ratio(self) -> float:
        if self.delay_toggles == 0:
            return 0.0
        return self.glitch_toggles / self.delay_toggles


@dataclass
class GlitchReport:
    """Design-level glitch analysis."""

    nets: Dict[str, NetGlitchInfo] = field(default_factory=dict)
    total_power: Optional[PowerReport] = None

    @property
    def total_glitch_toggles(self) -> int:
        return sum(info.glitch_toggles for info in self.nets.values())

    @property
    def total_toggles(self) -> int:
        return sum(info.delay_toggles for info in self.nets.values())

    @property
    def glitch_toggle_fraction(self) -> float:
        total = self.total_toggles
        if total == 0:
            return 0.0
        return self.total_glitch_toggles / total

    @property
    def glitch_power_w(self) -> float:
        return sum(info.glitch_power_w for info in self.nets.values())

    @property
    def glitch_power_fraction(self) -> float:
        if self.total_power is None or self.total_power.total_w == 0:
            return 0.0
        return self.glitch_power_w / self.total_power.total_w

    def worst_nets(self, count: int = 20) -> List[NetGlitchInfo]:
        """Nets ranked by glitch power — the glitch-fixing candidates."""
        ordered = sorted(
            self.nets.values(), key=lambda info: info.glitch_power_w, reverse=True
        )
        return [info for info in ordered if info.glitch_toggles > 0][:count]

    def worst_driver_gates(self, netlist: Netlist, count: int = 20) -> List[str]:
        """Instance names driving the worst glitching nets."""
        gates: List[str] = []
        for info in self.worst_nets(count * 2):
            driver = netlist.nets[info.net].driver
            if driver is not None and driver[0] != PORT:
                gates.append(driver[0])
            if len(gates) >= count:
                break
        return gates


def analyze_glitches(
    netlist: Netlist,
    delay_result: SimulationResult,
    functional_toggle_counts: Mapping[str, int],
    power_model: Optional[PowerModel] = None,
) -> GlitchReport:
    """Compare delay-aware and functional activity; attribute glitch power.

    Glitch power of a net is the fraction of its dynamic power carried by its
    glitch toggles.
    """
    power_model = power_model or PowerModel(netlist)
    power_report = power_model.compute_from_result(delay_result)
    report = GlitchReport(total_power=power_report)
    for net, delay_toggles in delay_result.toggle_counts.items():
        if net not in netlist.nets:
            continue
        functional = int(functional_toggle_counts.get(net, 0))
        info = NetGlitchInfo(
            net=net,
            delay_toggles=int(delay_toggles),
            functional_toggles=functional,
        )
        detail = power_report.per_net.get(net)
        if detail is not None and detail.toggle_count > 0:
            info.glitch_power_w = detail.dynamic_w * (
                info.glitch_toggles / detail.toggle_count
            )
        report.nets[net] = info
    return report
