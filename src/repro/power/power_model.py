"""Gate-level power model driven by switching activity (SAIF).

This is the downstream consumer of GATSPI's output in the paper's flow
("To Power Analysis" in Fig. 2): given per-net toggle counts over a known
duration, it computes switching, internal, and leakage power from the cell
library's electrical data.  The absolute numbers are representative, not
foundry-accurate; what matters for reproducing the paper's glitch-flow result
is that power is proportional to toggle counts, so removing glitch toggles
produces a faithful relative saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..core.results import SimulationResult
from ..netlist import Netlist, PORT


@dataclass(frozen=True)
class PowerParameters:
    """Electrical environment for power computation."""

    vdd: float = 0.8          # volts
    time_unit_s: float = 1e-12  # library delays/timestamps are in picoseconds
    wire_cap_per_fanout_ff: float = 0.35


@dataclass
class NetPowerDetail:
    """Per-net contribution breakdown."""

    net: str
    toggle_count: int
    load_cap_ff: float
    switching_w: float
    internal_w: float

    @property
    def dynamic_w(self) -> float:
        return self.switching_w + self.internal_w


@dataclass
class PowerReport:
    """Design-level power report."""

    switching_w: float = 0.0
    internal_w: float = 0.0
    leakage_w: float = 0.0
    duration: int = 0
    per_net: Dict[str, NetPowerDetail] = field(default_factory=dict)

    @property
    def dynamic_w(self) -> float:
        return self.switching_w + self.internal_w

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    def top_nets(self, count: int = 10) -> list:
        """Highest dynamic-power nets (candidates for glitch fixing)."""
        ordered = sorted(
            self.per_net.values(), key=lambda d: d.dynamic_w, reverse=True
        )
        return ordered[:count]

    def summary(self) -> Dict[str, float]:
        return {
            "switching_w": self.switching_w,
            "internal_w": self.internal_w,
            "leakage_w": self.leakage_w,
            "dynamic_w": self.dynamic_w,
            "total_w": self.total_w,
        }


class PowerModel:
    """Activity-driven power calculator for one netlist."""

    def __init__(self, netlist: Netlist, parameters: Optional[PowerParameters] = None):
        self.netlist = netlist
        self.parameters = parameters or PowerParameters()
        self._load_caps = self._compute_load_caps()
        self._leakage_w = self._compute_leakage()

    def _compute_load_caps(self) -> Dict[str, float]:
        """Total capacitance (fF) switched when each net toggles."""
        caps: Dict[str, float] = {}
        params = self.parameters
        for name, net in self.netlist.nets.items():
            cap = 0.0
            for owner, pin in net.loads:
                if owner == PORT:
                    cap += 2.0  # nominal output-port load
                    continue
                inst = self.netlist.instances[owner]
                cap += inst.cell.power.input_cap_ff
            if net.driver is not None and net.driver[0] != PORT:
                driver = self.netlist.instances[net.driver[0]]
                cap += driver.cell.power.output_cap_ff
            cap += params.wire_cap_per_fanout_ff * max(1, net.fanout)
            caps[name] = cap
        return caps

    def _compute_leakage(self) -> float:
        leak_nw = sum(
            inst.cell.power.leakage_nw for inst in self.netlist.instances.values()
        )
        return leak_nw * 1e-9

    @property
    def leakage_w(self) -> float:
        return self._leakage_w

    def net_load_cap(self, net: str) -> float:
        return self._load_caps.get(net, 0.0)

    def compute(
        self,
        toggle_counts: Mapping[str, int],
        duration: int,
    ) -> PowerReport:
        """Compute power from per-net toggle counts over ``duration`` time
        units."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        params = self.parameters
        seconds = duration * params.time_unit_s
        report = PowerReport(duration=duration, leakage_w=self._leakage_w)
        half_vdd_squared = 0.5 * params.vdd * params.vdd
        for net, toggles in toggle_counts.items():
            if net not in self.netlist.nets:
                continue
            load_ff = self._load_caps.get(net, 0.0)
            switching_j = half_vdd_squared * load_ff * 1e-15 * toggles
            internal_j = 0.0
            driver = self.netlist.nets[net].driver
            if driver is not None and driver[0] != PORT:
                cell = self.netlist.instances[driver[0]].cell
                internal_j = cell.power.internal_energy_fj * 1e-15 * toggles
            switching_w = switching_j / seconds
            internal_w = internal_j / seconds
            report.switching_w += switching_w
            report.internal_w += internal_w
            report.per_net[net] = NetPowerDetail(
                net=net,
                toggle_count=int(toggles),
                load_cap_ff=load_ff,
                switching_w=switching_w,
                internal_w=internal_w,
            )
        return report

    def compute_from_result(self, result: SimulationResult) -> PowerReport:
        return self.compute(result.toggle_counts, result.duration)
