"""SDF delay annotation subsystem: parser, writer, netlist annotation."""

from .types import SdfCell, SdfFile, SdfInterconnect, SdfIoPath
from .parser import SdfError, parse_condition, parse_sdf, read_sdf
from .writer import save_sdf, write_sdf
from .annotate import (
    AnnotationError,
    DelayAnnotation,
    annotation_from_design_delays,
    annotation_from_sdf,
    default_annotation,
)
from .delay_model import (
    DesignDelays,
    IntrinsicDelayModel,
    SyntheticDelayModel,
    UnitDelayModel,
)

__all__ = [
    "SdfCell",
    "SdfFile",
    "SdfInterconnect",
    "SdfIoPath",
    "SdfError",
    "parse_condition",
    "parse_sdf",
    "read_sdf",
    "save_sdf",
    "write_sdf",
    "AnnotationError",
    "DelayAnnotation",
    "annotation_from_design_delays",
    "annotation_from_sdf",
    "default_annotation",
    "DesignDelays",
    "IntrinsicDelayModel",
    "SyntheticDelayModel",
    "UnitDelayModel",
]
