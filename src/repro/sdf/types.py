"""Dataclasses describing the SDF constructs GATSPI consumes.

Only the delay-annotation subset that matters for gate-level re-simulation is
modelled: ``IOPATH`` (optionally edge-qualified and ``COND``-qualified) and
``INTERCONNECT`` entries under ``ABSOLUTE`` delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class SdfIoPath:
    """One ``IOPATH`` delay arc.

    ``input_edge`` is ``None``, ``"posedge"`` or ``"negedge"``.  ``rise`` /
    ``fall`` are the output rise/fall delays; ``None`` encodes SDF's empty
    ``()`` value field (leave that edge unspecified).  ``condition`` maps pin
    names to required values for ``COND``-qualified arcs.
    """

    input_pin: str
    output_pin: str
    rise: Optional[float] = None
    fall: Optional[float] = None
    input_edge: Optional[str] = None
    condition: Mapping[str, int] = field(default_factory=dict)

    @property
    def is_conditional(self) -> bool:
        return bool(self.condition)


@dataclass(frozen=True)
class SdfInterconnect:
    """One ``INTERCONNECT`` wire delay from a driver port to a sink port.

    Ports are hierarchical names like ``u12/Y`` or a top-level port name.
    """

    source: str
    destination: str
    rise: float = 0.0
    fall: float = 0.0


@dataclass
class SdfCell:
    """All delay entries for one cell instance."""

    cell_type: str
    instance: str
    iopaths: List[SdfIoPath] = field(default_factory=list)
    interconnects: List[SdfInterconnect] = field(default_factory=list)


@dataclass
class SdfFile:
    """A parsed SDF delay file."""

    design: str = ""
    timescale: str = "1ps"
    cells: List[SdfCell] = field(default_factory=list)
    interconnects: List[SdfInterconnect] = field(default_factory=list)

    def cell_for_instance(self, instance: str) -> Optional[SdfCell]:
        for cell in self.cells:
            if cell.instance == instance:
                return cell
        return None

    def all_interconnects(self) -> List[SdfInterconnect]:
        wires = list(self.interconnects)
        for cell in self.cells:
            wires.extend(cell.interconnects)
        return wires

    def iopath_count(self) -> int:
        return sum(len(cell.iopaths) for cell in self.cells)

    def conditional_iopath_count(self) -> int:
        return sum(
            1 for cell in self.cells for path in cell.iopaths if path.is_conditional
        )
