"""SDF writer for generated benchmark designs.

Emits the same ``IOPATH`` / ``COND`` / ``INTERCONNECT`` subset the parser
consumes, so generated designs can be round-tripped through real SDF text and
exercise the full SDF→LUT translation path of the paper's tool flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.delaytable import DelayArc, InterconnectDelay
from ..netlist import Netlist, PORT
from .delay_model import DesignDelays


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "()"
    if float(value).is_integer():
        return f"({int(value)})"
    return f"({value:.3f})"


def _format_condition(condition: Dict[str, int]) -> str:
    terms = [f"{pin}===1'b{value}" for pin, value in sorted(condition.items())]
    return "&&".join(terms)


def _format_port(pin: str, input_edge: Optional[int]) -> str:
    if input_edge is None:
        return pin
    edge = "posedge" if input_edge == 0 else "negedge"
    return f"({edge} {pin})"


def _iopath_line(arc: DelayArc, output_pin: str) -> str:
    port = _format_port(arc.pin, arc.input_edge)
    rise = _format_value(arc.rise)
    fall = _format_value(arc.fall)
    iopath = f"(IOPATH {port} {output_pin} {rise} {fall})"
    if arc.condition:
        return f"(COND {_format_condition(dict(arc.condition))} {iopath})"
    return iopath


def _source_port(netlist: Netlist, net_name: str) -> str:
    driver = netlist.nets[net_name].driver
    if driver is None or driver[0] == PORT:
        return net_name
    return f"{driver[0]}/{driver[1]}"


def write_sdf(
    netlist: Netlist,
    delays: DesignDelays,
    timescale: str = "1ps",
) -> str:
    """Render a :class:`DesignDelays` bundle as SDF text."""
    lines: List[str] = []
    lines.append("(DELAYFILE")
    lines.append('  (SDFVERSION "3.0")')
    lines.append(f'  (DESIGN "{netlist.name}")')
    lines.append(f"  (TIMESCALE {timescale})")

    # Interconnect delays live in a top-level CELL for the design itself.
    wires: List[Tuple[Tuple[str, str], InterconnectDelay]] = sorted(
        delays.interconnect.items()
    )
    if wires:
        lines.append("  (CELL")
        lines.append(f'    (CELLTYPE "{netlist.name}")')
        lines.append("    (INSTANCE )")
        lines.append("    (DELAY")
        lines.append("      (ABSOLUTE")
        for (instance_name, pin), wire in wires:
            if wire.is_zero():
                continue
            inst = netlist.instances[instance_name]
            source = _source_port(netlist, inst.connections[pin])
            lines.append(
                f"        (INTERCONNECT {source} {instance_name}/{pin} "
                f"{_format_value(wire.rise)} {_format_value(wire.fall)})"
            )
        lines.append("      )")
        lines.append("    )")
        lines.append("  )")

    for instance_name, arcs in sorted(delays.gate_arcs.items()):
        if not arcs:
            continue
        inst = netlist.instances[instance_name]
        lines.append("  (CELL")
        lines.append(f'    (CELLTYPE "{inst.cell_name}")')
        lines.append(f"    (INSTANCE {instance_name})")
        lines.append("    (DELAY")
        lines.append("      (ABSOLUTE")
        for arc in arcs:
            lines.append(f"        {_iopath_line(arc, inst.cell.output)}")
        lines.append("      )")
        lines.append("    )")
        lines.append("  )")

    lines.append(")")
    return "\n".join(lines) + "\n"


def save_sdf(netlist: Netlist, delays: DesignDelays, path: str) -> None:
    """Write SDF text to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_sdf(netlist, delays))
