"""Apply delay information (from SDF or a synthetic model) to a netlist.

The result is a :class:`DelayAnnotation` — per-instance conditional delay
lookup tables plus per-input-pin interconnect delays — which is exactly the
"SDF to LUT array" translation step of the paper's tool flow (Fig. 2/4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.delaytable import DelayArc, GateDelayTable, InterconnectDelay
from ..netlist import Netlist
from .delay_model import DesignDelays, IntrinsicDelayModel
from .types import SdfFile


class AnnotationError(ValueError):
    """Raised when SDF entries cannot be matched to the netlist."""


@dataclass
class DelayAnnotation:
    """Compiled delay data for one netlist.

    ``gate_tables`` maps instance names to their conditional delay tables;
    ``interconnect`` maps ``(instance, pin)`` to the wire delay at that input.
    Instances or pins without entries default to zero delay.
    """

    netlist: Netlist
    gate_tables: Dict[str, GateDelayTable] = field(default_factory=dict)
    interconnect: Dict[Tuple[str, str], InterconnectDelay] = field(
        default_factory=dict
    )

    def table_for(self, instance_name: str) -> GateDelayTable:
        table = self.gate_tables.get(instance_name)
        if table is None:
            inst = self.netlist.instance(instance_name)
            pins = inst.cell.inputs or ("Y",)
            table = GateDelayTable.uniform(pins, 0.0, 0.0)
            self.gate_tables[instance_name] = table
        return table

    def wire_delay(self, instance_name: str, pin: str) -> InterconnectDelay:
        return self.interconnect.get((instance_name, pin), InterconnectDelay(0.0, 0.0))

    # ------------------------------------------------------------------
    # Feature-ablation variants (paper Table 7)
    # ------------------------------------------------------------------
    def without_net_delays(self) -> "DelayAnnotation":
        """Drop interconnect delays (the paper's "No Net Delay" ablation)."""
        return DelayAnnotation(
            netlist=self.netlist,
            gate_tables=dict(self.gate_tables),
            interconnect={},
        )

    def with_averaged_sdf(self) -> "DelayAnnotation":
        """Collapse conditional arcs to per-pin averages ("No Full SDF")."""
        averaged = {
            name: table.averaged() for name, table in self.gate_tables.items()
        }
        return DelayAnnotation(
            netlist=self.netlist,
            gate_tables=averaged,
            interconnect=dict(self.interconnect),
        )

    def max_gate_delay(self) -> float:
        return max(
            (table.max_finite_delay() for table in self.gate_tables.values()),
            default=0.0,
        )


def annotation_from_design_delays(
    netlist: Netlist, delays: DesignDelays
) -> DelayAnnotation:
    """Compile a :class:`DesignDelays` bundle into lookup tables."""
    annotation = DelayAnnotation(netlist=netlist)
    for inst in netlist.combinational_instances():
        pins = inst.cell.inputs
        if not pins:
            continue
        table = GateDelayTable(pins)
        arcs = delays.gate_arcs.get(inst.name, [])
        if not arcs:
            cell = inst.cell
            arcs = [
                DelayArc(pin=pin, rise=cell.intrinsic_rise, fall=cell.intrinsic_fall)
                for pin in pins
            ]
        table.add_arcs(arcs)
        annotation.gate_tables[inst.name] = table
    annotation.interconnect = dict(delays.interconnect)
    return annotation


def default_annotation(netlist: Netlist) -> DelayAnnotation:
    """Annotation using only the library's intrinsic delays (no SDF)."""
    return annotation_from_design_delays(netlist, IntrinsicDelayModel().build(netlist))


def _edge_to_index(edge: Optional[str]) -> Optional[int]:
    if edge is None:
        return None
    return 0 if edge == "posedge" else 1


def annotation_from_sdf(
    netlist: Netlist, sdf: SdfFile, strict: bool = True
) -> DelayAnnotation:
    """Compile a parsed SDF file against a netlist.

    With ``strict`` set, SDF entries referring to unknown instances or pins
    raise :class:`AnnotationError`; otherwise they are skipped (commercial
    tools warn and continue).  Instances without SDF coverage fall back to
    intrinsic delays.
    """
    design_delays = DesignDelays()
    for cell_entry in sdf.cells:
        instance_name = cell_entry.instance
        if instance_name not in netlist.instances:
            if strict and instance_name:
                raise AnnotationError(
                    f"SDF CELL references unknown instance {instance_name!r}"
                )
            continue
        inst = netlist.instances[instance_name]
        arcs = design_delays.gate_arcs.setdefault(instance_name, [])
        for path in cell_entry.iopaths:
            if path.input_pin not in inst.cell.inputs:
                if strict:
                    raise AnnotationError(
                        f"SDF IOPATH references unknown pin {path.input_pin!r} "
                        f"on instance {instance_name!r} ({inst.cell_name})"
                    )
                continue
            arcs.append(
                DelayArc(
                    pin=path.input_pin,
                    rise=path.rise,
                    fall=path.fall,
                    input_edge=_edge_to_index(path.input_edge),
                    condition=dict(path.condition),
                )
            )

    for wire in sdf.all_interconnects():
        destination = wire.destination
        if "/" not in destination:
            continue  # delay to a primary output port; no gate consumes it
        instance_name, pin = destination.rsplit("/", 1)
        instance_name = instance_name.lstrip("\\")
        if instance_name not in netlist.instances:
            if strict:
                raise AnnotationError(
                    f"SDF INTERCONNECT references unknown instance "
                    f"{instance_name!r}"
                )
            continue
        inst = netlist.instances[instance_name]
        if pin not in inst.cell.inputs:
            if strict:
                raise AnnotationError(
                    f"SDF INTERCONNECT references unknown pin {pin!r} on "
                    f"instance {instance_name!r}"
                )
            continue
        design_delays.interconnect[(instance_name, pin)] = InterconnectDelay(
            rise=wire.rise, fall=wire.fall
        )

    return annotation_from_design_delays(netlist, design_delays)
