"""Parser for the SDF delay-annotation subset used by GATSPI.

The parser tokenises the file into nested S-expressions and then extracts the
``CELL`` / ``DELAY`` / ``ABSOLUTE`` / ``IOPATH`` / ``COND`` / ``INTERCONNECT``
structure.  Delay value triples ``(min:typ:max)`` collapse to the typical
value; empty value fields ``()`` are preserved as ``None`` so conditional and
edge-specific statements like the paper's Fig. 4 example round-trip exactly::

    (COND A2===1'b1&&A1===1'b0 (IOPATH (posedge B) Y () (5)))
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .types import SdfCell, SdfFile, SdfInterconnect, SdfIoPath

SExpr = Union[str, List["SExpr"]]


class SdfError(ValueError):
    """Raised when the SDF text cannot be parsed."""


_TOKEN = re.compile(r"\(|\)|\"[^\"]*\"|[^\s()\"]+")


def _tokenize(text: str) -> List[str]:
    return _TOKEN.findall(text)


def _parse_sexpr(tokens: Sequence[str]) -> Tuple[SExpr, int]:
    """Parse one S-expression starting at tokens[0]; return (expr, consumed)."""
    if not tokens:
        raise SdfError("unexpected end of file")
    token = tokens[0]
    if token == "(":
        items: List[SExpr] = []
        index = 1
        while index < len(tokens) and tokens[index] != ")":
            expr, consumed = _parse_sexpr(tokens[index:])
            items.append(expr)
            index += consumed
        if index >= len(tokens):
            raise SdfError("unbalanced parenthesis in SDF file")
        return items, index + 1
    if token == ")":
        raise SdfError("unexpected ')' in SDF file")
    return token, 1


def _parse_all(text: str) -> SExpr:
    tokens = _tokenize(text)
    expr, consumed = _parse_sexpr(tokens)
    if consumed != len(tokens):
        remaining = tokens[consumed:]
        if any(token not in ("",) for token in remaining):
            raise SdfError("trailing tokens after DELAYFILE expression")
    return expr


def _unquote(token: str) -> str:
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    return token


def _keyword(expr: SExpr) -> Optional[str]:
    if isinstance(expr, list) and expr and isinstance(expr[0], str):
        return expr[0].upper()
    return None


def _parse_delay_value(expr: SExpr) -> Optional[float]:
    """Parse a delay value field: ``(6)``, ``(1:2:3)``, or empty ``()``."""
    if isinstance(expr, list):
        if not expr:
            return None
        token = expr[0]
    else:
        token = expr
    if not isinstance(token, str):
        raise SdfError(f"malformed delay value: {expr!r}")
    if ":" in token:
        parts = token.split(":")
        candidates = [p for p in parts if p != ""]
        if not candidates:
            return None
        # min:typ:max — prefer the typical (middle) value when present.
        typ_index = 1 if len(parts) >= 2 and parts[1] != "" else 0
        try:
            return float(parts[typ_index] if parts[typ_index] != "" else candidates[0])
        except ValueError as exc:
            raise SdfError(f"malformed delay triple: {token!r}") from exc
    try:
        return float(token)
    except ValueError as exc:
        raise SdfError(f"malformed delay value: {token!r}") from exc


_COND_TERM = re.compile(
    r"(?P<pin>[A-Za-z_][\w\[\]]*)\s*===?\s*1'[bB](?P<value>[01])"
)


def parse_condition(expression: str) -> Dict[str, int]:
    """Parse a COND expression like ``A2===1'b1&&A1===1'b0``.

    Only conjunctions of pin equality terms are supported — which is exactly
    the form produced for conditional IOPATH delays of combinational cells.
    """
    condition: Dict[str, int] = {}
    cleaned = expression.replace(" ", "")
    if not cleaned:
        return condition
    terms = re.split(r"&&", cleaned)
    for term in terms:
        match = _COND_TERM.fullmatch(term)
        if not match:
            raise SdfError(f"unsupported COND expression term: {term!r}")
        condition[match.group("pin")] = int(match.group("value"))
    return condition


def _parse_port_spec(expr: SExpr) -> Tuple[str, Optional[str]]:
    """Parse an IOPATH input port spec: ``A`` or ``(posedge A)``."""
    if isinstance(expr, str):
        return expr, None
    if isinstance(expr, list) and len(expr) == 2 and isinstance(expr[0], str):
        edge = expr[0].lower()
        if edge not in ("posedge", "negedge"):
            raise SdfError(f"unsupported port edge qualifier: {expr[0]!r}")
        if not isinstance(expr[1], str):
            raise SdfError(f"malformed port specification: {expr!r}")
        return expr[1], edge
    raise SdfError(f"malformed port specification: {expr!r}")


def _parse_iopath(expr: List[SExpr], condition: Dict[str, int]) -> SdfIoPath:
    if len(expr) < 3:
        raise SdfError(f"malformed IOPATH: {expr!r}")
    input_pin, edge = _parse_port_spec(expr[1])
    output_pin = expr[2]
    if not isinstance(output_pin, str):
        raise SdfError(f"malformed IOPATH output: {expr!r}")
    values = expr[3:]
    rise = _parse_delay_value(values[0]) if len(values) >= 1 else None
    fall = _parse_delay_value(values[1]) if len(values) >= 2 else rise
    if len(values) == 1:
        fall = rise
    return SdfIoPath(
        input_pin=input_pin,
        output_pin=output_pin,
        rise=rise,
        fall=fall,
        input_edge=edge,
        condition=dict(condition),
    )


def _parse_interconnect(expr: List[SExpr]) -> SdfInterconnect:
    if len(expr) < 4:
        raise SdfError(f"malformed INTERCONNECT: {expr!r}")
    source, destination = expr[1], expr[2]
    if not isinstance(source, str) or not isinstance(destination, str):
        raise SdfError(f"malformed INTERCONNECT ports: {expr!r}")
    rise = _parse_delay_value(expr[3])
    fall = _parse_delay_value(expr[4]) if len(expr) > 4 else rise
    return SdfInterconnect(
        source=source,
        destination=destination,
        rise=rise if rise is not None else 0.0,
        fall=fall if fall is not None else (rise if rise is not None else 0.0),
    )


def _collect_delay_entries(expr: SExpr, cell: SdfCell) -> None:
    """Recursively collect IOPATH/COND/INTERCONNECT under DELAY/ABSOLUTE."""
    if not isinstance(expr, list):
        return
    keyword = _keyword(expr)
    if keyword == "IOPATH":
        cell.iopaths.append(_parse_iopath(expr, {}))
        return
    if keyword == "COND":
        # (COND <expr tokens...> (IOPATH ...))
        iopath_expr = None
        condition_tokens: List[str] = []
        for item in expr[1:]:
            if isinstance(item, list) and _keyword(item) == "IOPATH":
                iopath_expr = item
            elif isinstance(item, str):
                condition_tokens.append(item)
            elif isinstance(item, list):
                # Parenthesised condition expression.
                condition_tokens.extend(
                    token for token in item if isinstance(token, str)
                )
        if iopath_expr is None:
            raise SdfError(f"COND without IOPATH: {expr!r}")
        condition = parse_condition("".join(condition_tokens))
        cell.iopaths.append(_parse_iopath(iopath_expr, condition))
        return
    if keyword == "INTERCONNECT":
        cell.interconnects.append(_parse_interconnect(expr))
        return
    for item in expr:
        _collect_delay_entries(item, cell)


def parse_sdf(text: str) -> SdfFile:
    """Parse SDF text into an :class:`SdfFile`."""
    root = _parse_all(text)
    if _keyword(root) != "DELAYFILE":
        raise SdfError("SDF file must start with (DELAYFILE ...)")
    sdf = SdfFile()
    for item in root[1:]:
        keyword = _keyword(item)
        if keyword == "DESIGN" and len(item) > 1 and isinstance(item[1], str):
            sdf.design = _unquote(item[1])
        elif keyword == "TIMESCALE" and len(item) > 1 and isinstance(item[1], str):
            sdf.timescale = item[1]
        elif keyword == "CELL":
            cell_type = ""
            instance = ""
            cell = SdfCell(cell_type="", instance="")
            for entry in item[1:]:
                entry_keyword = _keyword(entry)
                if entry_keyword == "CELLTYPE" and len(entry) > 1:
                    cell_type = _unquote(entry[1])
                elif entry_keyword == "INSTANCE":
                    instance = entry[1] if len(entry) > 1 else ""
                    if isinstance(instance, list):
                        instance = ""
                elif entry_keyword == "DELAY":
                    _collect_delay_entries(entry, cell)
            cell.cell_type = cell_type
            cell.instance = instance if isinstance(instance, str) else ""
            cell.instance = cell.instance.lstrip("\\")
            if cell.instance == "":
                # Top-level cell holding interconnect delays.
                sdf.interconnects.extend(cell.interconnects)
                if cell.iopaths:
                    sdf.cells.append(cell)
            else:
                sdf.cells.append(cell)
    return sdf


def read_sdf(path: str) -> SdfFile:
    """Read and parse an SDF file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_sdf(handle.read())
