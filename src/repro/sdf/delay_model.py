"""Synthetic delay models for generated benchmark designs.

The paper's benchmarks come with signoff SDF files; our generated designs need
equivalent annotation.  :class:`SyntheticDelayModel` produces deterministic
(seeded) per-arc gate delays — including edge-specific and ``COND``-qualified
arcs — and per-pin interconnect delays with the same structure a physical
design's SDF would have, so the identical SDF→LUT translation and kernel code
paths are exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.delaytable import DelayArc, InterconnectDelay
from ..core.truthtable import values_for_index
from ..netlist import Netlist


@dataclass
class DesignDelays:
    """All delay arcs for one design, keyed by instance.

    This is the neutral form consumed both by the SDF writer and by the
    annotation builder, guaranteeing that the SDF file on disk and the
    in-memory annotation describe the same delays.
    """

    gate_arcs: Dict[str, List[DelayArc]] = field(default_factory=dict)
    interconnect: Dict[Tuple[str, str], InterconnectDelay] = field(
        default_factory=dict
    )

    def arc_count(self) -> int:
        return sum(len(arcs) for arcs in self.gate_arcs.values())

    def conditional_arc_count(self) -> int:
        return sum(
            1
            for arcs in self.gate_arcs.values()
            for arc in arcs
            if arc.condition
        )


@dataclass
class SyntheticDelayModel:
    """Deterministic pseudo-random delay generator.

    * Gate delays start from the cell's intrinsic rise/fall and grow with the
      output net's fanout (``load_delay_per_fanout``).
    * A fraction of multi-input gates additionally receive edge-qualified
      ``COND`` arcs (faster or slower by up to ``conditional_spread``),
      exercising the conditional-delay lookup path of Fig. 4.
    * Interconnect delays are drawn uniformly from ``wire_delay_range``.

    All values are integers in the library's time unit (ps).
    """

    seed: int = 2022
    load_delay_per_fanout: float = 1.5
    wire_delay_range: Tuple[int, int] = (0, 4)
    conditional_fraction: float = 0.35
    conditional_spread: float = 0.3
    rise_fall_skew: float = 0.15

    def build(self, netlist: Netlist) -> DesignDelays:
        """Generate all arcs for ``netlist``."""
        rng = random.Random(self.seed)
        delays = DesignDelays()
        for inst in netlist.combinational_instances():
            cell = inst.cell
            if cell.num_inputs == 0:
                delays.gate_arcs[inst.name] = []
                continue
            fanout = netlist.fanout_of(inst.output_net())
            load = self.load_delay_per_fanout * max(fanout, 1)
            base_rise = cell.intrinsic_rise + load
            base_fall = cell.intrinsic_fall + load
            arcs: List[DelayArc] = []
            for pin in cell.inputs:
                skew = 1.0 + self.rise_fall_skew * (rng.random() - 0.5)
                arcs.append(
                    DelayArc(
                        pin=pin,
                        rise=round(base_rise * skew),
                        fall=round(base_fall * skew),
                    )
                )
            if cell.num_inputs >= 2 and rng.random() < self.conditional_fraction:
                arcs.extend(self._conditional_arcs(rng, cell, base_rise, base_fall))
            delays.gate_arcs[inst.name] = arcs
            for pin in cell.inputs:
                low, high = self.wire_delay_range
                delays.interconnect[(inst.name, pin)] = InterconnectDelay(
                    rise=float(rng.randint(low, high)),
                    fall=float(rng.randint(low, high)),
                )
        return delays

    def _conditional_arcs(self, rng, cell, base_rise, base_fall) -> List[DelayArc]:
        """Emit edge-qualified conditional arcs for one pin of ``cell``.

        The shape mirrors the paper's Fig. 4 AOI21 example: the conditional
        delay applies to one switching pin under a fully-specified state of
        the side inputs.
        """
        pin_index = rng.randrange(cell.num_inputs)
        pin = cell.inputs[pin_index]
        others = [p for p in cell.inputs if p != pin]
        if not others:
            return []
        # Pick one concrete side-input state.
        state_index = rng.randrange(2 ** len(others))
        values = values_for_index(state_index, len(others))
        condition = dict(zip(others, values))
        factor = 1.0 - self.conditional_spread * rng.random()
        cond_rise = max(1, round(base_rise * factor))
        cond_fall = max(1, round(base_fall * factor))
        return [
            DelayArc(
                pin=pin,
                rise=cond_rise,
                fall=None,
                input_edge=1,  # falling input
                condition=condition,
            ),
            DelayArc(
                pin=pin,
                rise=None,
                fall=cond_fall,
                input_edge=0,  # rising input
                condition=condition,
            ),
        ]


@dataclass
class UnitDelayModel:
    """Every gate gets the same rise/fall delay and zero wire delay.

    Useful for tests where hand-computed waveforms are needed.
    """

    delay: int = 10

    def build(self, netlist: Netlist) -> DesignDelays:
        delays = DesignDelays()
        for inst in netlist.combinational_instances():
            arcs = [
                DelayArc(pin=pin, rise=self.delay, fall=self.delay)
                for pin in inst.cell.inputs
            ]
            delays.gate_arcs[inst.name] = arcs
            for pin in inst.cell.inputs:
                delays.interconnect[(inst.name, pin)] = InterconnectDelay(0.0, 0.0)
        return delays


@dataclass
class IntrinsicDelayModel:
    """Gate delays straight from the cell library's intrinsic values.

    No fanout loading, no conditional arcs, no wire delay — the fallback used
    when a netlist has no SDF annotation at all.
    """

    def build(self, netlist: Netlist) -> DesignDelays:
        delays = DesignDelays()
        for inst in netlist.combinational_instances():
            cell = inst.cell
            arcs = [
                DelayArc(
                    pin=pin,
                    rise=round(cell.intrinsic_rise),
                    fall=round(cell.intrinsic_fall),
                )
                for pin in cell.inputs
            ]
            delays.gate_arcs[inst.name] = arcs
        return delays
