"""Glitch-fixing netlist transformations.

The paper's glitch-optimization flow applies "designer-informed glitch-fixing
transformations" to the netlist after glitch analysis.  The classic fix for a
glitching gate is *path balancing*: a glitch exists because the gate's inputs
arrive at different times, so delaying the early inputs (with buffers) until
the skew is smaller than the gate's inertial window makes the output pulse
collapse and the glitch disappear — at the cost of the buffer's own (much
smaller) power.

This module provides:

* static arrival-time estimation from the delay annotation,
* single-pin delay-buffer insertion (netlist + annotation kept consistent),
* a per-gate input balancing transform built on the two.

The transforms are expressed through the typed edit API
(:class:`~repro.core.edits.InsertBuffer`), so every fix is journaled,
invertible, and drives :meth:`Session.rerun`'s cone-of-influence dirty
marking; :func:`plan_balance_edits` returns the edits without applying
them, which is what the glitch-ECO loop feeds to ``rerun``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.edits import InsertBuffer, RemoveBuffer
from ..netlist import Netlist, levelize
from ..sdf.annotate import DelayAnnotation


@dataclass
class FixRecord:
    """One applied glitch fix (for the flow's report)."""

    gate: str
    pin: str
    inserted_buffer: str
    added_delay: float


def estimate_arrival_times(
    netlist: Netlist, annotation: DelayAnnotation
) -> Dict[str, float]:
    """Static latest-arrival time of every net (sources arrive at 0).

    Uses the mean finite delay of each gate's delay table as the per-arc
    delay, which is exactly the information a designer's static timing view
    would provide to the glitch-fixing scripts.
    """
    arrivals: Dict[str, float] = {net: 0.0 for net in netlist.source_nets()}
    levelization = levelize(netlist)
    for level in levelization.levels:
        for name in level:
            inst = netlist.instances[name]
            cell = inst.cell
            if cell.num_inputs == 0:
                arrivals[inst.output_net()] = 0.0
                continue
            table = annotation.table_for(name)
            latest = 0.0
            for pin in cell.inputs:
                net = inst.connections[pin]
                wire = annotation.wire_delay(name, pin)
                pin_array = table.table_for(pin)
                finite = pin_array[np.isfinite(pin_array)]
                gate_delay = float(finite.mean()) if finite.size else 0.0
                arrival = (
                    arrivals.get(net, 0.0)
                    + max(wire.rise, wire.fall)
                    + gate_delay
                )
                latest = max(latest, arrival)
            arrivals[inst.output_net()] = latest
    return arrivals


def input_arrival_skew(
    netlist: Netlist,
    annotation: DelayAnnotation,
    gate_name: str,
    arrivals: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """Arrival time of each input pin of ``gate_name`` (before the gate)."""
    arrivals = arrivals or estimate_arrival_times(netlist, annotation)
    inst = netlist.instances[gate_name]
    skews: Dict[str, float] = {}
    for pin in inst.cell.inputs:
        net = inst.connections[pin]
        wire = annotation.wire_delay(gate_name, pin)
        skews[pin] = arrivals.get(net, 0.0) + max(wire.rise, wire.fall)
    return skews


def insert_delay_buffer(
    netlist: Netlist,
    annotation: DelayAnnotation,
    gate_name: str,
    pin: str,
    delay: float,
    buffer_cell: str = "DLY",
) -> str:
    """Insert a delay buffer in front of one input pin.

    The original net keeps driving every other load; only the targeted pin is
    re-routed through the new buffer.  The annotation gains a delay table for
    the buffer (rise = fall = ``delay``) and zero wire delay, so the change is
    visible to both GATSPI and the reference simulator.  Returns the new
    buffer instance name.

    The transform itself lives in the edit API
    (:class:`~repro.core.edits.InsertBuffer`); this wrapper applies it
    immediately and reports the buffer name, for callers that do not care
    about the inverse.
    """
    applied = InsertBuffer(
        gate=gate_name, pin=pin, delay=delay, buffer_cell=buffer_cell
    ).apply(netlist, annotation)
    inverse = applied.inverse
    assert isinstance(inverse, RemoveBuffer)
    return inverse.buffer


def plan_balance_edits(
    netlist: Netlist,
    annotation: DelayAnnotation,
    gate_name: str,
    skew_threshold: float = 5.0,
    arrivals: Optional[Dict[str, float]] = None,
    max_added_delay: float = 200.0,
) -> List[InsertBuffer]:
    """Plan the delay-balancing buffers for one glitching gate.

    Pure planning: nothing is applied.  Every input arriving more than
    ``skew_threshold`` earlier than the latest input gets a buffer edit
    sized to close most of the gap.  Per-pin fixes are independent (each
    touches only its own pin's wiring and delay), so edits planned from
    one baseline state for several gates may be applied as a single batch
    — which is exactly how the glitch-ECO loop feeds them to
    :meth:`Session.rerun`.
    """
    skews = input_arrival_skew(netlist, annotation, gate_name, arrivals)
    if not skews:
        return []
    latest = max(skews.values())
    edits: List[InsertBuffer] = []
    for pin, arrival in skews.items():
        gap = latest - arrival
        if gap <= skew_threshold:
            continue
        added = min(gap - skew_threshold / 2.0, max_added_delay)
        edits.append(InsertBuffer(gate=gate_name, pin=pin, delay=added))
    return edits


def balance_gate_inputs(
    netlist: Netlist,
    annotation: DelayAnnotation,
    gate_name: str,
    skew_threshold: float = 5.0,
    arrivals: Optional[Dict[str, float]] = None,
    max_added_delay: float = 200.0,
) -> List[FixRecord]:
    """Delay-balance the inputs of one glitching gate.

    Every input arriving more than ``skew_threshold`` earlier than the
    latest input gets a buffer sized to close most of the gap.  Returns the
    applied fixes (possibly empty when the gate is already balanced).
    """
    fixes: List[FixRecord] = []
    for edit in plan_balance_edits(
        netlist,
        annotation,
        gate_name,
        skew_threshold=skew_threshold,
        arrivals=arrivals,
        max_added_delay=max_added_delay,
    ):
        applied = edit.apply(netlist, annotation)
        inverse = applied.inverse
        assert isinstance(inverse, RemoveBuffer)
        fixes.append(
            FixRecord(gate=edit.gate, pin=edit.pin, inserted_buffer=inverse.buffer,
                      added_delay=edit.delay)
        )
    return fixes
