"""Glitch-power optimization: fixing transforms and the full flow."""

from .glitch_fix import (
    FixRecord,
    balance_gate_inputs,
    estimate_arrival_times,
    input_arrival_skew,
    insert_delay_buffer,
    plan_balance_edits,
)
from .flow import FlowResult, GlitchOptimizationFlow

__all__ = [
    "FixRecord",
    "balance_gate_inputs",
    "estimate_arrival_times",
    "input_arrival_skew",
    "insert_delay_buffer",
    "plan_balance_edits",
    "FlowResult",
    "GlitchOptimizationFlow",
]
