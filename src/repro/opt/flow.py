"""The glitch-power-optimization flow (paper Section 4, last experiment).

The paper's flow: re-simulate the design with GATSPI to get delay-accurate
activity, run glitch analysis, apply glitch-fixing transformations, then
re-simulate to confirm the power saving — and do the whole loop fast enough
(449X turnaround speedup) that it becomes practical.

This module reproduces the flow end to end on generated designs:

1. delay-aware re-simulation with the GATSPI engine (timed),
2. zero-delay functional simulation to isolate glitch activity,
3. glitch-power ranking and selection of fix candidates,
4. path-balancing fixes planned as a typed edit batch and applied in
   place through the edit API (no per-iteration ``deepcopy``),
5. incremental confirmation re-simulation (:meth:`Session.rerun`: only
   the fixes' cone of influence re-executes) and power comparison,
6. the same two re-simulations with the event-driven reference simulator so
   the turnaround-time speedup can be reported the way the paper does.

The flow always leaves the caller's netlist/annotation exactly as it found
them: the applied fix batch is undone through the receipt's inverse edits
before returning (even on failure).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..api import get_backend
from ..core.config import SimConfig
from ..core.edits import AppliedEdit, InsertBuffer, RemoveBuffer
from ..core.results import SimulationResult
from ..core.waveform import Waveform
from ..netlist import Netlist
from ..power import GlitchReport, PowerModel, PowerReport, analyze_glitches
from ..sdf.annotate import DelayAnnotation, default_annotation
from .glitch_fix import FixRecord, estimate_arrival_times, plan_balance_edits


@dataclass
class FlowResult:
    """Everything the glitch-optimization flow reports."""

    baseline_power: PowerReport
    optimized_power: PowerReport
    baseline_glitch: GlitchReport
    optimized_glitch: GlitchReport
    fixes: List[FixRecord] = field(default_factory=list)
    gatspi_resim_seconds: float = 0.0
    reference_resim_seconds: float = 0.0

    @property
    def power_saving_fraction(self) -> float:
        baseline = self.baseline_power.total_w
        if baseline == 0:
            return 0.0
        return (baseline - self.optimized_power.total_w) / baseline

    @property
    def dynamic_power_saving_fraction(self) -> float:
        baseline = self.baseline_power.dynamic_w
        if baseline == 0:
            return 0.0
        return (baseline - self.optimized_power.dynamic_w) / baseline

    @property
    def glitch_toggle_reduction(self) -> int:
        return (
            self.baseline_glitch.total_glitch_toggles
            - self.optimized_glitch.total_glitch_toggles
        )

    @property
    def turnaround_speedup(self) -> float:
        """Re-simulation turnaround speedup of GATSPI vs the reference."""
        if self.gatspi_resim_seconds == 0:
            return float("inf")
        return self.reference_resim_seconds / self.gatspi_resim_seconds

    def summary(self) -> Dict[str, float]:
        return {
            "baseline_total_w": self.baseline_power.total_w,
            "optimized_total_w": self.optimized_power.total_w,
            "power_saving_percent": 100.0 * self.power_saving_fraction,
            "glitch_toggles_removed": float(self.glitch_toggle_reduction),
            "fixes_applied": float(len(self.fixes)),
            "gatspi_resim_seconds": self.gatspi_resim_seconds,
            "reference_resim_seconds": self.reference_resim_seconds,
            "turnaround_speedup": self.turnaround_speedup,
        }


class GlitchOptimizationFlow:
    """Re-simulate → analyze → fix → re-simulate, as deployed in the paper.

    All three simulation roles are named backends from the
    :mod:`repro.api` registry: the delay-aware re-simulator (``backend``,
    default ``"gatspi"``), the functional glitch-free reference
    (``functional_backend``, default ``"zero-delay"``), and the
    turnaround-time baseline (``baseline_backend``, default ``"event"``).
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
        measure_reference_turnaround: bool = True,
        backend: str = "gatspi",
        functional_backend: str = "zero-delay",
        baseline_backend: str = "event",
    ):
        self.netlist = netlist
        self.annotation = annotation or default_annotation(netlist)
        self.config = config or SimConfig()
        self.measure_reference_turnaround = measure_reference_turnaround
        self.backend = backend
        self.functional_backend = functional_backend
        self.baseline_backend = baseline_backend

    def run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        max_gates_to_fix: int = 20,
        skew_threshold: float = 5.0,
    ) -> FlowResult:
        """Execute the full flow and return the report."""
        duration = cycles * self.config.clock_period
        power_model = PowerModel(self.netlist)
        resim_backend = get_backend(self.backend)
        functional_backend = get_backend(self.functional_backend)
        reference_backend = (
            get_backend(self.baseline_backend)
            if self.measure_reference_turnaround
            else None
        )

        # --- baseline delay-aware re-simulation (GATSPI) -------------------
        start = time.perf_counter()
        session = resim_backend.prepare(
            self.netlist, annotation=self.annotation, config=self.config
        )
        baseline_result = session.run(stimulus, cycles=cycles)
        gatspi_seconds = time.perf_counter() - start

        functional = functional_backend.prepare(
            self.netlist, annotation=self.annotation, config=self.config
        ).run(stimulus, duration=duration)
        baseline_glitch = analyze_glitches(
            self.netlist, baseline_result, functional.toggle_counts, power_model
        )
        baseline_power = baseline_glitch.total_power

        # --- reference turnaround, original design (before any edits) ------
        reference_seconds = 0.0
        if reference_backend is not None:
            start = time.perf_counter()
            reference_backend.prepare(
                self.netlist, annotation=self.annotation, config=self.config
            ).run(stimulus, cycles=cycles)
            reference_seconds += time.perf_counter() - start

        # --- plan the glitch fixes from the baseline state -----------------
        # Per-pin fixes are independent of each other (each touches only
        # its own pin's wiring/delay), so planning every gate's edits from
        # the one baseline arrival profile and applying them as a single
        # batch is equivalent to the old copy-and-mutate loop.
        arrivals = estimate_arrival_times(self.netlist, self.annotation)
        fix_edits: List[InsertBuffer] = []
        for gate_name in baseline_glitch.worst_driver_gates(
            self.netlist, max_gates_to_fix
        ):
            fix_edits.extend(
                plan_balance_edits(
                    self.netlist,
                    self.annotation,
                    gate_name,
                    skew_threshold=skew_threshold,
                    arrivals=arrivals,
                )
            )

        # --- apply fixes in place + confirmation re-simulation -------------
        # Preferred path: the session's incremental rerun — only the fixes'
        # cone of influence re-executes.  Backends without edit support
        # fall back to applying the same edit batch and re-preparing.
        undo_receipt = None
        applied: List[AppliedEdit] = []
        start = time.perf_counter()
        try:
            optimized_result = session.rerun(fix_edits, stimulus=stimulus, cycles=cycles)
            undo_receipt = session.last_edit_receipt
        except NotImplementedError:
            applied = [edit.apply(self.netlist, self.annotation) for edit in fix_edits]
            optimized_result = resim_backend.prepare(
                self.netlist, annotation=self.annotation, config=self.config
            ).run(stimulus, cycles=cycles)
        gatspi_seconds += time.perf_counter() - start

        try:
            if undo_receipt is not None:
                edit_pairs = list(zip(undo_receipt.edits, undo_receipt.inverses))
            else:
                edit_pairs = [(done.edit, done.inverse) for done in applied]
            fixes: List[FixRecord] = []
            for edit, inverse in edit_pairs:
                assert isinstance(edit, InsertBuffer)
                assert isinstance(inverse, RemoveBuffer)
                fixes.append(
                    FixRecord(
                        gate=edit.gate,
                        pin=edit.pin,
                        inserted_buffer=inverse.buffer,
                        added_delay=edit.delay,
                    )
                )

            # The design now carries the fixes: analyze the edited state.
            fixed_power_model = PowerModel(self.netlist)
            optimized_functional = functional_backend.prepare(
                self.netlist, annotation=self.annotation, config=self.config
            ).run(stimulus, duration=duration)
            optimized_glitch = analyze_glitches(
                self.netlist,
                optimized_result,
                optimized_functional.toggle_counts,
                fixed_power_model,
            )
            optimized_power = optimized_glitch.total_power

            # --- reference turnaround, fixed design ------------------------
            if reference_backend is not None:
                start = time.perf_counter()
                reference_backend.prepare(
                    self.netlist, annotation=self.annotation, config=self.config
                ).run(stimulus, cycles=cycles)
                reference_seconds += time.perf_counter() - start
        finally:
            # Restore the caller's design exactly, whatever happened above.
            if undo_receipt is not None:
                session.apply_edits(undo_receipt.undo_edits)
            else:
                for done in reversed(applied):
                    done.inverse.apply(self.netlist, self.annotation)

        return FlowResult(
            baseline_power=baseline_power,
            optimized_power=optimized_power,
            baseline_glitch=baseline_glitch,
            optimized_glitch=optimized_glitch,
            fixes=fixes,
            gatspi_resim_seconds=gatspi_seconds,
            reference_resim_seconds=reference_seconds,
        )
