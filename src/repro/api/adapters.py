"""Adapters registering the four concrete simulators as named backends.

=================  ==================================================
Name               Engine
=================  ==================================================
``gatspi``         :class:`~repro.core.engine.GatspiEngine` — levelized
                   two-pass GPU-style re-simulator (the paper's system)
``event``          :class:`~repro.reference.event_sim.EventDrivenSimulator`
                   — the commercial-simulator stand-in / oracle
``zero-delay``     :class:`~repro.reference.zero_delay.ZeroDelaySimulator`
                   — purely functional, used to isolate glitch activity
``threaded-cpu``   :class:`~repro.reference.threaded.PartitionedCpuSimulator`
                   — the OpenMP-style partitioned CPU baseline
=================  ==================================================

The concrete classes stay importable for backwards compatibility, but flows
should reach engines exclusively through ``get_backend(name).prepare(...)``.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterator, Mapping, Optional, Sequence, Tuple

from ..core.config import SimConfig
from ..core.edits import Edit, EditReceipt
from ..core.engine import GatspiEngine
from ..core.restructure import StreamingSourceEvents
from ..core.results import (
    PhaseTimings,
    SimulationResult,
    SimulationStats,
    StreamBatch,
)
from ..core.waveform import Waveform
from ..netlist import Netlist
from ..reference.event_sim import EventDrivenSimulator
from ..reference.threaded import PartitionedCpuSimulator, PartitionedRunReport
from ..reference.zero_delay import ZeroDelaySimulator
from ..sdf.annotate import DelayAnnotation
from .backend import BackendCapabilities, SimBackend
from .registry import register_backend
from .session import Session


def _reject_unknown_options(backend_name: str, options: Mapping[str, object]) -> None:
    if options:
        raise TypeError(
            f"backend {backend_name!r} got unexpected options: "
            f"{', '.join(sorted(options))}"
        )


# ----------------------------------------------------------------------
# gatspi
# ----------------------------------------------------------------------
#: Rules re-evaluated after a structural edit batch (fast structural set —
#: the expensive SDF/statistics rules cannot be invalidated by an ECO edit).
_STRUCTURAL_EDIT_RULES: Tuple[str, ...] = (
    "undriven-input",
    "multi-driven-net",
    "unconnected-output",
    "combinational-loop",
    "negative-delay",
)
#: Rules re-evaluated after a delay-only edit batch.
_DELAY_EDIT_RULES: Tuple[str, ...] = ("negative-delay",)


def _check_edit_analysis(
    engine: GatspiEngine,
    receipt: EditReceipt,
    analysis: Optional[str] = None,
) -> None:
    """Incremental design-rule gate for an applied edit batch.

    Mirrors prepare-time analysis (`analyze_for_prepare`) but re-evaluates
    only the rules an edit of this kind can invalidate: delay-only batches
    check ``negative-delay`` alone, structural batches the fast structural
    set.  ``analysis="off"`` and empty batches skip entirely.  ``analysis``
    overrides the engine config's mode (the sharded session passes its
    outer mode — inner engines always run with analysis off).
    """
    if analysis is None:
        analysis = engine.config.analysis
    if analysis == "off" or not receipt.seeds:
        return
    from ..analysis.engine import AnalysisWarning, DesignAnalysisError, analyze_design

    rules = _DELAY_EDIT_RULES if receipt.delay_only else _STRUCTURAL_EDIT_RULES
    # The edited design mutates in place under a stable object identity, so
    # the fingerprint cache must not serve a stale pre-edit report.
    report = analyze_design(
        engine.netlist,
        annotation=engine.annotation,
        rules=rules,
        use_cache=False,
    )
    if report.has_errors:
        if analysis == "strict":
            raise DesignAnalysisError(report)
        warnings.warn(
            f"design {engine.netlist.name!r} has analysis errors after edits: "
            f"{report.summary()}",
            AnalysisWarning,
            stacklevel=4,
        )


class GatspiSession(Session):
    """Session over a compiled :class:`GatspiEngine`."""

    def __init__(self, engine: GatspiEngine):
        super().__init__("gatspi", engine.netlist, engine.config)
        self.engine = engine
        self._last_edit_receipt: Optional[EditReceipt] = None

    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        return self.engine.simulate(stimulus, duration=duration)

    def _stream_batches(
        self,
        source: StreamingSourceEvents,
        duration: int,
        chunk_cycles: Optional[int],
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> Iterator[StreamBatch]:
        return self.engine.stream(
            source, duration, chunk_cycles, timings=timings, stats=stats
        )

    @property
    def last_edit_receipt(self) -> Optional[EditReceipt]:
        """Receipt of the most recent :meth:`rerun`/:meth:`apply_edits`."""
        return self._last_edit_receipt

    def apply_edits(self, edits: Sequence[Edit]) -> EditReceipt:
        with self._run_lock:
            receipt = self.engine.apply_edits(list(edits))
            self._last_edit_receipt = receipt
        return receipt

    def rerun(
        self,
        edits: Sequence[Edit],
        *,
        stimulus: Optional[Mapping[str, Waveform]] = None,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        with self._run_lock:
            receipt = self.engine.apply_edits(list(edits))
            try:
                _check_edit_analysis(self.engine, receipt)
                result = self.engine.resimulate(
                    receipt, stimulus, cycles=cycles, duration=duration
                )
            except Exception:
                # Leave the design exactly as before the failed rerun.
                self.engine.apply_edits(receipt.undo_edits)
                raise
            self._last_edit_receipt = receipt
            self._finalize_stats(result, result.stats.cycles)
            self._runs_completed += 1
        return result


@register_backend("gatspi")
class GatspiBackend(SimBackend):
    name = "gatspi"
    capabilities = BackendCapabilities(
        delay_aware=True,
        glitch_accurate=True,
        waveforms=True,
        phase_timings=True,
        description="Levelized two-pass GPU-style re-simulator (the paper's engine)",
    )

    def _prepare(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
        *,
        kernel: Optional[str] = None,
        restructure: Optional[str] = None,
        device: Optional[str] = None,
        **options: Any,
    ) -> GatspiSession:
        """Compile the design; ``kernel``/``restructure``/``device`` pick the
        executors.

        ``kernel="vector"`` (default) runs the level-batched struct-of-arrays
        kernel; ``kernel="scalar"`` runs the per-gate Python reference
        kernel.  ``restructure="vector"`` (default) runs the bulk-array
        restructure/load/readback pipeline; ``restructure="python"`` runs
        the per-(net, window) reference pipeline.  ``device`` selects the
        array backend (:mod:`repro.core.xp`) the vector data plane runs on
        (``"numpy"`` default, ``"torch"``/``"cupy"`` when installed; the
        oracle executors always run on numpy).  All combinations are
        bit-identical; the options override the config fields so
        equivalence harnesses can flip executors without rebuilding
        configs (e.g. the specs ``"gatspi:kernel=scalar"``,
        ``"gatspi:restructure=python"``, and ``"gatspi:device=torch"``).
        """
        _reject_unknown_options(self.name, options)
        overrides = {}
        if kernel is not None:
            overrides["kernel"] = kernel
        if restructure is not None:
            overrides["restructure"] = restructure
        if device is not None:
            overrides["device"] = device
        if overrides:
            config = (config or SimConfig()).with_updates(**overrides)
        engine = GatspiEngine(netlist, annotation=annotation, config=config)
        engine.compile()
        return GatspiSession(engine)


# ----------------------------------------------------------------------
# event
# ----------------------------------------------------------------------
class EventSession(Session):
    """Session over an elaborated :class:`EventDrivenSimulator`."""

    def __init__(self, simulator: EventDrivenSimulator):
        super().__init__("event", simulator.netlist, simulator.config)
        self.simulator = simulator

    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        return self.simulator.simulate(stimulus, duration=duration)


@register_backend("event")
class EventBackend(SimBackend):
    name = "event"
    capabilities = BackendCapabilities(
        delay_aware=True,
        glitch_accurate=True,
        waveforms=True,
        phase_timings=False,
        description="Inertial-delay event-driven baseline (commercial-simulator stand-in)",
    )

    def _prepare(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
        **options: Any,
    ) -> EventSession:
        _reject_unknown_options(self.name, options)
        simulator = EventDrivenSimulator(netlist, annotation=annotation, config=config)
        return EventSession(simulator)


# ----------------------------------------------------------------------
# zero-delay
# ----------------------------------------------------------------------
class ZeroDelaySession(Session):
    """Session over a levelized :class:`ZeroDelaySimulator`."""

    def __init__(self, simulator: ZeroDelaySimulator, config: SimConfig):
        super().__init__("zero-delay", simulator.netlist, config)
        self.simulator = simulator

    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        return self.simulator.simulate(
            stimulus, duration=duration, clock_period=self.clock_period
        )


@register_backend("zero-delay")
class ZeroDelayBackend(SimBackend):
    name = "zero-delay"
    capabilities = BackendCapabilities(
        delay_aware=False,
        glitch_accurate=False,
        waveforms=True,
        phase_timings=False,
        description="Zero-delay functional simulation (glitch-free reference activity)",
    )

    def _prepare(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
        **options: Any,
    ) -> ZeroDelaySession:
        # ``annotation`` is accepted for interface uniformity and ignored:
        # a zero-delay simulation has no delays to annotate.
        _reject_unknown_options(self.name, options)
        return ZeroDelaySession(ZeroDelaySimulator(netlist), config or SimConfig())


# ----------------------------------------------------------------------
# threaded-cpu
# ----------------------------------------------------------------------
class ThreadedCpuSession(Session):
    """Session over a :class:`PartitionedCpuSimulator`.

    The partition timing report of the most recent run is kept on
    :attr:`last_report` (the uniform ``run`` contract only returns the
    :class:`SimulationResult`).
    """

    def __init__(self, simulator: PartitionedCpuSimulator):
        super().__init__("threaded-cpu", simulator.netlist, simulator.config)
        self.simulator = simulator
        self.last_report: Optional[PartitionedRunReport] = None

    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        result, report = self.simulator.run(stimulus, duration=duration)
        self.last_report = report
        return result


@register_backend("threaded-cpu")
class ThreadedCpuBackend(SimBackend):
    name = "threaded-cpu"
    capabilities = BackendCapabilities(
        delay_aware=True,
        glitch_accurate=True,
        waveforms=True,
        phase_timings=True,
        description="Partitioned (OpenMP-style) CPU port of the GATSPI algorithm",
    )

    def _prepare(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
        *,
        num_workers: int = 32,
        barrier_overhead: float = 1e-5,
        **options: Any,
    ) -> ThreadedCpuSession:
        _reject_unknown_options(self.name, options)
        simulator = PartitionedCpuSimulator(
            netlist,
            annotation=annotation,
            config=config,
            num_workers=num_workers,
            barrier_overhead=barrier_overhead,
        )
        return ThreadedCpuSession(simulator)
