"""``repro.api``: the unified backend registry and session layer.

Every simulation engine in the repository is reachable through one
three-step flow, regardless of how it is implemented::

    from repro.api import get_backend

    backend = get_backend("gatspi")              # or "event", "zero-delay",
    session = backend.prepare(netlist,           # "threaded-cpu", ...
                              annotation=annotation, config=config)
    result = session.run(stimulus, cycles=100)   # -> SimulationResult

``prepare`` does all per-design compilation once; ``run`` may be called any
number of times with different stimuli (compile-once/simulate-many).  The
benchmark harness, the glitch-optimization flow, and the multi-device
distributor all dispatch through this registry, so swapping the engine under
any of them is a string change.

Register new engines with::

    @register_backend("my-backend")
    class MyBackend(SimBackend):
        ...
"""

from .backend import BackendCapabilities, SimBackend
from .registry import (
    BackendRegistryError,
    DuplicateBackendError,
    UnknownBackendError,
    available_backends,
    get_backend,
    parse_backend_spec,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from .session import Session

# Importing the adapters registers the four built-in backends; importing
# the sharded module registers the window-axis sharded fifth.
from . import adapters  # noqa: E402,F401
from . import sharded  # noqa: E402,F401
from .adapters import (
    EventBackend,
    EventSession,
    GatspiBackend,
    GatspiSession,
    ThreadedCpuBackend,
    ThreadedCpuSession,
    ZeroDelayBackend,
    ZeroDelaySession,
)
from .sharded import GatspiShardedBackend, RunSpec, ShardedGatspiSession

__all__ = [
    "BackendCapabilities",
    "SimBackend",
    "Session",
    "BackendRegistryError",
    "DuplicateBackendError",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "parse_backend_spec",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "EventBackend",
    "EventSession",
    "GatspiBackend",
    "GatspiSession",
    "GatspiShardedBackend",
    "RunSpec",
    "ShardedGatspiSession",
    "ThreadedCpuBackend",
    "ThreadedCpuSession",
    "ZeroDelayBackend",
    "ZeroDelaySession",
]
