"""The ``SimBackend`` protocol: how a simulation engine joins the system.

A backend is a stateless factory.  Its :meth:`SimBackend.prepare` method does
all per-design work exactly once (levelization, truth-table/delay-table
compilation, gate-state elaboration) and returns a
:class:`~repro.api.session.Session` that can be run many times over different
stimuli — the compile-once/simulate-many lifecycle the paper's deployment
flow depends on.

``prepare`` itself is a template method: it first runs design-rule analysis
(:mod:`repro.analysis`) according to ``SimConfig(analysis=...)`` — so a
malformed design is rejected with a structured
:class:`~repro.analysis.DesignAnalysisError` *before* any engine compiles
anything — then delegates the actual compilation to the backend-specific
:meth:`SimBackend._prepare` and attaches the analysis report to the
returned session.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, ClassVar, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.config import SimConfig
    from ..netlist import Netlist
    from ..sdf.annotate import DelayAnnotation
    from .session import Session


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can and cannot do, for flow-level dispatch.

    ``delay_aware``
        Gate/wire delays are honoured (a zero-delay functional backend is
        not), so toggle counts include glitch activity.
    ``glitch_accurate``
        Inertial pulse filtering (PATHPULSE, wire filtering) is modelled, so
        results are bit-exact against the event-driven oracle.
    ``waveforms``
        Full per-net waveforms can be returned (subject to config).
    ``phase_timings``
        :class:`~repro.core.results.PhaseTimings` is populated with the
        paper's Table 5 phase breakdown.
    """

    delay_aware: bool = True
    glitch_accurate: bool = True
    waveforms: bool = True
    phase_timings: bool = False
    description: str = ""


class SimBackend(abc.ABC):
    """Protocol implemented by every registered simulation backend."""

    #: Registry key; set by each concrete backend.
    name: ClassVar[str] = ""

    #: Feature summary; set by each concrete backend.
    capabilities: ClassVar[BackendCapabilities] = BackendCapabilities()

    def prepare(
        self,
        netlist: "Netlist",
        annotation: Optional["DelayAnnotation"] = None,
        config: Optional["SimConfig"] = None,
        **options: Any,
    ) -> "Session":
        """Compile ``netlist`` (+ optional SDF annotation and config) into a
        reusable :class:`Session`.

        Runs design-rule analysis first (per ``SimConfig(analysis=...)``;
        strict mode raises :class:`~repro.analysis.DesignAnalysisError`
        with the structured report before any compilation), then delegates
        to the backend-specific :meth:`_prepare`.  ``options`` are
        backend-specific knobs (e.g. ``num_workers`` for the partitioned
        CPU backend); unknown options must be rejected with a
        ``TypeError`` so typos do not pass silently.
        """
        from ..analysis.engine import analyze_for_prepare
        from ..core import compile_cache
        from ..core.config import SimConfig

        effective = config if config is not None else SimConfig()
        report = analyze_for_prepare(netlist, annotation, effective)
        if report is not None and report.fingerprint:
            # The analysis key's first component is the netlist content
            # fingerprint the engine's compile needs too; hand it off so
            # one prepare hashes the design once.  Scoped by the finally:
            # an unconsumed entry never outlives this call.
            compile_cache.seed_netlist_fingerprint(
                netlist, report.fingerprint.split("|", 1)[0]
            )
        try:
            session = self._prepare(
                netlist, annotation=annotation, config=config, **options
            )
        finally:
            compile_cache.discard_netlist_fingerprint(netlist)
        session.attach_analysis(report)
        return session

    @abc.abstractmethod
    def _prepare(
        self,
        netlist: "Netlist",
        annotation: Optional["DelayAnnotation"] = None,
        config: Optional["SimConfig"] = None,
        **options: Any,
    ) -> "Session":
        """Backend-specific compilation; analysis has already run."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
