"""The ``SimBackend`` protocol: how a simulation engine joins the system.

A backend is a stateless factory.  Its :meth:`SimBackend.prepare` method does
all per-design work exactly once (levelization, truth-table/delay-table
compilation, gate-state elaboration) and returns a
:class:`~repro.api.session.Session` that can be run many times over different
stimuli — the compile-once/simulate-many lifecycle the paper's deployment
flow depends on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.config import SimConfig
    from ..netlist import Netlist
    from ..sdf.annotate import DelayAnnotation
    from .session import Session


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can and cannot do, for flow-level dispatch.

    ``delay_aware``
        Gate/wire delays are honoured (a zero-delay functional backend is
        not), so toggle counts include glitch activity.
    ``glitch_accurate``
        Inertial pulse filtering (PATHPULSE, wire filtering) is modelled, so
        results are bit-exact against the event-driven oracle.
    ``waveforms``
        Full per-net waveforms can be returned (subject to config).
    ``phase_timings``
        :class:`~repro.core.results.PhaseTimings` is populated with the
        paper's Table 5 phase breakdown.
    """

    delay_aware: bool = True
    glitch_accurate: bool = True
    waveforms: bool = True
    phase_timings: bool = False
    description: str = ""


class SimBackend(abc.ABC):
    """Protocol implemented by every registered simulation backend."""

    #: Registry key; set by each concrete backend.
    name: ClassVar[str] = ""

    #: Feature summary; set by each concrete backend.
    capabilities: ClassVar[BackendCapabilities] = BackendCapabilities()

    @abc.abstractmethod
    def prepare(
        self,
        netlist: "Netlist",
        annotation: Optional["DelayAnnotation"] = None,
        config: Optional["SimConfig"] = None,
        **options,
    ) -> "Session":
        """Compile ``netlist`` (+ optional SDF annotation and config) into a
        reusable :class:`Session`.

        ``options`` are backend-specific knobs (e.g. ``num_workers`` for the
        partitioned CPU backend); unknown options must be rejected with a
        ``TypeError`` so typos do not pass silently.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
