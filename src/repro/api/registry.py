"""String-keyed registry of simulation backends.

The registry is the seam between *flows* (benchmark harness, glitch
optimization, multi-device distribution, user scripts) and *engines*: a flow
asks for a backend by name and receives an object implementing the
:class:`~repro.api.backend.SimBackend` protocol, never a concrete simulator
class.  New engines (sharded, cached, remote) plug in with
``@register_backend("my-name")`` without touching any flow code.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from .backend import SimBackend


class BackendRegistryError(Exception):
    """Base class for backend registry failures."""


class DuplicateBackendError(BackendRegistryError, ValueError):
    """Raised when a backend name is registered twice."""


class UnknownBackendError(BackendRegistryError, LookupError):
    """Raised when looking up a name no backend was registered under."""


_REGISTRY: Dict[str, SimBackend] = {}


def register_backend(
    name: str,
    backend: Optional[Union[SimBackend, type]] = None,
) -> Union[SimBackend, Callable[[type], type]]:
    """Register a backend under ``name``.

    Three call styles are supported::

        @register_backend("gatspi")          # class decorator; the class is
        class GatspiBackend(SimBackend): ...  # instantiated with no arguments

        register_backend("event", EventBackend)    # a class
        register_backend("event", EventBackend())  # an instance

    Duplicate names are rejected with :class:`DuplicateBackendError` so two
    plugins cannot silently shadow each other.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")

    if backend is None:

        def decorator(cls: type) -> type:
            register_backend(name, cls)
            return cls

        return decorator

    if name in _REGISTRY:
        raise DuplicateBackendError(
            f"backend {name!r} is already registered "
            f"(by {type(_REGISTRY[name]).__name__})"
        )
    instance = backend() if isinstance(backend, type) else backend
    _REGISTRY[name] = instance
    return instance


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (used by tests and plugins)."""
    if name not in _REGISTRY:
        raise UnknownBackendError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(available_backends()) or '(none)'}"
        )
    del _REGISTRY[name]


def get_backend(name: str) -> SimBackend:
    """Look up a backend by name.

    The error message of a failed lookup lists every registered backend,
    which makes typos in CLI/benchmark configuration self-explaining.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(available_backends()) or '(none)'}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends, sorted alphabetically."""
    return tuple(sorted(_REGISTRY))
