"""String-keyed registry of simulation backends.

The registry is the seam between *flows* (benchmark harness, glitch
optimization, multi-device distribution, user scripts) and *engines*: a flow
asks for a backend by name and receives an object implementing the
:class:`~repro.api.backend.SimBackend` protocol, never a concrete simulator
class.  New engines (sharded, cached, remote) plug in with
``@register_backend("my-name")`` without touching any flow code.

Backend *specs* extend plain names with prepare-time options so flow
configuration (benchmark CLIs, multi-device runs) can select engine variants
without code changes: ``"gatspi:kernel=scalar"`` resolves to the ``gatspi``
backend with ``prepare(..., kernel="scalar")``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, Union

from .backend import SimBackend


class BackendRegistryError(Exception):
    """Base class for backend registry failures."""


class DuplicateBackendError(BackendRegistryError, ValueError):
    """Raised when a backend name is registered twice."""


class UnknownBackendError(BackendRegistryError, LookupError):
    """Raised when looking up a name no backend was registered under."""


_REGISTRY: Dict[str, SimBackend] = {}


def register_backend(
    name: str,
    backend: Optional[Union[SimBackend, type]] = None,
) -> Union[SimBackend, Callable[[type], type]]:
    """Register a backend under ``name``.

    Three call styles are supported::

        @register_backend("gatspi")          # class decorator; the class is
        class GatspiBackend(SimBackend): ...  # instantiated with no arguments

        register_backend("event", EventBackend)    # a class
        register_backend("event", EventBackend())  # an instance

    Duplicate names are rejected with :class:`DuplicateBackendError` so two
    plugins cannot silently shadow each other.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")

    if backend is None:

        def decorator(cls: type) -> type:
            register_backend(name, cls)
            return cls

        return decorator

    if name in _REGISTRY:
        raise DuplicateBackendError(
            f"backend {name!r} is already registered "
            f"(by {type(_REGISTRY[name]).__name__})"
        )
    instance = backend() if isinstance(backend, type) else backend
    _REGISTRY[name] = instance
    return instance


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (used by tests and plugins)."""
    if name not in _REGISTRY:
        raise UnknownBackendError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(available_backends()) or '(none)'}"
        )
    del _REGISTRY[name]


def get_backend(name: str) -> SimBackend:
    """Look up a backend by name.

    The error message of a failed lookup lists every registered backend,
    which makes typos in CLI/benchmark configuration self-explaining.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(available_backends()) or '(none)'}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends, sorted alphabetically."""
    return tuple(sorted(_REGISTRY))


def _coerce_option(value: str) -> Any:
    """Best-effort typing of an option value parsed from a spec string."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_backend_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name:key=value,key=value"`` into a name and options.

    A bare name parses to ``(name, {})``.  Values are coerced to
    ``bool``/``int``/``float`` when they look like one, otherwise kept as
    strings — e.g. ``"gatspi:kernel=scalar"`` or
    ``"threaded-cpu:num_workers=8"``.
    """
    if not spec or not isinstance(spec, str):
        raise ValueError("backend spec must be a non-empty string")
    name, _, option_text = spec.partition(":")
    options: Dict[str, Any] = {}
    if option_text:
        for item in option_text.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key:
                raise ValueError(
                    f"malformed backend option {item!r} in spec {spec!r}; "
                    f"expected key=value"
                )
            options[key.strip()] = _coerce_option(value.strip())
    return name, options


def resolve_backend(spec: str) -> Tuple[SimBackend, Dict[str, Any]]:
    """Look up a backend from a spec string, returning prepare options too.

    ``resolve_backend("gatspi:kernel=scalar")`` returns the ``gatspi``
    backend plus ``{"kernel": "scalar"}`` to splat into ``prepare``.
    """
    name, options = parse_backend_spec(spec)
    return get_backend(name), options
