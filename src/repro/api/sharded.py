"""The ``gatspi-sharded`` backend: window-axis sharding behind the registry.

The paper's multi-GPU strategy (Section 5) partitions the cycle-parallel
window axis across devices.  This backend is that strategy as a first-class
:class:`~repro.api.backend.SimBackend`: one ``run()`` carves the horizon
into contiguous shares (via the same :mod:`~repro.core.sharding` planner
``simulate_multi_gpu`` uses), executes each share on a worker-thread pool —
one prepared ``gatspi`` session per worker, all sharing one compile through
the process-wide compile cache — and merges the per-share results (toggle
counts, stats, stitched waveforms) into a result **bit-identical** to a
single-session ``gatspi`` run.

Because it implements the standard backend protocol, every flow drives it
by name: ``bench/runner.py`` benchmarks it, the differential suite holds
it to the single-session pipeline, and :mod:`repro.serve` serves it, e.g.
with the spec ``"gatspi-sharded:shards=4"``.

Two design decisions matter for throughput:

* **Adaptive shard width.**  Partitioning pays real per-share costs (extra
  level batches, settle margins, per-net merge work) that only *parallel*
  execution can win back.  ``shards`` is therefore a cap: unless a worker
  count is pinned explicitly, the session partitions only as wide as the
  machine can actually execute in parallel (``os.cpu_count()``), down to a
  zero-overhead single-session passthrough on one core — the no-regression
  guarantee the serving benchmark enforces.  Passing ``workers=N``
  explicitly forces an ``N``-wide pool with the full requested partition
  count (the differential suite uses this to exercise real sharding on any
  machine).
* **Batched runs** (:meth:`ShardedGatspiSession.run_many`).  Requests for
  one compiled design can be *fused along the time axis* — laid out back
  to back with settle pads, executed as one engine run, and sliced apart
  bit-exactly (:func:`~repro.core.sharding.plan_fusion` /
  :func:`~repro.core.sharding.fuse_stimuli` /
  :func:`~repro.core.sharding.split_fused_waveform`).  One fused run pays
  the engine's per-level-batch and per-net fixed costs once per *batch*
  instead of once per *request*, which is what makes micro-batched serving
  (:mod:`repro.serve`) faster than serializing single-session runs even on
  one core.

Shares normally execute on worker *threads* — the numpy kernels release
the GIL only partially, so thread shards stop scaling once the Python-side
scheduling work saturates one core.  ``workers="process"`` (spec
``"gatspi-sharded:shards=4,workers=process"``; ``"process:N"`` pins the
pool width) runs each share in a separate spawned OS process instead.  The
packed design tensors are exported once into a
``multiprocessing.shared_memory`` segment (:mod:`repro.core.shm`) and every
worker attaches them read-only, so the per-worker cost is one levelize plus
zero-copy views — not a duplicate of the design tensors.  Workers rebuild a
normal ``gatspi`` session around the attached tensors through the regular
compile path, so process shards stay bit-identical to thread shards and to
single-session runs.  Process sessions are host-only (``device="numpy"``)
and do not support in-place edits (:meth:`ShardedGatspiSession.apply_edits`
/ :meth:`~ShardedGatspiSession.rerun` raise); call
:meth:`ShardedGatspiSession.close` (or drop the session) to shut the pool
down and unlink the shared segment.

Sharded runs keep the *total* cycle parallelism at the configured value:
each share runs with ``ceil(cycle_parallelism / shards)`` windows,
mirroring the paper's ``32 * n`` windows across ``n`` GPUs.  Each share's
stimulus is extended backwards by the engine's settle margin so events
still propagating across a shard boundary are reproduced exactly; the
margin region is trimmed from the share outputs before stitching, exactly
as the engine trims its own windows.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core import shm as design_shm
from ..core.config import SimConfig
from ..core.contract import (
    StimulusError,
    fanin_weighted_toggles,
    normalize_horizon,
    validate_stimulus,
)
from ..core.edits import Edit, EditReceipt
from ..core.engine import RETAINED_RUN_CAPACITY, _RetainedRun, _reorder_span
from ..core.restructure import (
    SourceEvents,
    StreamingSourceEvents,
    slice_stimulus,
)
from ..core.results import (
    PhaseTimings,
    SimulationResult,
    SimulationStats,
    StreamBatch,
)
from ..core.sharding import (
    FusedLayout,
    Shard,
    fuse_stimuli,
    merge_shard_waveforms,
    plan_fusion,
    plan_shards,
    split_fused_waveform,
    trim_shard_waveform,
)
from ..core.waveform import Waveform
from ..netlist import Netlist
from ..sdf.annotate import DelayAnnotation
from .backend import BackendCapabilities, SimBackend
from .registry import register_backend
from .session import Session


@dataclass(frozen=True)
class RunSpec:
    """One request of a batched :meth:`ShardedGatspiSession.run_many`."""

    stimulus: Mapping[str, Waveform]
    cycles: Optional[int] = None
    duration: Optional[int] = None


# ----------------------------------------------------------------------
# Process-shard worker plumbing
# ----------------------------------------------------------------------
#: Per-worker-process state: the attached shared-memory design and the
#: ``gatspi`` session rebuilt around it.  Populated once by the pool
#: initializer; worker processes are single-threaded, so no lock.
_WORKER_STATE: Dict[str, Any] = {}


def _process_worker_init(
    netlist: Netlist,
    annotation: Optional[DelayAnnotation],
    inner_config: SimConfig,
    manifest: "design_shm.DesignManifest",
) -> None:
    """Initializer of one spawned shard worker.

    Attaches the parent's shared design tensors and compiles a normal
    ``gatspi`` engine around them (``compile(packed=...)`` skips only the
    pack/upload step), so shard execution in the worker runs the exact
    code path thread shards run in the parent.
    """
    from ..core.engine import GatspiEngine
    from .adapters import GatspiSession

    attachment = design_shm.attach_packed_design(manifest)
    engine = GatspiEngine(netlist, annotation=annotation, config=inner_config)
    engine.compile(packed=attachment.packed)
    # The attachment must outlive the engine: the packed tensors are
    # zero-copy views into its mapping.
    _WORKER_STATE["attachment"] = attachment
    _WORKER_STATE["session"] = GatspiSession(engine)


def _process_run_shard(
    stimulus: Mapping[str, Waveform], duration: int
) -> SimulationResult:
    """Run one share on this worker's session (executed in the worker)."""
    session = _WORKER_STATE["session"]
    return session.run(stimulus, duration=duration)


def _process_run_stream_chunk(
    span: "SourceEvents",
    chunk_index: int,
    chunk_start: int,
    chunk_end: int,
    duration: int,
) -> Tuple["StreamBatch", SimulationStats, PhaseTimings]:
    """Execute one streaming chunk on this worker's engine.

    The worker keeps one private stream pool recycled across chunks
    (engine state), so its RSS stays flat over arbitrarily long runs; the
    per-chunk stats/timings ride back with the batch so the parent can
    merge serial-equivalent costs exactly like thread mode.
    """
    session = _WORKER_STATE["session"]
    timings = PhaseTimings()
    stats = SimulationStats(segments=0)
    batch = session.engine.run_stream_chunk(
        span,
        chunk_index,
        chunk_start,
        chunk_end,
        duration,
        timings=timings,
        stats=stats,
    )
    return batch, stats, timings


def _release_process_resources(
    pool: Optional[ProcessPoolExecutor],
    shared: Optional["design_shm.SharedDesign"],
) -> None:
    """Shut the worker pool down, then unlink the shared segment.

    Module-level so ``weakref.finalize`` can hold it without keeping the
    session alive; ordering matters — unlinking while a spawning worker
    has yet to attach would break its initializer.
    """
    if pool is not None:
        pool.shutdown(wait=True)
    if shared is not None:
        shared.close()


class ShardedGatspiSession(Session):
    """One compiled design, simulated in window-axis shards on a pool.

    Holds one inner ``gatspi`` session per worker; all of them share one
    compile via the content-fingerprint compile cache, so preparing this
    session costs a single compilation regardless of the worker count.
    Inner sessions are thread-safe (each serializes its own runs), and a
    share is pinned to exactly one inner session, so concurrent shares
    never contend on engine state.
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation],
        config: SimConfig,
        shards: int,
        workers: Optional[int],
        worker_mode: str = "thread",
    ):
        super().__init__("gatspi-sharded", netlist, config)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process', got {worker_mode!r}"
            )
        if worker_mode == "process" and config.effective_device() != "numpy":
            raise ValueError(
                "workers='process' requires the numpy device: the design "
                "tensors are shared between processes via host shared "
                "memory, which device arrays cannot live in"
            )
        self._worker_mode = worker_mode
        self._annotation = annotation
        self._requested_shards = shards
        if config.window_overlap is not None:
            # A user-pinned settle margin may be smaller than the critical
            # path, in which case partitioning is not exactness-preserving
            # (the same reason run_many refuses to fuse): fall back to a
            # single full-range shard so the bit-identity contract against
            # single-session gatspi holds for every config.
            self._shards = 1
            self._workers = 1
        elif workers is None:
            # Adaptive width: never partition wider than the machine can
            # execute in parallel — per-share costs without parallel payoff
            # would regress straight-line throughput.
            self._workers = max(1, min(shards, os.cpu_count() or 1))
            self._shards = self._workers
        else:
            self._workers = min(workers, shards)
            self._shards = shards
        # Keep the *total* window count at the configured parallelism:
        # each share gets its slice of the cycle-parallel axis.
        inner_parallelism = max(1, -(-config.cycle_parallelism // self._shards))
        # Shares always keep waveforms internally: exact merging trims and
        # stitches share outputs, which needs the per-share waveforms even
        # when the caller only wants toggle counts.  Consequence: with
        # ``store_waveforms=False`` the merged counts are the stitched-exact
        # (waveform-mode) counts — seam toggles counted once — not the
        # engine's counts-only shortcut of summing per-window trimmed counts.
        # ``analysis="off"``: the outer (template-method) ``prepare`` already
        # analyzed the design once under the caller's mode; re-running it per
        # inner worker would duplicate warnings without new information.
        self._inner_config = config.with_updates(
            cycle_parallelism=inner_parallelism,
            store_waveforms=True,
            analysis="off",
        )
        from .registry import get_backend  # local: avoids import cycles

        backend = get_backend("gatspi")
        # Process mode keeps exactly one in-parent session: it serves the
        # single-shard passthrough, the merge metadata, and the compiled
        # tensors the shared segment is exported from; the shard-executing
        # sessions live in the worker processes instead.
        inner_count = 1 if worker_mode == "process" else self._workers
        self._inner_sessions = [
            backend.prepare(netlist, annotation=annotation, config=self._inner_config)
            for _ in range(inner_count)
        ]
        engine = self._inner_sessions[0].engine
        self._overlap = engine.window_overlap
        self._gate_output_nets = tuple(
            gate.output_net for gate in engine.compiled.gates.values()
        )
        # Incremental rerun keeps full-range *merged* results at this level
        # (keyed by the first engine's journal fingerprint); the inner
        # engines must not retain their per-share slices, which are useless
        # as rerun baselines and would pin share-sized waveform sets.
        for inner in self._inner_sessions:
            inner.engine.retain_results = False
        self._retained: "OrderedDict[str, _RetainedRun]" = OrderedDict()
        self._last_edit_receipt: Optional[EditReceipt] = None
        # Session-lifetime worker pool, created lazily by the first
        # multi-shard run (serving hot path: no per-run thread spawn/join)
        # and shut down when the session is garbage collected.
        self._pool: Optional[ThreadPoolExecutor] = None
        # Process-mode resources, also created lazily by the first
        # multi-shard run: the spawned worker pool and the shared-memory
        # export of the packed design every worker attaches.  Torn down by
        # close() or, failing that, the finalizer at garbage collection.
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._shared_design: Optional[design_shm.SharedDesign] = None
        self._process_finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Effective partition width of every run (adaptive, see module)."""
        return self._shards

    @property
    def requested_shards(self) -> int:
        """The ``shards`` cap the session was prepared with."""
        return self._requested_shards

    @property
    def worker_count(self) -> int:
        """Worker threads or processes shares execute on."""
        return self._workers

    @property
    def worker_mode(self) -> str:
        """``"thread"`` (default) or ``"process"`` (GIL-free shards)."""
        return self._worker_mode

    @property
    def compile_cache_hit(self) -> bool:
        """Whether the *first* inner prepare reused a cached compile."""
        return self._inner_sessions[0].engine.compile_cache_hit

    # ------------------------------------------------------------------
    # Lifecycle (process mode)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release process-shard resources: pool shutdown + segment unlink.

        Idempotent; a no-op for thread-mode sessions (their pool is torn
        down by the garbage-collection finalizer) and for process sessions
        that never ran multi-shard.  After ``close()`` the session still
        serves single-shard passthrough runs on the in-parent session.
        """
        finalizer = self._process_finalizer
        self._process_pool = None
        self._shared_design = None
        self._process_finalizer = None
        if finalizer is not None:
            finalizer()

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        """Export the packed design and spawn the worker pool (once).

        Spawn (not fork) context: the serving front end runs sessions on
        live threads holding locks, which a forked child would inherit
        mid-flight.  Workers attach the shared segment in their
        initializer, so the export must stay linked until ``close()``.
        """
        if self._process_pool is None:
            engine = self._inner_sessions[0].engine
            self._shared_design = design_shm.export_packed_design(
                engine.packed_design
            )
            self._process_pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_process_worker_init,
                initargs=(
                    self._netlist,
                    self._annotation,
                    self._inner_config,
                    self._shared_design.manifest,
                ),
            )
            self._process_finalizer = weakref.finalize(
                self,
                _release_process_resources,
                self._process_pool,
                self._shared_design,
            )
        return self._process_pool

    # ------------------------------------------------------------------
    # Single-request execution
    # ------------------------------------------------------------------
    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        result = self._execute(stimulus, duration)
        # Retain before the waveform clear below: rerun baselines need the
        # full merged waveforms (retention is skipped entirely when the
        # session never stores them, so the clear cannot corrupt the store).
        self._retain(stimulus, duration, result)
        if not self._config.store_waveforms:
            result.waveforms.clear()
        return result

    def _retain(
        self,
        stimulus: Mapping[str, Waveform],
        duration: int,
        result: SimulationResult,
    ) -> None:
        if not self._config.store_waveforms:
            return
        key = self._inner_sessions[0].engine.journal.fingerprint()
        self._retained[key] = _RetainedRun(
            stimulus=dict(stimulus), duration=duration, result=result
        )
        self._retained.move_to_end(key)
        while len(self._retained) > RETAINED_RUN_CAPACITY:
            self._retained.popitem(last=False)

    # ------------------------------------------------------------------
    # Incremental re-simulation
    # ------------------------------------------------------------------
    @property
    def last_edit_receipt(self) -> Optional[EditReceipt]:
        """Receipt of the most recent :meth:`rerun`/:meth:`apply_edits`."""
        return self._last_edit_receipt

    def _sync_inner_engines(self) -> None:
        """Propagate the first engine's post-edit state to every worker."""
        engine0 = self._inner_sessions[0].engine
        for inner in self._inner_sessions[1:]:
            inner.engine.adopt(engine0)
        self._overlap = engine0.window_overlap
        self._gate_output_nets = tuple(
            gate.output_net for gate in engine0.compiled.gates.values()
        )

    def _reject_edits_in_process_mode(self) -> None:
        if self._worker_mode == "process":
            # Worker engines live in other processes; there is no channel
            # to re-sync their compiled state after an in-place edit, and
            # silently editing only the parent would break bit-identity.
            raise NotImplementedError(
                "process-shard sessions do not support in-place edits; "
                "prepare a new session for the edited design "
                "(or use workers=thread)"
            )

    def apply_edits(self, edits: Sequence[Edit]) -> EditReceipt:
        self._reject_edits_in_process_mode()
        with self._run_lock:
            receipt = self._inner_sessions[0].engine.apply_edits(list(edits))
            self._sync_inner_engines()
            self._last_edit_receipt = receipt
        return receipt

    def rerun(
        self,
        edits: Sequence[Edit],
        *,
        stimulus: Optional[Mapping[str, Waveform]] = None,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        from .adapters import _check_edit_analysis

        self._reject_edits_in_process_mode()
        with self._run_lock:
            engine0 = self._inner_sessions[0].engine
            receipt = engine0.apply_edits(list(edits))
            try:
                _check_edit_analysis(engine0, receipt, self._config.analysis)
                retained = self._retained.get(receipt.parent_journal)
                if stimulus is None and retained is not None:
                    stimulus = retained.stimulus
                if duration is None and cycles is None and retained is not None:
                    duration = retained.duration
                result = engine0.resimulate(
                    receipt,
                    stimulus,
                    cycles=cycles,
                    duration=duration,
                    previous=retained.result if retained is not None else None,
                )
            except Exception:
                engine0.apply_edits(receipt.undo_edits)
                self._sync_inner_engines()
                raise
            self._sync_inner_engines()
            self._last_edit_receipt = receipt
            if stimulus is not None:
                self._retain(stimulus, result.duration, result)
            if not self._config.store_waveforms:
                result.waveforms.clear()
            self._finalize_stats(result, result.stats.cycles)
            self._runs_completed += 1
        return result

    def _execute(
        self, stimulus: Mapping[str, Waveform], duration: int
    ) -> SimulationResult:
        """Sharded execution; the result always carries waveforms."""
        plan = plan_shards(duration, self._shards, overlap=self._overlap)
        if len(plan) == 1:
            # Zero-overhead passthrough: a single full-range shard is
            # exactly a single-session run (the inner config keeps
            # waveforms, which `_run` drops again if asked to).
            return self._inner_sessions[0].run(stimulus, duration=duration)
        share_results = self._run_shards(stimulus, plan)
        return self._merge(stimulus, plan, share_results, duration)

    def _run_shards(
        self, stimulus: Mapping[str, Waveform], plan: Sequence[Shard]
    ) -> List[SimulationResult]:
        """Execute every shard, fanned out across the inner sessions.

        Shard ``k`` runs on inner session ``k % workers``; with more
        shards than workers the extra shards queue up behind their
        session's lock, bounding concurrency at the worker count.

        In process mode each share is sliced here in the parent (the same
        slice thread mode takes) and submitted to the spawned pool; the
        executor queues excess shares behind the worker count, and results
        come back in plan order, so merging is identical to thread mode —
        which is what keeps the two modes bit-identical.
        """
        if self._worker_mode == "process":
            pool = self._ensure_process_pool()
            futures = [
                pool.submit(
                    _process_run_shard,
                    slice_stimulus(stimulus, shard.ext_start, shard.end),
                    shard.run_duration,
                )
                for shard in plan
            ]
            return [future.result() for future in futures]

        def run_shard(shard: Shard) -> SimulationResult:
            session = self._inner_sessions[shard.index % self._workers]
            share_stimulus = slice_stimulus(stimulus, shard.ext_start, shard.end)
            return session.run(share_stimulus, duration=shard.run_duration)

        if self._workers == 1:
            return [run_shard(shard) for shard in plan]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="gatspi-shard"
            )
            weakref.finalize(
                self, ThreadPoolExecutor.shutdown, self._pool, wait=False
            )
        return list(self._pool.map(run_shard, plan))

    # ------------------------------------------------------------------
    # Streaming replay (chunk pipelining across the worker pool)
    # ------------------------------------------------------------------
    def _stream_batches(
        self,
        source: StreamingSourceEvents,
        duration: int,
        chunk_cycles: Optional[int],
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> Iterator[StreamBatch]:
        """Stream chunks through the worker pool, yielding in chunk order.

        Streaming parallelism is *pipelined*, not partitioned: the parent
        owns the stimulus stream (spans must be pulled sequentially), so
        it pulls each chunk's span, ships it to a worker
        (:meth:`~repro.core.engine.GatspiEngine.run_stream_chunk`), and
        keeps up to ``workers`` chunks in flight — thread mode pins chunk
        ``k`` to inner session ``k % workers`` so one engine never runs
        two chunks at once, process mode lets the spawned pool schedule
        freely (every worker keeps its own recycled stream pool).  Batches
        are yielded strictly in chunk order, which the online accumulator
        requires; each worker derives its own window geometry from the
        chunk span, exact under the shared critical-path settle margin.
        """
        engine0 = self._inner_sessions[0].engine
        engine0._check_streamable()
        plan0 = engine0._full_plan()
        perm = engine0._source_permutation(source, plan0)
        if duration < 1:
            raise ValueError("duration must be positive")
        config = self._config
        if chunk_cycles is None:
            chunk_cycles = config.stream_chunk_cycles
        if chunk_cycles is None:
            chunk_cycles = 32 * config.cycle_parallelism
        if chunk_cycles < 1:
            raise ValueError("chunk_cycles must be at least 1")
        chunk_duration = chunk_cycles * config.clock_period
        stats.streamed = True
        stats.segments = 0
        stats.shards = self._workers
        lookback = max(self._overlap, 1)

        def pulled_spans() -> Iterator[Tuple[int, int, int, SourceEvents]]:
            chunk_start = 0
            chunk_index = 0
            while chunk_start < duration:
                chunk_end = min(chunk_start + chunk_duration, duration)
                extended_lo = max(0, chunk_start - lookback)
                start = time.perf_counter()
                span = source.span_events(
                    extended_lo, chunk_end, retire_before=extended_lo
                )
                if perm is not None:
                    span = _reorder_span(span, perm)
                timings.restructure += time.perf_counter() - start
                yield chunk_index, chunk_start, chunk_end, span
                chunk_start = chunk_end
                chunk_index += 1

        def run_chunk_inline(
            job: Tuple[int, int, int, SourceEvents]
        ) -> Tuple[StreamBatch, SimulationStats, PhaseTimings]:
            chunk_index, chunk_start, chunk_end, span = job
            inner = self._inner_sessions[chunk_index % len(self._inner_sessions)]
            chunk_timings = PhaseTimings()
            chunk_stats = SimulationStats(segments=0)
            with inner._run_lock:
                batch = inner.engine.run_stream_chunk(
                    span,
                    chunk_index,
                    chunk_start,
                    chunk_end,
                    duration,
                    timings=chunk_timings,
                    stats=chunk_stats,
                )
            return batch, chunk_stats, chunk_timings

        width = self._workers
        submit = None
        if width > 1 and self._worker_mode == "process":
            pool = self._ensure_process_pool()
            submit = lambda job: pool.submit(  # noqa: E731
                _process_run_stream_chunk, job[3], job[0], job[1], job[2], duration
            )
        elif width > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="gatspi-shard"
                )
                weakref.finalize(
                    self, ThreadPoolExecutor.shutdown, self._pool, wait=False
                )
            submit = lambda job: self._pool.submit(run_chunk_inline, job)  # noqa: E731

        def fold(
            outcome: Tuple[StreamBatch, SimulationStats, PhaseTimings]
        ) -> StreamBatch:
            batch, chunk_stats, chunk_timings = outcome
            self._merge_chunk_stats(stats, timings, chunk_stats, chunk_timings)
            return batch

        if submit is None:
            for job in pulled_spans():
                yield fold(run_chunk_inline(job))
            return
        pending: "deque" = deque()
        for job in pulled_spans():
            pending.append(submit(job))
            if len(pending) >= width:
                yield fold(pending.popleft().result())
        while pending:
            yield fold(pending.popleft().result())

    @staticmethod
    def _merge_chunk_stats(
        stats: SimulationStats,
        timings: PhaseTimings,
        chunk_stats: SimulationStats,
        chunk_timings: PhaseTimings,
    ) -> None:
        """Fold one chunk's workload stats into the run totals.

        Additive counters sum, high-water marks take the max, and the
        execution descriptors are adopted from the first chunk — the same
        serial-equivalent accounting :meth:`_merge` applies to shards.
        """
        if stats.chunks == 0:
            stats.gate_count = chunk_stats.gate_count
            stats.levels = chunk_stats.levels
            stats.widest_level = chunk_stats.widest_level
            stats.kernel_mode = chunk_stats.kernel_mode
            stats.restructure_mode = chunk_stats.restructure_mode
            stats.device = chunk_stats.device
        stats.windows += chunk_stats.windows
        stats.segments += chunk_stats.segments
        stats.chunks += chunk_stats.chunks
        stats.kernel_invocations += chunk_stats.kernel_invocations
        stats.level_batches += chunk_stats.level_batches
        stats.pool_words_used = max(
            stats.pool_words_used, chunk_stats.pool_words_used
        )
        stats.max_batch_tasks = max(
            stats.max_batch_tasks, chunk_stats.max_batch_tasks
        )
        timings.host_to_device += chunk_timings.host_to_device
        timings.scheduling += chunk_timings.scheduling
        timings.kernel += chunk_timings.kernel
        timings.readback += chunk_timings.readback
        timings.restructure += chunk_timings.restructure
        timings.dump += chunk_timings.dump

    def _merge(
        self,
        stimulus: Mapping[str, Waveform],
        plan: Sequence[Shard],
        share_results: Sequence[SimulationResult],
        duration: int,
    ) -> SimulationResult:
        """Merge per-shard results exactly like a single-session run.

        Source nets take their counts (and waveforms) from the original
        stimulus; gate outputs are trimmed to their shard's owned range
        and stitched through the engine's seam rules.  Phase timings are
        summed across shards — the serial-equivalent cost, mirroring
        ``MultiGpuResult.serial_kernel_runtime`` (wall-clock parallelism
        is measured by callers, e.g. the serving benchmark).
        """
        merge_start = time.perf_counter()
        timings = PhaseTimings()
        for share in share_results:
            timings.restructure += share.timings.restructure
            timings.host_to_device += share.timings.host_to_device
            timings.scheduling += share.timings.scheduling
            timings.kernel += share.timings.kernel
            timings.readback += share.timings.readback
            timings.dump += share.timings.dump

        first = share_results[0].stats
        stats = SimulationStats(
            gate_count=first.gate_count,
            levels=first.levels,
            widest_level=first.widest_level,
            windows=sum(share.stats.windows for share in share_results),
            segments=sum(share.stats.segments for share in share_results),
            kernel_invocations=sum(
                share.stats.kernel_invocations for share in share_results
            ),
            pool_words_used=max(
                share.stats.pool_words_used for share in share_results
            ),
            kernel_mode=first.kernel_mode,
            restructure_mode=first.restructure_mode,
            device=first.device,
            level_batches=sum(share.stats.level_batches for share in share_results),
            max_batch_tasks=max(
                share.stats.max_batch_tasks for share in share_results
            ),
            shards=len(plan),
        )
        result = SimulationResult(duration=duration, timings=timings, stats=stats)

        for net in self._netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            result.waveforms[net] = wave

        total_output_transitions = 0
        for net in self._gate_output_nets:
            trimmed = [
                trim_shard_waveform(
                    share.waveforms[net], shard, duration, self._overlap
                )
                for shard, share in zip(plan, share_results)
            ]
            stitched = merge_shard_waveforms(plan, trimmed)
            result.waveforms[net] = stitched
            count = stitched.toggle_count()
            result.toggle_counts[net] = count
            total_output_transitions += count
        stats.output_transitions = total_output_transitions
        stats.input_events = fanin_weighted_toggles(
            self._netlist, result.toggle_counts
        )
        timings.readback += time.perf_counter() - merge_start
        return result

    # ------------------------------------------------------------------
    # Batched execution (time-axis request fusion)
    # ------------------------------------------------------------------
    def run_many(self, requests: Sequence[RunSpec]) -> List[SimulationResult]:
        """Run a batch of requests, fused into one engine run when safe.

        Results are returned in request order and are bit-identical to
        calling :meth:`run` once per request.  Fusion applies when the
        settle margin is the engine's own critical-path estimate (the
        default); with a user-pinned ``window_overlap`` — whose exactness
        the engine cannot vouch for across arbitrary partitions — or a
        fused horizon that would violate the ``EOW`` sentinel headroom,
        the batch transparently falls back to sequential runs.

        Fused phase timings and workload stats are attributed evenly
        across the batch (the engine executed them jointly); counter and
        result semantics otherwise match :meth:`run` exactly.
        """
        if not requests:
            return []
        normalized: List[Tuple[int, int, Mapping[str, Waveform]]] = []
        for request in requests:
            cycles, duration = normalize_horizon(
                request.cycles, request.duration, self.clock_period
            )
            validate_stimulus(self._netlist, request.stimulus)
            normalized.append((cycles, duration, request.stimulus))

        fusable = (
            len(requests) > 1
            and self._overlap > 0
            and self._config.window_overlap is None
        )
        if fusable:
            with self._run_lock:
                results = self._run_fused(normalized)
            if results is not None:
                return results
        return [
            self.run(stimulus, cycles=cycles, duration=duration)
            for cycles, duration, stimulus in normalized
        ]

    def _run_fused(
        self, normalized: Sequence[Tuple[int, int, Mapping[str, Waveform]]]
    ) -> Optional[List[SimulationResult]]:
        """One fused engine run for the whole batch (or ``None`` to punt)."""
        layout = plan_fusion([d for _, d, _ in normalized], self._overlap)
        nets = tuple(self._netlist.source_nets())
        fused_stimulus = fuse_stimuli(
            nets, [stimulus for _, _, stimulus in normalized], layout
        )
        try:
            fused = self._execute(fused_stimulus, layout.fused_duration)
        except StimulusError:
            # The fused horizon ran out of EOW sentinel headroom; the
            # caller serializes instead.
            return None
        batch = layout.batch_size
        results: List[SimulationResult] = []
        for index, (cycles, duration, stimulus) in enumerate(normalized):
            results.append(
                self._split_fused_result(
                    fused, layout, index, cycles, duration, stimulus, batch
                )
            )
        # Counted only once the whole batch split successfully, so a
        # mid-split failure (whose caller will retry serially) cannot
        # leave partial increments behind.
        self._runs_completed += len(results)
        return results

    def _split_fused_result(
        self,
        fused: SimulationResult,
        layout: FusedLayout,
        index: int,
        cycles: int,
        duration: int,
        stimulus: Mapping[str, Waveform],
        batch: int,
    ) -> SimulationResult:
        """Slice one request's standalone-equivalent result out of a fused run."""
        share = 1.0 / batch
        timings = PhaseTimings(
            restructure=fused.timings.restructure * share,
            host_to_device=fused.timings.host_to_device * share,
            scheduling=fused.timings.scheduling * share,
            kernel=fused.timings.kernel * share,
            readback=fused.timings.readback * share,
            dump=fused.timings.dump * share,
        )
        stats = SimulationStats(
            gate_count=fused.stats.gate_count,
            levels=fused.stats.levels,
            widest_level=fused.stats.widest_level,
            windows=fused.stats.windows // batch,
            segments=max(1, fused.stats.segments // batch),
            cycles=cycles,
            kernel_invocations=fused.stats.kernel_invocations // batch,
            pool_words_used=fused.stats.pool_words_used,
            kernel_mode=fused.stats.kernel_mode,
            restructure_mode=fused.stats.restructure_mode,
            device=fused.stats.device,
            level_batches=fused.stats.level_batches // batch,
            max_batch_tasks=fused.stats.max_batch_tasks,
            shards=fused.stats.shards,
            fused_requests=batch,
        )
        result = SimulationResult(duration=duration, timings=timings, stats=stats)
        store_waveforms = self._config.store_waveforms
        for net in self._netlist.source_nets():
            wave = stimulus[net]
            result.toggle_counts[net] = wave.toggles_in(0, duration - 1)
            if store_waveforms:
                result.waveforms[net] = wave
        total_output_transitions = 0
        for net in self._gate_output_nets:
            sliced = split_fused_waveform(fused.waveforms[net], layout, index)
            if store_waveforms:
                result.waveforms[net] = sliced
            count = sliced.toggle_count()
            result.toggle_counts[net] = count
            total_output_transitions += count
        stats.output_transitions = total_output_transitions
        stats.input_events = fanin_weighted_toggles(
            self._netlist, result.toggle_counts
        )
        return result


@register_backend("gatspi-sharded")
class GatspiShardedBackend(SimBackend):
    """Window-axis sharded gatspi execution behind the standard protocol."""

    name = "gatspi-sharded"
    capabilities = BackendCapabilities(
        delay_aware=True,
        glitch_accurate=True,
        waveforms=True,
        phase_timings=True,
        description=(
            "gatspi with the window axis sharded across a worker pool and "
            "batched-run fusion; bit-identical to single-session gatspi"
        ),
    )

    def _prepare(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
        *,
        shards: int = 4,
        workers: Optional[Any] = None,
        kernel: Optional[str] = None,
        restructure: Optional[str] = None,
        device: Optional[str] = None,
        **options: Any,
    ) -> ShardedGatspiSession:
        """Compile once, ready to simulate in window-axis shares.

        ``shards`` caps the partition count of every subsequent ``run``
        (spec syntax ``"gatspi-sharded:shards=4"``).  By default the
        session partitions only as wide as ``os.cpu_count()`` allows
        (down to a single-session passthrough on one core); pass
        ``workers=N`` to pin an ``N``-wide pool and force the full
        requested partition count.  ``workers="process"`` runs shares on
        spawned worker *processes* instead of threads (GIL-free), with
        the packed design tensors shared read-only via
        :mod:`repro.core.shm`; ``workers="process:N"`` additionally pins
        the pool width and forces the full partition count, exactly like
        an integer ``workers=N``.  A config with a user-pinned
        ``window_overlap`` always degrades to the single-shard
        passthrough — partitioning under a margin the engine cannot
        vouch for would break the bit-identity contract.  ``kernel`` /
        ``restructure`` / ``device`` select the inner executors exactly
        as for ``gatspi``.
        """
        from .adapters import _reject_unknown_options

        _reject_unknown_options(self.name, options)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        worker_mode = "thread"
        if isinstance(workers, str):
            base, sep, width_text = workers.partition(":")
            if base != "process":
                raise ValueError(
                    f"workers must be an integer, 'process', or "
                    f"'process:N', got {workers!r}"
                )
            worker_mode = "process"
            if sep:
                try:
                    workers = int(width_text)
                except ValueError:
                    raise ValueError(
                        f"invalid process worker width {width_text!r} in "
                        f"workers={'process:' + width_text!r}"
                    ) from None
            else:
                workers = None
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        overrides = {}
        if kernel is not None:
            overrides["kernel"] = kernel
        if restructure is not None:
            overrides["restructure"] = restructure
        if device is not None:
            overrides["device"] = device
        config = config or SimConfig()
        if overrides:
            config = config.with_updates(**overrides)
        return ShardedGatspiSession(
            netlist,
            annotation,
            config,
            shards=shards,
            workers=workers,
            worker_mode=worker_mode,
        )
