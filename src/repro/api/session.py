"""The ``Session`` layer: compile once, simulate many times, uniformly.

A session owns one compiled design and exposes a single entry point::

    result = session.run(stimulus, cycles=..., duration=...)

``run`` applies the shared simulation contract before dispatching to the
backend — stimulus validation and cycles/duration normalization, which the
individual simulators used to duplicate — and after dispatching it guarantees
a consistently populated :class:`~repro.core.results.SimulationStats`
(``cycles``, ``gate_count`` and ``input_events`` are filled in even for
backends that do not track them natively).

Sessions are **thread-safe**: ``run`` may be called from many threads at
once (the serving layer does exactly that when concurrent requests share a
compiled design).  Calls serialize on a per-session lock around the
backend dispatch and the stats/counter mutation — a session executes one
run at a time, because the concrete engines keep per-run state (memory
pools, timing accumulators, ``last_report``-style fields) that is not
re-entrant.  Callers wanting parallel runs over one design should prepare
several sessions (the compile cache makes the extra ``prepare()`` calls
share one compile) or use the ``gatspi-sharded`` backend.
"""

from __future__ import annotations

import abc
import threading
from typing import Mapping, Optional, Sequence, TYPE_CHECKING

from ..core.config import SimConfig
from ..core.contract import fanin_weighted_toggles, normalize_horizon, validate_stimulus
from ..core.edits import Edit, EditReceipt
from ..core.results import SimulationResult
from ..core.waveform import Waveform
from ..netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..analysis.report import AnalysisReport


class Session(abc.ABC):
    """One prepared (compiled) design, ready to simulate any stimulus."""

    def __init__(
        self,
        backend_name: str,
        netlist: Netlist,
        config: Optional[SimConfig] = None,
    ):
        self._backend_name = backend_name
        self._netlist = netlist
        self._config = config or SimConfig()
        self._runs_completed = 0
        self._analysis_report: Optional["AnalysisReport"] = None
        # Serializes the backend dispatch and the counter/stats mutation of
        # concurrent ``run`` calls; reentrant so a backend-specific ``_run``
        # may itself call ``run`` on the same session if it ever needs to.
        self._run_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self._backend_name

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def config(self) -> SimConfig:
        return self._config

    @property
    def clock_period(self) -> int:
        return self._config.clock_period

    @property
    def runs_completed(self) -> int:
        """Number of successful :meth:`run` calls on this session."""
        return self._runs_completed

    @property
    def analysis_report(self) -> Optional["AnalysisReport"]:
        """Design-rule analysis report produced at ``prepare()`` time.

        ``None`` when the session was prepared with
        ``SimConfig(analysis="off")``.
        """
        return self._analysis_report

    def attach_analysis(self, report: Optional["AnalysisReport"]) -> None:
        """Record the prepare-time analysis report (called by the backend)."""
        self._analysis_report = report

    # ------------------------------------------------------------------
    # The uniform run contract
    # ------------------------------------------------------------------
    def run(
        self,
        stimulus: Mapping[str, Waveform],
        *,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate ``stimulus`` over the given horizon.

        One of ``cycles`` / ``duration`` must be provided; the other is
        derived from the session's clock period.  ``stimulus`` must cover
        every source net of the prepared netlist.

        Thread-safe: concurrent calls serialize on the session lock (see
        the module docstring).  Validation and horizon normalization are
        pure and run outside the lock, so a malformed request never blocks
        other callers.
        """
        cycles, duration = normalize_horizon(cycles, duration, self.clock_period)
        validate_stimulus(self._netlist, stimulus)
        with self._run_lock:
            result = self._run(stimulus, cycles, duration)
            self._finalize_stats(result, cycles)
            self._runs_completed += 1
        return result

    @abc.abstractmethod
    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        """Backend-specific dispatch; ``cycles``/``duration`` are resolved."""

    # ------------------------------------------------------------------
    # Incremental re-simulation (opt-in per backend)
    # ------------------------------------------------------------------
    def apply_edits(self, edits: Sequence[Edit]) -> EditReceipt:
        """Apply a batch of netlist/annotation edits to the prepared design.

        Backends that support incremental re-simulation (``gatspi`` and
        ``gatspi-sharded``) apply the edits in place, refresh only the dirty
        slices of their compiled artifacts, and return an
        :class:`~repro.core.edits.EditReceipt` whose ``undo_edits`` restore
        the previous state exactly.  Other backends raise
        :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"backend {self._backend_name!r} does not support incremental edits"
        )

    def rerun(
        self,
        edits: Sequence[Edit],
        *,
        stimulus: Optional[Mapping[str, Waveform]] = None,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Apply ``edits`` and re-simulate only their cone of influence.

        The result is bit-identical to preparing the edited design from
        scratch and running the same stimulus, but only the gates downstream
        of the edits are re-executed; clean waveforms are stitched from the
        previous run.  ``stimulus``/``cycles``/``duration`` default to the
        previous run's when omitted.  The edits stay applied on success
        (undo them via the receipt from :attr:`last_edit_receipt` on
        backends that expose it); on failure the design is left unchanged.
        """
        raise NotImplementedError(
            f"backend {self._backend_name!r} does not support incremental rerun"
        )

    def _finalize_stats(self, result: SimulationResult, cycles: int) -> None:
        """Make ``result.stats`` uniform across backends."""
        stats = result.stats
        stats.cycles = cycles
        if stats.gate_count == 0:
            stats.gate_count = self._netlist.gate_count
        if stats.input_events == 0:
            stats.input_events = fanin_weighted_toggles(
                self._netlist, result.toggle_counts
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Session backend={self._backend_name!r} "
            f"design={self._netlist.name!r} runs={self._runs_completed}>"
        )
