"""The ``Session`` layer: compile once, simulate many times, uniformly.

A session owns one compiled design and exposes a single entry point::

    result = session.run(stimulus, cycles=..., duration=...)

``run`` applies the shared simulation contract before dispatching to the
backend — stimulus validation and cycles/duration normalization, which the
individual simulators used to duplicate — and after dispatching it guarantees
a consistently populated :class:`~repro.core.results.SimulationStats`
(``cycles``, ``gate_count`` and ``input_events`` are filled in even for
backends that do not track them natively).

Sessions are **thread-safe**: ``run`` may be called from many threads at
once (the serving layer does exactly that when concurrent requests share a
compiled design).  Calls serialize on a per-session lock around the
backend dispatch and the stats/counter mutation — a session executes one
run at a time, because the concrete engines keep per-run state (memory
pools, timing accumulators, ``last_report``-style fields) that is not
re-entrant.  Callers wanting parallel runs over one design should prepare
several sessions (the compile cache makes the extra ``prepare()`` calls
share one compile) or use the ``gatspi-sharded`` backend.
"""

from __future__ import annotations

import abc
import threading
import time
from typing import Iterator, Mapping, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from ..core.config import SimConfig
from ..core.contract import fanin_weighted_toggles, normalize_horizon, validate_stimulus
from ..core.edits import Edit, EditReceipt
from ..core.restructure import StreamingSourceEvents, WaveformEventStream
from ..core.results import (
    PhaseTimings,
    SimulationResult,
    SimulationStats,
    StreamBatch,
)
from ..core.waveform import Waveform
from ..netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..analysis.report import AnalysisReport
    from ..power.activity import StreamResult

#: Stimulus accepted by the streaming entry points: an ordinary in-memory
#: waveform mapping, or any span producer (e.g. an incremental VCD reader)
#: for runs whose stimulus never fits in memory at once.
StreamStimulus = Union[Mapping[str, Waveform], StreamingSourceEvents]


class Session(abc.ABC):
    """One prepared (compiled) design, ready to simulate any stimulus."""

    def __init__(
        self,
        backend_name: str,
        netlist: Netlist,
        config: Optional[SimConfig] = None,
    ):
        self._backend_name = backend_name
        self._netlist = netlist
        self._config = config or SimConfig()
        self._runs_completed = 0
        self._analysis_report: Optional["AnalysisReport"] = None
        # Serializes the backend dispatch and the counter/stats mutation of
        # concurrent ``run`` calls; reentrant so a backend-specific ``_run``
        # may itself call ``run`` on the same session if it ever needs to.
        self._run_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self._backend_name

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def config(self) -> SimConfig:
        return self._config

    @property
    def clock_period(self) -> int:
        return self._config.clock_period

    @property
    def runs_completed(self) -> int:
        """Number of successful :meth:`run` calls on this session."""
        return self._runs_completed

    @property
    def analysis_report(self) -> Optional["AnalysisReport"]:
        """Design-rule analysis report produced at ``prepare()`` time.

        ``None`` when the session was prepared with
        ``SimConfig(analysis="off")``.
        """
        return self._analysis_report

    def attach_analysis(self, report: Optional["AnalysisReport"]) -> None:
        """Record the prepare-time analysis report (called by the backend)."""
        self._analysis_report = report

    # ------------------------------------------------------------------
    # The uniform run contract
    # ------------------------------------------------------------------
    def run(
        self,
        stimulus: Mapping[str, Waveform],
        *,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate ``stimulus`` over the given horizon.

        One of ``cycles`` / ``duration`` must be provided; the other is
        derived from the session's clock period.  ``stimulus`` must cover
        every source net of the prepared netlist.

        Thread-safe: concurrent calls serialize on the session lock (see
        the module docstring).  Validation and horizon normalization are
        pure and run outside the lock, so a malformed request never blocks
        other callers.
        """
        cycles, duration = normalize_horizon(cycles, duration, self.clock_period)
        validate_stimulus(self._netlist, stimulus)
        with self._run_lock:
            result = self._run(stimulus, cycles, duration)
            self._finalize_stats(result, cycles)
            self._runs_completed += 1
        return result

    @abc.abstractmethod
    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        """Backend-specific dispatch; ``cycles``/``duration`` are resolved."""

    # ------------------------------------------------------------------
    # Clocked sequential runs (any backend)
    # ------------------------------------------------------------------
    def run_cycles(
        self,
        stimulus: StreamStimulus,
        cycles: int,
        *,
        clock: Optional[str] = None,
        reset: Optional[str] = None,
    ) -> SimulationResult:
        """Clock-step the design for ``cycles`` capture edges.

        The sequential counterpart of :meth:`run`: the design's registers
        are committed at every clock edge by the shared frame-loop driver
        (:mod:`repro.core.clocked`) and the combinational logic between
        edges runs through this session's ordinary backend — which is why
        clocked results are bit-identical across every backend: the
        register semantics live in one place.

        ``stimulus`` covers the primary inputs *except* the clock (the
        driver generates it, one rising edge per ``clock_period``) and the
        register outputs (they are simulated state).  ``clock``/``reset``
        override ``SimConfig.clock``/``SimConfig.reset``.  The result
        carries full stitched waveforms plus ``register_state``, the
        committed value of every register after the final capture edge.
        """
        from ..core.clocked import (
            ClockedSimulationError,
            plan_clocked_run,
            run_clocked,
        )

        if not self._config.store_waveforms:
            raise ClockedSimulationError(
                "run_cycles samples register data pins from per-frame "
                "waveforms; prepare the session with "
                "SimConfig(store_waveforms=True)"
            )
        plan = plan_clocked_run(
            self._netlist,
            self.clock_period,
            clock=clock if clock is not None else self._config.clock,
            reset=reset if reset is not None else self._config.reset,
        )
        with self._run_lock:
            result = run_clocked(
                plan, stimulus, cycles, lambda s, d: self._run(s, 1, d)
            )
            self._finalize_stats(result, cycles)
            self._runs_completed += 1
        return result

    def run_cycles_stream(
        self,
        stimulus: StreamStimulus,
        cycles: int,
        *,
        clock: Optional[str] = None,
        reset: Optional[str] = None,
    ) -> "StreamResult":
        """Clock-step ``cycles`` edges at constant memory.

        The streaming counterpart of :meth:`run_cycles`: each frame's
        waveforms are folded into online toggle/SAIF totals and discarded,
        so million-cycle sequential replays retain only O(design) state
        (per-frame waveforms still exist transiently — the per-cycle
        footprint is one frame, never the run).  Pair with a
        :class:`~repro.core.restructure.StreamingSourceEvents` stimulus to
        keep the input side out-of-core too.  Totals are bit-identical to
        a whole-run :meth:`run_cycles`.
        """
        from ..core.clocked import (
            ClockedSimulationError,
            plan_clocked_run,
            run_clocked_stream,
        )

        if not self._config.store_waveforms:
            raise ClockedSimulationError(
                "run_cycles_stream samples register data pins from "
                "per-frame waveforms; prepare the session with "
                "SimConfig(store_waveforms=True)"
            )
        plan = plan_clocked_run(
            self._netlist,
            self.clock_period,
            clock=clock if clock is not None else self._config.clock,
            reset=reset if reset is not None else self._config.reset,
        )
        with self._run_lock:
            result = run_clocked_stream(
                plan, stimulus, cycles, lambda s, d: self._run(s, 1, d)
            )
            self._finalize_stats(result, cycles)
            self._runs_completed += 1
        return result

    # ------------------------------------------------------------------
    # Out-of-core streaming replay (opt-in per backend)
    # ------------------------------------------------------------------
    def run_stream(
        self,
        stimulus: StreamStimulus,
        *,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
        chunk_cycles: Optional[int] = None,
    ) -> "StreamResult":
        """Simulate ``stimulus`` chunk by chunk at constant memory.

        The streaming counterpart of :meth:`run`: the horizon is executed
        in chunks of ``chunk_cycles`` clock cycles (default
        ``SimConfig.stream_chunk_cycles``, falling back to
        ``32 * cycle_parallelism``), each chunk's readback is folded into
        an online activity accumulator, and nothing proportional to the
        whole run is retained — which is what lets million-cycle replays
        run in the memory footprint of one chunk.  The returned
        :class:`~repro.power.activity.StreamResult` carries per-net toggle
        counts and SAIF activity bit-identical to a whole-run :meth:`run`
        followed by ``activity_from_result`` (full waveforms are the one
        thing a streamed run cannot produce).

        ``stimulus`` may be an ordinary waveform mapping or any
        :class:`~repro.core.restructure.StreamingSourceEvents` producer
        (e.g. :class:`~repro.waveforms.vcd.VcdEventStream`, which tails a
        VCD file incrementally).  Thread-safe like :meth:`run`.
        """
        from ..power.activity import StreamResult, StreamingActivityAccumulator

        cycles, duration = normalize_horizon(cycles, duration, self.clock_period)
        source = self._coerce_stream_source(stimulus)
        timings = PhaseTimings()
        stats = SimulationStats()
        with self._run_lock:
            accumulator: Optional[StreamingActivityAccumulator] = None
            gate_nets: Tuple[str, ...] = ()
            for batch in self._stream_batches(
                source, duration, chunk_cycles, timings, stats
            ):
                if accumulator is None:
                    gate_nets = batch.nets
                    accumulator = StreamingActivityAccumulator(
                        batch.nets + batch.source_nets, duration
                    )
                start = time.perf_counter()
                accumulator.add_batch(batch)
                timings.dump += time.perf_counter() - start
            if accumulator is None:
                accumulator = StreamingActivityAccumulator((), duration)
            start = time.perf_counter()
            activities = accumulator.finalize()
            toggle_counts = accumulator.toggle_counts()
            timings.dump += time.perf_counter() - start
            result = StreamResult(
                duration=duration,
                toggle_counts=toggle_counts,
                activities=activities,
                timings=timings,
                stats=stats,
            )
            stats.output_transitions = sum(
                toggle_counts[net] for net in gate_nets
            )
            self._finalize_stats(result, cycles)
            self._runs_completed += 1
        return result

    def iter_windows(
        self,
        stimulus: StreamStimulus,
        *,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
        chunk_cycles: Optional[int] = None,
    ) -> Iterator[StreamBatch]:
        """Yield the raw per-chunk readbacks of a streaming run.

        The power-user face of :meth:`run_stream`: each yielded
        :class:`~repro.core.results.StreamBatch` carries one chunk's
        trimmed window outputs and source span as host arrays, and nothing
        is retained between chunks — callers fold batches into whatever
        online statistic they need (``StreamingActivityAccumulator`` is
        the stock consumer).  The session lock is held while the iterator
        is live; exhaust or close it promptly.
        """
        cycles, duration = normalize_horizon(cycles, duration, self.clock_period)
        source = self._coerce_stream_source(stimulus)
        with self._run_lock:
            yield from self._stream_batches(
                source, duration, chunk_cycles, PhaseTimings(), SimulationStats()
            )

    def _coerce_stream_source(
        self, stimulus: StreamStimulus
    ) -> StreamingSourceEvents:
        """Validate and lower a stream stimulus to a span producer."""
        if isinstance(stimulus, StreamingSourceEvents):
            return stimulus
        validate_stimulus(self._netlist, stimulus)
        return WaveformEventStream(self._netlist.source_nets(), stimulus)

    def _stream_batches(
        self,
        source: StreamingSourceEvents,
        duration: int,
        chunk_cycles: Optional[int],
        timings: PhaseTimings,
        stats: SimulationStats,
    ) -> Iterator[StreamBatch]:
        """Backend-specific chunk driver behind the streaming entry points."""
        raise NotImplementedError(
            f"backend {self._backend_name!r} does not support streaming "
            f"replay (run_stream/iter_windows)"
        )

    # ------------------------------------------------------------------
    # Incremental re-simulation (opt-in per backend)
    # ------------------------------------------------------------------
    def apply_edits(self, edits: Sequence[Edit]) -> EditReceipt:
        """Apply a batch of netlist/annotation edits to the prepared design.

        Backends that support incremental re-simulation (``gatspi`` and
        ``gatspi-sharded``) apply the edits in place, refresh only the dirty
        slices of their compiled artifacts, and return an
        :class:`~repro.core.edits.EditReceipt` whose ``undo_edits`` restore
        the previous state exactly.  Other backends raise
        :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"backend {self._backend_name!r} does not support incremental edits"
        )

    def rerun(
        self,
        edits: Sequence[Edit],
        *,
        stimulus: Optional[Mapping[str, Waveform]] = None,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Apply ``edits`` and re-simulate only their cone of influence.

        The result is bit-identical to preparing the edited design from
        scratch and running the same stimulus, but only the gates downstream
        of the edits are re-executed; clean waveforms are stitched from the
        previous run.  ``stimulus``/``cycles``/``duration`` default to the
        previous run's when omitted.  The edits stay applied on success
        (undo them via the receipt from :attr:`last_edit_receipt` on
        backends that expose it); on failure the design is left unchanged.
        """
        raise NotImplementedError(
            f"backend {self._backend_name!r} does not support incremental rerun"
        )

    def _finalize_stats(self, result: SimulationResult, cycles: int) -> None:
        """Make ``result.stats`` uniform across backends."""
        stats = result.stats
        stats.cycles = cycles
        if stats.gate_count == 0:
            stats.gate_count = self._netlist.gate_count
        if stats.input_events == 0:
            stats.input_events = fanin_weighted_toggles(
                self._netlist, result.toggle_counts
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Session backend={self._backend_name!r} "
            f"design={self._netlist.name!r} runs={self._runs_completed}>"
        )
