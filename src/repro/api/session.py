"""The ``Session`` layer: compile once, simulate many times, uniformly.

A session owns one compiled design and exposes a single entry point::

    result = session.run(stimulus, cycles=..., duration=...)

``run`` applies the shared simulation contract before dispatching to the
backend — stimulus validation and cycles/duration normalization, which the
individual simulators used to duplicate — and after dispatching it guarantees
a consistently populated :class:`~repro.core.results.SimulationStats`
(``cycles``, ``gate_count`` and ``input_events`` are filled in even for
backends that do not track them natively).
"""

from __future__ import annotations

import abc
from typing import Mapping, Optional

from ..core.config import SimConfig
from ..core.contract import fanin_weighted_toggles, normalize_horizon, validate_stimulus
from ..core.results import SimulationResult
from ..core.waveform import Waveform
from ..netlist import Netlist


class Session(abc.ABC):
    """One prepared (compiled) design, ready to simulate any stimulus."""

    def __init__(
        self,
        backend_name: str,
        netlist: Netlist,
        config: Optional[SimConfig] = None,
    ):
        self._backend_name = backend_name
        self._netlist = netlist
        self._config = config or SimConfig()
        self._runs_completed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self._backend_name

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def config(self) -> SimConfig:
        return self._config

    @property
    def clock_period(self) -> int:
        return self._config.clock_period

    @property
    def runs_completed(self) -> int:
        """Number of successful :meth:`run` calls on this session."""
        return self._runs_completed

    # ------------------------------------------------------------------
    # The uniform run contract
    # ------------------------------------------------------------------
    def run(
        self,
        stimulus: Mapping[str, Waveform],
        *,
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate ``stimulus`` over the given horizon.

        One of ``cycles`` / ``duration`` must be provided; the other is
        derived from the session's clock period.  ``stimulus`` must cover
        every source net of the prepared netlist.
        """
        cycles, duration = normalize_horizon(cycles, duration, self.clock_period)
        validate_stimulus(self._netlist, stimulus)
        result = self._run(stimulus, cycles, duration)
        self._finalize_stats(result, cycles)
        self._runs_completed += 1
        return result

    @abc.abstractmethod
    def _run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: int,
        duration: int,
    ) -> SimulationResult:
        """Backend-specific dispatch; ``cycles``/``duration`` are resolved."""

    def _finalize_stats(self, result: SimulationResult, cycles: int) -> None:
        """Make ``result.stats`` uniform across backends."""
        stats = result.stats
        stats.cycles = cycles
        if stats.gate_count == 0:
            stats.gate_count = self._netlist.gate_count
        if stats.input_events == 0:
            stats.input_events = fanin_weighted_toggles(
                self._netlist, result.toggle_counts
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Session backend={self._backend_name!r} "
            f"design={self._netlist.name!r} runs={self._runs_completed}>"
        )
