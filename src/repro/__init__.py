"""repro: a from-scratch reproduction of GATSPI (DAC 2022).

GATSPI is a GPU-accelerated, delay-aware, glitch-enabled gate-level
re-simulator for power estimation.  This package re-implements the complete
system in pure Python: the array waveform format, truth-table and conditional
delay-table lookups, the per-gate/per-window simulation kernel, the levelized
two-pass engine with a device-memory pool model, SDF and structural-Verilog
front ends, SAIF/VCD back ends, an event-driven reference simulator standing
in for the commercial baseline, analytic GPU performance models, and the
glitch-power optimization flow.

All simulation engines are served through one unified entry point, the
:mod:`repro.api` backend registry::

    from repro.api import get_backend

    session = get_backend("gatspi").prepare(netlist, annotation, config)
    result = session.run(stimulus, cycles=100)

Backends ``"gatspi"``, ``"event"``, ``"zero-delay"``, and ``"threaded-cpu"``
ship built in; the benchmark harness (:mod:`repro.bench`), the
glitch-optimization flow (:mod:`repro.opt`), and the multi-device distributor
(:mod:`repro.core.multi_gpu`) all accept backend names, never concrete
classes.
"""

__version__ = "0.1.0"

from .cells import DEFAULT_LIBRARY, Cell, CellLibrary
from .core import (
    GatspiEngine,
    SimConfig,
    SimulationResult,
    StimulusError,
    Waveform,
    simulate,
    simulate_multi_gpu,
)
from .netlist import Netlist, NetlistBuilder, parse_verilog, read_verilog
from .sdf import (
    DelayAnnotation,
    SyntheticDelayModel,
    annotation_from_sdf,
    parse_sdf,
    read_sdf,
)
from .api import (
    BackendCapabilities,
    Session,
    SimBackend,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "__version__",
    "DEFAULT_LIBRARY",
    "Cell",
    "CellLibrary",
    "GatspiEngine",
    "SimConfig",
    "SimulationResult",
    "StimulusError",
    "Waveform",
    "simulate",
    "simulate_multi_gpu",
    "Netlist",
    "NetlistBuilder",
    "parse_verilog",
    "read_verilog",
    "DelayAnnotation",
    "SyntheticDelayModel",
    "annotation_from_sdf",
    "parse_sdf",
    "read_sdf",
    "BackendCapabilities",
    "Session",
    "SimBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
