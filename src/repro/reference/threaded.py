"""Partitioned multi-worker CPU simulation (the paper's OpenMP port).

The paper compares GATSPI against (a) an OpenMP port of its own algorithm on
32-64 CPU cores and (b) the multi-threaded mode of the commercial simulator
(Tables 3 and 4).  Real thread-level parallelism is not available to pure
Python, so this module reproduces the *structure* of those baselines: the
per-level gate×window task list is partitioned across ``num_workers``
workers, every partition is executed (sequentially) while being timed, and
the parallel runtime is modelled as the per-level maximum across partitions
plus a barrier overhead — which is exactly the quantity an OpenMP
``parallel for`` with a barrier per logic level would exhibit, including the
load-imbalance penalty the paper highlights for low-activity designs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import SimConfig
from ..core.contract import normalize_horizon
from ..core.engine import GatspiEngine
from ..core.kernel import simulate_gate_window
from ..core.memory import WaveformPool
from ..core.results import SimulationResult
from ..core.waveform import Waveform
from ..netlist import Netlist
from ..sdf.annotate import DelayAnnotation


@dataclass
class PartitionedRunReport:
    """Timing report of one partitioned (OpenMP-style) run."""

    num_workers: int
    per_level_worker_times: List[List[float]] = field(default_factory=list)
    barrier_overhead_per_level: float = 0.0
    serial_kernel_time: float = 0.0

    @property
    def parallel_kernel_time(self) -> float:
        """Modelled wall-clock time: per-level max across workers + barriers."""
        total = 0.0
        for worker_times in self.per_level_worker_times:
            if worker_times:
                total += max(worker_times)
            total += self.barrier_overhead_per_level
        return total

    @property
    def speedup_vs_serial(self) -> float:
        parallel = self.parallel_kernel_time
        if parallel == 0:
            return float("inf")
        return self.serial_kernel_time / parallel

    def load_imbalance(self) -> float:
        """Average (max / mean) worker time across levels — 1.0 is balanced."""
        ratios = []
        for worker_times in self.per_level_worker_times:
            busy = [t for t in worker_times if t > 0]
            if not busy:
                continue
            mean = sum(busy) / len(busy)
            if mean > 0:
                ratios.append(max(busy) / mean)
        if not ratios:
            return 1.0
        return sum(ratios) / len(ratios)


class PartitionedCpuSimulator:
    """OpenMP-style partitioned execution of the GATSPI algorithm on CPU.

    Registered as the ``"threaded-cpu"`` backend in :mod:`repro.api`; new
    code should reach it via ``get_backend("threaded-cpu").prepare(...)``
    (the timing report is kept on the session's ``last_report``).
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
        num_workers: int = 32,
        barrier_overhead: float = 1e-5,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.netlist = netlist
        self.config = config or SimConfig()
        self.num_workers = num_workers
        self.barrier_overhead = barrier_overhead
        self._engine = GatspiEngine(netlist, annotation=annotation, config=self.config)

    def run(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> Tuple[SimulationResult, PartitionedRunReport]:
        """Simulate and report per-worker kernel times.

        The functional result is produced by the regular engine (identical
        algorithm); the partition timing is measured by re-executing each
        level's tasks grouped by worker.
        """
        config = self.config
        cycles, duration = normalize_horizon(cycles, duration, config.clock_period)

        result = self._engine.simulate(stimulus, cycles=cycles, duration=duration)
        report = PartitionedRunReport(
            num_workers=self.num_workers,
            barrier_overhead_per_level=self.barrier_overhead,
            serial_kernel_time=result.kernel_runtime,
        )

        compiled = self._engine.compiled
        pool = WaveformPool(config.waveform_pool_words)
        windows = self._engine._window_ranges(duration)
        for net in self.netlist.source_nets():
            wave = stimulus[net]
            for window in windows:
                pool.store_waveform(
                    net, window.index, wave.window(window.start, window.end)
                )

        for level in compiled.gates_by_level:
            tasks = [(gate, window) for gate in level for window in windows]
            partitions: List[List] = [[] for _ in range(self.num_workers)]
            for index, task in enumerate(tasks):
                partitions[index % self.num_workers].append(task)
            worker_times: List[float] = []
            level_results: Dict[Tuple[str, int], object] = {}
            for partition in partitions:
                start = time.perf_counter()
                for gate, window in partition:
                    pointers = [
                        pool.pointer(net, window.index) for net in gate.input_nets
                    ]
                    kernel_result = simulate_gate_window(
                        pool.data,
                        pointers,
                        self._engine._gate_inputs[gate.name],
                        pathpulse_fraction=config.pathpulse_fraction,
                        net_delay_filtering=config.enable_net_delay_filtering,
                    )
                    level_results[(gate.output_net, window.index)] = kernel_result
                worker_times.append(time.perf_counter() - start)
            report.per_level_worker_times.append(worker_times)
            for (net, window_index), kernel_result in level_results.items():
                address = pool.allocate(kernel_result.storage_words)
                pool.store_kernel_output(
                    net,
                    window_index,
                    address,
                    kernel_result.initial_value,
                    kernel_result.toggle_times,
                )
        return result, report
