"""Event-driven gate-level reference simulator.

This plays the role of the commercial simulator in the paper: an independent
implementation used both as the correctness oracle (SAIF toggle counts and
full waveforms must match GATSPI exactly) and as the runtime baseline for the
speedup tables.

The simulator is a classic inertial-delay event-queue simulator:

* net transitions propagate to fanout pins through per-pin interconnect
  delays, with inertial pulse swallowing on the wire,
* all pin arrivals at one timestamp are applied together before the gate is
  evaluated (multiple-simultaneous-input resolution),
* gate delays come from the same conditional delay tables (Fig. 4 lookups),
* output pulses narrower than ``PATHPULSEPERCENT`` of the gate delay are
  rejected by descheduling the pending output event.

The scheduling machinery (heap of events, pending-event cancellation) is
deliberately different from the GATSPI engine's levelized array walk, which is
what makes the cross-check meaningful.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import SimConfig
from ..core.contract import fanin_weighted_toggles, normalize_horizon, validate_stimulus
from ..core.kernel import resolve_gate_delay
from ..core.results import PhaseTimings, SimulationResult, SimulationStats
from ..core.truthtable import pin_weights
from ..core.waveform import Waveform
from ..netlist import Netlist, levelize
from ..sdf.annotate import DelayAnnotation, default_annotation


@dataclass
class _GateState:
    """Mutable simulation state of one combinational gate."""

    name: str
    output_net: str
    input_nets: Tuple[str, ...]
    truth_table: object
    delay_arrays: Tuple[object, ...]
    wire_rise: Tuple[float, ...]
    wire_fall: Tuple[float, ...]
    weights: Tuple[int, ...]
    pin_values: List[int] = field(default_factory=list)
    column_index: int = 0
    recorded: List[Tuple[int, int]] = field(default_factory=list)
    recorded_ids: List[Optional[int]] = field(default_factory=list)
    pending_arrival: Dict[int, float] = field(default_factory=dict)

    @property
    def recorded_value(self) -> int:
        return self.recorded[-1][1]

    @property
    def last_recorded_time(self) -> int:
        return self.recorded[-1][0]


class EventDrivenSimulator:
    """Inertial-delay event-driven gate-level simulator.

    Registered as the ``"event"`` backend in :mod:`repro.api`; new code
    should reach it via ``get_backend("event").prepare(...)``.
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional[DelayAnnotation] = None,
        config: Optional[SimConfig] = None,
    ):
        self.netlist = netlist
        self.config = config or SimConfig()
        annotation = annotation or default_annotation(netlist)
        if not self.config.full_sdf:
            annotation = annotation.with_averaged_sdf()
        self.annotation = annotation
        self._gates: Dict[str, _GateState] = {}
        self._fanin_of_net: Dict[str, List[Tuple[str, int]]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def _build(self) -> None:
        library = self.netlist.library
        for inst in self.netlist.combinational_instances():
            cell = inst.cell
            truth_table = library.truth_table(cell.name).table
            if cell.num_inputs:
                table = self.annotation.table_for(inst.name)
                delay_arrays = tuple(table.table_for(pin) for pin in cell.inputs)
                wire_rise = tuple(
                    float(self.annotation.wire_delay(inst.name, pin).rise)
                    for pin in cell.inputs
                )
                wire_fall = tuple(
                    float(self.annotation.wire_delay(inst.name, pin).fall)
                    for pin in cell.inputs
                )
            else:
                delay_arrays = ()
                wire_rise = ()
                wire_fall = ()
            state = _GateState(
                name=inst.name,
                output_net=inst.output_net(),
                input_nets=inst.input_nets(),
                truth_table=truth_table,
                delay_arrays=delay_arrays,
                wire_rise=wire_rise,
                wire_fall=wire_fall,
                weights=pin_weights(cell.num_inputs),
                pin_values=[0] * cell.num_inputs,
            )
            self._gates[inst.name] = state
            for pin_index, net in enumerate(state.input_nets):
                self._fanin_of_net.setdefault(net, []).append((inst.name, pin_index))

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
    ) -> SimulationResult:
        config = self.config
        cycles, duration = normalize_horizon(cycles, duration, config.clock_period)
        validate_stimulus(self.netlist, stimulus)

        timings = PhaseTimings()
        start_all = time.perf_counter()

        # --- initial settle: zero-time levelized evaluation -------------
        net_values: Dict[str, int] = {}
        for net in self.netlist.source_nets():
            net_values[net] = stimulus[net].value_at(0)
        levelization = levelize(self.netlist)
        order = [name for level in levelization.levels for name in level]
        for name in order:
            state = self._gates[name]
            for pin_index, net in enumerate(state.input_nets):
                value = net_values.get(net, 0)
                state.pin_values[pin_index] = value
            state.column_index = sum(
                w for w, v in zip(state.weights, state.pin_values) if v
            )
            initial = int(state.truth_table[state.column_index])
            state.recorded = [(0, initial)]
            state.recorded_ids = [None]
            net_values[state.output_net] = initial

        # --- event queue -------------------------------------------------
        # Events: (time, phase, sequence, kind, payload)
        #   phase 0: net transition "fires" (source toggle or gate output)
        #   phase 1: pin arrival (after wire delay)
        heap: List[Tuple[float, int, int, str, tuple]] = []
        sequence = 0
        cancelled_outputs: set = set()
        self._output_id_counter = 0

        kernel_start = time.perf_counter()
        for net in self.netlist.source_nets():
            for toggle_time, value in stimulus[net].changes():
                if toggle_time <= 0 or toggle_time >= duration:
                    continue
                heapq.heappush(heap, (float(toggle_time), 0, sequence, "net", (net, value)))
                sequence += 1
        timings.host_to_device += time.perf_counter() - kernel_start

        pathpulse_fraction = config.pathpulse_fraction
        filtering = config.enable_net_delay_filtering
        kernel_start = time.perf_counter()

        while heap:
            current_time = heap[0][0]
            # Phase 0: all net transitions at this time.
            arrivals_now: Dict[str, Dict[int, int]] = {}
            while heap and heap[0][0] == current_time and heap[0][1] == 0:
                _, _, _, kind, payload = heapq.heappop(heap)
                if kind == "net":
                    net, value = payload
                    self._propagate_net(
                        net, value, current_time, heap, filtering, arrivals_now
                    )
                    sequence += 1
                elif kind == "fire":
                    gate_name, output_id, value = payload
                    if output_id in cancelled_outputs:
                        cancelled_outputs.discard(output_id)
                        continue
                    state = self._gates[gate_name]
                    self._propagate_net(
                        state.output_net,
                        value,
                        current_time,
                        heap,
                        filtering,
                        arrivals_now,
                    )

            # Phase 1: pin arrivals at this time (queued earlier or just added
            # with zero wire delay).
            while heap and heap[0][0] == current_time and heap[0][1] == 1:
                _, _, _, kind, payload = heapq.heappop(heap)
                if kind != "arrival":
                    continue  # lazily-cancelled wire pulse
                gate_name, pin_index, value = payload
                state = self._gates[gate_name]
                pending = state.pending_arrival.get(pin_index)
                if pending is not None and pending <= current_time:
                    state.pending_arrival.pop(pin_index, None)
                arrivals_now.setdefault(gate_name, {})[pin_index] = value
            for gate_name, pins in arrivals_now.items():
                self._apply_arrivals(
                    gate_name,
                    pins,
                    current_time,
                    heap,
                    cancelled_outputs,
                    pathpulse_fraction,
                )

        timings.kernel += time.perf_counter() - kernel_start

        # --- results ------------------------------------------------------
        result = SimulationResult(duration=duration, timings=timings)
        stats = SimulationStats(
            gate_count=self.netlist.gate_count,
            levels=levelization.depth,
            widest_level=levelization.widest_level,
            windows=1,
            cycles=cycles,
        )
        for net in self.netlist.source_nets():
            result.toggle_counts[net] = stimulus[net].toggles_in(0, duration - 1)
            if config.store_waveforms:
                result.waveforms[net] = stimulus[net]
        total_transitions = 0
        for state in self._gates.values():
            toggles = len(state.recorded) - 1
            result.toggle_counts[state.output_net] = toggles
            total_transitions += toggles
            if config.store_waveforms:
                result.waveforms[state.output_net] = Waveform.from_changes(
                    state.recorded
                )
        stats.output_transitions = total_transitions
        stats.input_events = fanin_weighted_toggles(self.netlist, result.toggle_counts)
        result.stats = stats
        timings.readback += time.perf_counter() - start_all - timings.application
        return result

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------
    def _propagate_net(
        self,
        net: str,
        value: int,
        now: float,
        heap: list,
        filtering: bool,
        arrivals_now: Dict[str, Dict[int, int]],
    ) -> None:
        """Fan a net transition out to every load pin through its wire delay."""
        for gate_name, pin_index in self._fanin_of_net.get(net, []):
            state = self._gates[gate_name]
            wire_delay = (
                state.wire_rise[pin_index] if value == 1 else state.wire_fall[pin_index]
            )
            pending = state.pending_arrival.get(pin_index)
            if filtering and pending is not None and pending > now:
                # Wire inertial filtering: the previous (still-in-flight) edge
                # and this one form a pulse narrower than the wire delay of
                # the leading edge; both are swallowed.
                state.pending_arrival.pop(pin_index, None)
                self._remove_arrival(heap, gate_name, pin_index, pending)
                continue
            arrival = now + wire_delay
            state.pending_arrival[pin_index] = arrival
            if arrival == now:
                arrivals_now.setdefault(gate_name, {})[pin_index] = value
                state.pending_arrival.pop(pin_index, None)
            else:
                heapq.heappush(
                    heap, (arrival, 1, id(state) ^ pin_index, "arrival",
                           (gate_name, pin_index, value))
                )

    @staticmethod
    def _remove_arrival(heap: list, gate_name: str, pin_index: int, arrival: float) -> None:
        """Lazily mark an in-flight arrival as cancelled by rewriting it."""
        for index, entry in enumerate(heap):
            if (
                entry[1] == 1
                and entry[0] == arrival
                and entry[4][0] == gate_name
                and entry[4][1] == pin_index
            ):
                heap[index] = (entry[0], entry[1], entry[2], "cancelled", entry[4])
                return

    def _apply_arrivals(
        self,
        gate_name: str,
        pins: Dict[int, int],
        now: float,
        heap: list,
        cancelled_outputs: set,
        pathpulse_fraction: float,
    ) -> None:
        """Apply simultaneous pin changes to one gate and evaluate it."""
        state = self._gates[gate_name]
        switching: List[Tuple[int, int]] = []
        for pin_index, value in pins.items():
            old = state.pin_values[pin_index]
            if old == value:
                continue
            state.pin_values[pin_index] = value
            if value:
                state.column_index += state.weights[pin_index]
                switching.append((pin_index, 0))
            else:
                state.column_index -= state.weights[pin_index]
                switching.append((pin_index, 1))
        if not switching:
            return
        new_output = int(state.truth_table[state.column_index])
        if new_output == state.recorded_value:
            return
        output_edge = 0 if new_output == 1 else 1
        gate_delay = resolve_gate_delay(
            state.delay_arrays, switching, output_edge, state.column_index
        )
        output_time = int(now + gate_delay)
        min_pulse = gate_delay * pathpulse_fraction
        if len(state.recorded) > 1 and (
            output_time - state.last_recorded_time < min_pulse
            or output_time <= state.last_recorded_time
        ):
            # Inertial rejection: deschedule the pending output transition.
            state.recorded.pop()
            dropped_id = state.recorded_ids.pop()
            if dropped_id is not None:
                cancelled_outputs.add(dropped_id)
        else:
            state.recorded.append((output_time, new_output))
            self._output_id_counter += 1
            output_id = self._output_id_counter
            state.recorded_ids.append(output_id)
            heapq.heappush(
                heap,
                (float(output_time), 0, output_id, "fire",
                 (gate_name, output_id, new_output)),
            )


def simulate_reference(
    netlist: Netlist,
    stimulus: Mapping[str, Waveform],
    cycles: Optional[int] = None,
    duration: Optional[int] = None,
    annotation: Optional[DelayAnnotation] = None,
    config: Optional[SimConfig] = None,
) -> SimulationResult:
    """One-call convenience wrapper (deprecated).

    Prefer ``repro.api.get_backend("event").prepare(...).run(...)``, which
    reuses the elaborated gate states across runs.
    """
    from ..api import get_backend

    session = get_backend("event").prepare(netlist, annotation=annotation, config=config)
    return session.run(stimulus, cycles=cycles, duration=duration)
