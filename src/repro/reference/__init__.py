"""Reference simulators: the event-driven baseline, zero-delay functional
simulation, and the partitioned (OpenMP-style) CPU baseline."""

from .event_sim import EventDrivenSimulator, simulate_reference
from .zero_delay import ZeroDelaySimulator, functional_toggle_counts
from .threaded import PartitionedCpuSimulator, PartitionedRunReport

__all__ = [
    "EventDrivenSimulator",
    "simulate_reference",
    "ZeroDelaySimulator",
    "functional_toggle_counts",
    "PartitionedCpuSimulator",
    "PartitionedRunReport",
]
