"""Zero-delay functional re-simulator.

Evaluates the combinational logic with all gate and wire delays set to zero:
each source-event timestamp produces at most one *functional* transition per
net.  The difference between delay-annotated toggle counts and zero-delay
toggle counts is the glitch activity — the quantity the paper's
glitch-power-optimization flow minimises.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core.contract import normalize_horizon, validate_stimulus
from ..core.results import SimulationResult, SimulationStats
from ..core.truthtable import pin_weights
from ..core.waveform import Waveform
from ..netlist import Netlist, levelize


class ZeroDelaySimulator:
    """Levelized zero-delay (purely functional) simulator.

    Registered as the ``"zero-delay"`` backend in :mod:`repro.api`; new code
    should reach it via ``get_backend("zero-delay").prepare(...)``.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._levelization = levelize(netlist)
        self._order = [
            name for level in self._levelization.levels for name in level
        ]
        library = netlist.library
        self._tables = {
            inst.name: library.truth_table(inst.cell_name).table
            for inst in netlist.combinational_instances()
        }

    def simulate(
        self,
        stimulus: Mapping[str, Waveform],
        cycles: Optional[int] = None,
        duration: Optional[int] = None,
        clock_period: int = 1000,
    ) -> SimulationResult:
        """Evaluate every net at every source-event timestamp."""
        cycles, duration = normalize_horizon(cycles, duration, clock_period)
        validate_stimulus(self.netlist, stimulus)
        sources = self.netlist.source_nets()

        event_times: Set[int] = {0}
        for net in sources:
            for toggle_time, _ in stimulus[net].changes():
                if 0 < toggle_time < duration:
                    event_times.add(int(toggle_time))
        ordered_times = sorted(event_times)

        changes: Dict[str, List[Tuple[int, int]]] = {net: [] for net in sources}
        for inst in self.netlist.combinational_instances():
            changes[inst.output_net()] = []

        net_values: Dict[str, int] = {}
        for current_time in ordered_times:
            for net in sources:
                value = stimulus[net].value_at(current_time)
                if net_values.get(net) != value:
                    net_values[net] = value
                    changes[net].append((current_time, value))
            for name in self._order:
                inst = self.netlist.instances[name]
                values = [net_values.get(n, 0) for n in inst.input_nets()]
                weights = pin_weights(len(values))
                index = sum(w for w, v in zip(weights, values) if v)
                output = int(self._tables[name][index])
                output_net = inst.output_net()
                if net_values.get(output_net) != output:
                    net_values[output_net] = output
                    changes[output_net].append((current_time, output))

        result = SimulationResult(duration=duration)
        stats = SimulationStats(
            gate_count=self.netlist.gate_count,
            levels=self._levelization.depth,
            widest_level=self._levelization.widest_level,
            windows=1,
            cycles=cycles,
        )
        total = 0
        for net, change_list in changes.items():
            if not change_list:
                change_list = [(0, 0)]
            toggles = len(change_list) - 1
            result.toggle_counts[net] = toggles
            result.waveforms[net] = Waveform.from_changes(change_list)
            if net not in self.netlist.source_nets():
                total += toggles
        stats.output_transitions = total
        result.stats = stats
        return result


def functional_toggle_counts(
    netlist: Netlist,
    stimulus: Mapping[str, Waveform],
    duration: int,
) -> Dict[str, int]:
    """Per-net zero-delay toggle counts (the glitch-free reference activity)."""
    simulator = ZeroDelaySimulator(netlist)
    result = simulator.simulate(stimulus, duration=duration)
    return dict(result.toggle_counts)
