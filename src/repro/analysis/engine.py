"""Design-rule analysis over netlists, SDF annotations, and delay tables.

:func:`analyze_design` evaluates every registered rule (or a caller-chosen
subset) against one design and returns a structured
:class:`~repro.analysis.report.AnalysisReport`.  Reports are memoized
process-wide in a fingerprint-keyed LRU — the same content fingerprints the
compile cache uses — so the serving layer and repeated ``prepare()`` calls
pay for analysis once per distinct design, exactly like compilation.

:func:`analyze_for_prepare` is the session-layer entry point: it honours
``SimConfig(analysis="strict"|"warn"|"off")`` — ``strict`` raises
:class:`DesignAnalysisError` on any error-severity finding before the
backend compiles anything, ``warn`` attaches the report to the session and
emits a Python warning when errors are present, ``off`` skips analysis
entirely.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from ..core.compile_cache import (
    fingerprint_annotation,
    fingerprint_netlist,
    levelize_cached,
)
from ..core.xp import HOST
from ..netlist import Levelization, Netlist, NetlistError, levelize
from .report import AnalysisReport, Finding
from .rules import RULES, RuleSpec, get_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import SimConfig
    from ..netlist.levelize import RegisterCrossing
    from ..sdf.annotate import DelayAnnotation
    from ..sdf.types import SdfFile


class AnalysisWarning(UserWarning):
    """Emitted when ``analysis="warn"`` finds error-severity violations."""


class DesignAnalysisError(ValueError):
    """Raised by strict-mode analysis when a design violates an error rule.

    The offending :class:`AnalysisReport` is available as :attr:`report`.
    """

    def __init__(self, report: AnalysisReport):
        self.report = report
        errors = report.errors
        rule_ids = ", ".join(sorted({f.rule_id for f in errors}))
        super().__init__(
            f"design {report.design!r} failed analysis with "
            f"{len(errors)} error(s) [{rule_ids}]:\n{report.format_findings()}"
        )


class AnalysisContext:
    """Shared, lazily-built structural tensors one analysis run reads.

    Rules pull what they need; expensive artifacts (levelization, the
    padded per-level input-id matrices, the loop peel) are computed at
    most once per run and shared across rules.
    """

    def __init__(
        self,
        netlist: Netlist,
        annotation: Optional["DelayAnnotation"] = None,
        sdf: Optional["SdfFile"] = None,
        horizon: Optional[int] = None,
        netlist_fingerprint: Optional[str] = None,
    ):
        self.netlist = netlist
        self.annotation = annotation
        self.sdf = sdf
        self.horizon = horizon
        #: Precomputed content fingerprint (when the report cache already
        #: hashed the netlist) — routes levelization through the shared
        #: memo so the engine's subsequent compile reuses it.
        self.netlist_fingerprint = netlist_fingerprint

    # ------------------------------------------------------------------
    # Flat net tensors
    # ------------------------------------------------------------------
    @cached_property
    def net_names(self) -> Tuple[str, ...]:
        return tuple(self.netlist.nets)

    @cached_property
    def net_id(self) -> Dict[str, int]:
        return {name: index for index, name in enumerate(self.net_names)}

    @cached_property
    def fanout(self) -> "object":
        """(num_nets,) int64 load counts, in :attr:`net_names` order."""
        hnp = HOST
        return hnp.asarray(
            [len(self.netlist.nets[name].loads) for name in self.net_names],
            dtype=hnp.int64,
        )

    @cached_property
    def source_net_set(self) -> Set[str]:
        return set(self.netlist.source_nets())

    @cached_property
    def combinational_io(self) -> Tuple[Tuple[str, Tuple[str, ...], str], ...]:
        """``(name, input_nets, output_net)`` per combinational instance.

        Materialized once: several rules walk the same per-gate structure,
        and rebuilding the connection tuples per rule dominated analysis
        time on large designs.
        """
        result = []
        for inst in self.netlist.instances.values():
            cell = inst.cell
            if cell.is_sequential:
                continue
            connections = inst.connections
            result.append((
                inst.name,
                tuple([connections[pin] for pin in cell.inputs]),
                connections[cell.output],
            ))
        return tuple(result)

    # ------------------------------------------------------------------
    # Levelization (None when the design cannot be levelized)
    # ------------------------------------------------------------------
    @cached_property
    def levelization(self) -> Optional[Levelization]:
        try:
            if self.netlist_fingerprint is not None:
                return levelize_cached(
                    self.netlist, fingerprint=self.netlist_fingerprint
                )
            return levelize(self.netlist)
        except (NetlistError, KeyError):
            # KeyError: a structurally corrupted netlist (e.g. an instance
            # rewired past the construction-time driver bookkeeping) —
            # exactly what analysis exists to diagnose, so it must not
            # crash on it.
            return None

    @cached_property
    def _topo_io(self) -> Tuple[Tuple[str, Tuple[str, ...], str], ...]:
        """:attr:`combinational_io` in topological (level) order, or ``()``
        when the design cannot be levelized."""
        levelization = self.levelization
        if levelization is None:
            return ()
        gate_levels = levelization.gate_levels
        return tuple(
            sorted(self.combinational_io, key=lambda io: gate_levels[io[0]])
        )

    # ------------------------------------------------------------------
    # Loop detection (two-phase Kahn peel; names only on-cycle gates)
    # ------------------------------------------------------------------
    @cached_property
    def loop_instances(self) -> Tuple[str, ...]:
        netlist = self.netlist
        # Fast path: a successful levelization IS a topological order, so
        # there is no cycle and the (Python-loop) peel below never needs to
        # run on healthy designs.
        if self.levelization is not None:
            return ()
        combinational = self.combinational_io
        resolved = set(self.source_net_set)
        # Undriven inputs are a different rule's problem: treat them as
        # resolved so they do not masquerade as loop members here.
        for _, input_nets, _ in combinational:
            for net_name in input_nets:
                if netlist.nets[net_name].driver is None:
                    resolved.add(net_name)
        consumers: Dict[str, List[str]] = {}
        pending: Dict[str, int] = {}
        ready: List[str] = []
        output_of: Dict[str, str] = {}
        for name, input_nets, output_net in combinational:
            output_of[name] = output_net
            remaining = 0
            for net_name in input_nets:
                if net_name in resolved:
                    continue
                remaining += 1
                consumers.setdefault(net_name, []).append(name)
            pending[name] = remaining
            if remaining == 0:
                ready.append(name)
        # Forward peel: everything reachable in topological order drops out.
        while ready:
            name = ready.pop()
            del pending[name]
            output = output_of[name]
            for consumer in consumers.get(output, ()):
                if consumer in pending:
                    pending[consumer] -= 1
                    if pending[consumer] == 0:
                        ready.append(consumer)
        if not pending:
            return ()
        # Backward peel within the remainder: gates whose output feeds no
        # remaining gate are merely *downstream* of a cycle, not on one.
        remaining_set = set(pending)
        out_degree: Dict[str, int] = {name: 0 for name in remaining_set}
        feeds: Dict[str, List[str]] = {}
        for name in remaining_set:
            output = output_of[name]
            for consumer in consumers.get(output, ()):
                if consumer in remaining_set:
                    out_degree[name] += 1
                    feeds.setdefault(consumer, []).append(name)
        ready = [name for name, degree in out_degree.items() if degree == 0]
        while ready:
            name = ready.pop()
            remaining_set.discard(name)
            for producer in feeds.get(name, ()):
                if producer in remaining_set:
                    out_degree[producer] -= 1
                    if out_degree[producer] == 0:
                        ready.append(producer)
        return tuple(sorted(remaining_set))

    # ------------------------------------------------------------------
    # Cone propagation (set-based sweeps in topological order; at
    # reproduction scale building padded per-level id matrices costs more
    # than the propagation itself, so these stay as plain set passes)
    # ------------------------------------------------------------------
    @cached_property
    def constant_gates(self) -> Tuple[str, ...]:
        """Gates (with >= 1 input) whose entire input cone is tie-cell
        constant, in level order."""
        topo = self._topo_io
        if not topo:
            return ()
        # Seed with zero-input (tie-high/low) outputs, then sweep forward:
        # a gate whose every input is constant produces a constant output.
        constant = {
            output_net for _, input_nets, output_net in topo if not input_nets
        }
        flagged: List[str] = []
        for name, input_nets, output_net in topo:
            if input_nets and all(n in constant for n in input_nets):
                constant.add(output_net)
                flagged.append(name)
        return tuple(flagged)

    @cached_property
    def register_crossings(self) -> Tuple["RegisterCrossing", ...]:
        """The design's register crossing table, or ``()`` when the
        netlist is too corrupted to enumerate it (other rules report
        the corruption)."""
        from ..netlist import register_crossings

        try:
            return tuple(register_crossings(self.netlist))
        except (NetlistError, KeyError):
            return ()

    @cached_property
    def unreachable_gates(self) -> Tuple[str, ...]:
        """Gates whose output cone reaches no endpoint, in level order.

        Registers are *not* unconditional endpoints: a register is live
        only when its Q net is itself needed (it reaches a primary output,
        directly or through other live registers), and only live
        registers' data/enable/reset/clock cones count as observable.
        This is a fixed point because liveness flows backwards through
        register crossings: Q needed -> D cone needed -> other Qs needed.
        """
        topo = self._topo_io
        if not topo:
            return ()
        crossings = self.register_crossings
        needed: Set[str] = set(self.netlist.outputs)
        while True:
            before = len(needed)
            for crossing in crossings:
                if crossing.q_net not in needed:
                    continue
                for net in (
                    crossing.d_net,
                    crossing.enable_net,
                    crossing.reset_net,
                    crossing.clock_net,
                ):
                    if net is not None:
                        needed.add(net)
            for _, input_nets, output_net in reversed(topo):
                if output_net in needed:
                    needed.update(input_nets)
            if len(needed) == before:
                break
        return tuple(
            name for name, _, output_net in topo if output_net not in needed
        )

    # ------------------------------------------------------------------
    # Delay estimate (shared by the EOW-overflow rule)
    # ------------------------------------------------------------------
    @cached_property
    def estimated_path_delay(self) -> int:
        """Upper bound on the critical-path delay, mirroring the engine's
        settle-margin estimate; intrinsic cell delays when unannotated."""
        levelization = self.levelization
        if levelization is None:
            return 0
        depth = levelization.depth
        if self.annotation is not None:
            max_wire = 0.0
            for wire in self.annotation.interconnect.values():
                max_wire = max(max_wire, wire.rise, wire.fall)
            return int(depth * (self.annotation.max_gate_delay() + max_wire))
        max_intrinsic = 0.0
        for inst in self.netlist.combinational_instances():
            cell = inst.cell
            max_intrinsic = max(
                max_intrinsic, float(cell.intrinsic_rise), float(cell.intrinsic_fall)
            )
        return int(depth * max_intrinsic)


# ======================================================================
# Report cache (fingerprint-keyed LRU, mirroring the compile cache)
# ======================================================================
#: Default maximum number of cached analysis reports.
ANALYSIS_CACHE_CAPACITY = 64

_LOCK = threading.RLock()
_CACHE: "OrderedDict[str, AnalysisReport]" = OrderedDict()
_capacity = ANALYSIS_CACHE_CAPACITY
_HITS = 0
_MISSES = 0
_RUNS = 0


def set_analysis_cache_capacity(capacity: int) -> None:
    """Set the maximum number of cached reports (0 disables caching)."""
    global _capacity
    if capacity < 0:
        raise ValueError("analysis cache capacity must be non-negative")
    with _LOCK:
        _capacity = int(capacity)
        while len(_CACHE) > _capacity:
            _CACHE.popitem(last=False)


def clear_analysis_cache() -> None:
    """Drop every cached report and reset the counters."""
    global _HITS, _MISSES, _RUNS
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
        _RUNS = 0


def analysis_cache_info() -> Dict[str, int]:
    """Occupancy, hit/miss counters, and the number of full rule runs."""
    with _LOCK:
        return {
            "size": len(_CACHE),
            "capacity": _capacity,
            "hits": _HITS,
            "misses": _MISSES,
            "runs": _RUNS,
        }


def _fingerprint_sdf(sdf: Optional["SdfFile"]) -> str:
    if sdf is None:
        return "none"
    import hashlib

    h = hashlib.sha256()
    h.update(sdf.design.encode())
    for cell in sdf.cells:
        h.update(repr((cell.cell_type, cell.instance, cell.iopaths)).encode())
        h.update(repr(cell.interconnects).encode())
    h.update(repr(sdf.interconnects).encode())
    return h.hexdigest()


def analysis_key(
    netlist: Netlist,
    annotation: Optional["DelayAnnotation"],
    sdf: Optional["SdfFile"],
    horizon: Optional[int],
    rule_ids: Tuple[str, ...],
    netlist_fingerprint: Optional[str] = None,
) -> str:
    """Content-based cache key of one analysis invocation."""
    annotation_fp = (
        fingerprint_annotation(annotation, netlist)
        if annotation is not None
        else "default"
    )
    return "|".join(
        (
            netlist_fingerprint or fingerprint_netlist(netlist),
            annotation_fp,
            _fingerprint_sdf(sdf),
            f"horizon={horizon}",
            ",".join(rule_ids),
        )
    )


# ======================================================================
# Entry points
# ======================================================================
def analyze_design(
    netlist: Netlist,
    annotation: Optional["DelayAnnotation"] = None,
    sdf: Optional["SdfFile"] = None,
    *,
    horizon: Optional[int] = None,
    rules: Optional[Iterable[str]] = None,
    use_cache: bool = True,
    netlist_fingerprint: Optional[str] = None,
) -> AnalysisReport:
    """Evaluate design rules and return the structured report.

    ``rules`` restricts evaluation to the named rule ids (default: every
    registered rule); ``horizon`` (a duration in time units) arms the
    EOW-overflow rule.  With ``use_cache`` (default) reports are memoized
    by content fingerprint, so repeated analysis of structurally identical
    designs is a dictionary hit.  A caller that already hashed the netlist
    (the serving admission gate computes the same fingerprint for its
    session key) passes ``netlist_fingerprint`` to skip the re-hash.
    """
    global _HITS, _MISSES, _RUNS
    if rules is None:
        specs: List[RuleSpec] = list(RULES.values())
    else:
        specs = [get_rule(rule_id) for rule_id in rules]
    rule_ids = tuple(spec.rule_id for spec in specs)
    key = ""
    netlist_fp: Optional[str] = netlist_fingerprint
    if use_cache:
        if netlist_fp is None:
            netlist_fp = fingerprint_netlist(netlist)
        key = analysis_key(
            netlist, annotation, sdf, horizon, rule_ids,
            netlist_fingerprint=netlist_fp,
        )
        with _LOCK:
            cached = _CACHE.get(key)
            if cached is not None:
                _CACHE.move_to_end(key)
                _HITS += 1
                return cached
            _MISSES += 1
    start = time.perf_counter()
    context = AnalysisContext(
        netlist,
        annotation=annotation,
        sdf=sdf,
        horizon=horizon,
        netlist_fingerprint=netlist_fp,
    )
    findings: List[Finding] = []
    for spec in specs:
        findings.extend(spec.func(context))
    report = AnalysisReport(
        design=netlist.name,
        findings=findings,
        rules_run=rule_ids,
        fingerprint=key,
        analysis_seconds=time.perf_counter() - start,
    )
    with _LOCK:
        _RUNS += 1
        if use_cache and _capacity > 0:
            _CACHE[key] = report
            _CACHE.move_to_end(key)
            while len(_CACHE) > _capacity:
                _CACHE.popitem(last=False)
    return report


def analyze_for_prepare(
    netlist: Netlist,
    annotation: Optional["DelayAnnotation"],
    config: "SimConfig",
) -> Optional[AnalysisReport]:
    """Analysis as run by ``SimBackend.prepare`` according to the config.

    ``analysis="off"`` returns ``None`` without evaluating anything;
    ``"strict"`` raises :class:`DesignAnalysisError` when any
    error-severity finding exists; ``"warn"`` returns the report (cached
    by fingerprint, so repeated prepares re-use it) and emits an
    :class:`AnalysisWarning` when errors are present — the subsequent
    compile will typically fail anyway, but with the diagnosis already on
    record.
    """
    mode = config.analysis
    if mode == "off":
        return None
    report = analyze_design(netlist, annotation=annotation)
    if report.has_errors:
        if mode == "strict":
            raise DesignAnalysisError(report)
        warnings.warn(
            f"design {netlist.name!r} has analysis errors: "
            f"{report.summary()}",
            AnalysisWarning,
            stacklevel=3,
        )
    return report
